"""Parameter checkers for Theorems 1, 2 and 3.

These are the closed-form statements the experiments instantiate: which
approximation factors each theorem declares hard at a given instance
size, and the Theorem 3 gap bounds bundled per case.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.errors import ParameterError
from repro.lowerbounds.gap_bounds import (
    gap_bound_case1,
    gap_bound_case2,
    gap_bound_case3,
)


def theorem1_hard_c(domain: str, n: int) -> Dict[str, float]:
    """The hard-approximation boundary of Theorem 1 for each domain.

    Returns a dict with the boundary value and the witnessing embedding's
    parameters at the natural instantiation (``q = sqrt(d)`` for ±1,
    ``k = log-scale`` for {0,1}).
    """
    if n < 16:
        raise ParameterError(f"n must be >= 16, got {n}")
    log_n = math.log(n)
    if domain == "signed {-1,1}":
        return {"boundary": 0.0, "statement": "every c > 0 is hard"}
    if domain == "unsigned {-1,1}":
        return {
            "boundary": math.exp(-math.sqrt(log_n / math.log(log_n))),
            "statement": "c >= e^{-o(sqrt(log n / log log n))} is hard",
        }
    if domain == "unsigned {0,1}":
        k = max(2, round(math.log2(n)))
        return {
            "boundary": (k - 1) / k,
            "statement": "c >= 1 - o(1) is hard (witness k = log2 n)",
        }
    raise ParameterError(f"unknown domain {domain!r}")


def theorem2_hard_ratio(domain: str, n: int) -> Dict[str, float]:
    """The hard ``log(s/d)/log(cs/d)`` boundary of Theorem 2 per domain."""
    if n < 16:
        raise ParameterError(f"n must be >= 16, got {n}")
    log_n = math.log(n)
    if domain == "unsigned {-1,1}":
        # 1 - o(1/sqrt(log n)); the witness takes q = sqrt(d), d = w(log n).
        return {
            "boundary": 1.0 - 1.0 / math.sqrt(log_n),
            "statement": "ratio >= 1 - o(1/sqrt(log n)) is hard",
        }
    if domain == "unsigned {0,1}":
        return {
            "boundary": 1.0 - 1.0 / log_n,
            "statement": "ratio >= 1 - o(1/log n) is hard (witness k = d)",
        }
    raise ParameterError(f"Theorem 2 covers the unsigned domains, got {domain!r}")


def theorem3_gap_bounds(s: float, c: float, U: float, d: int) -> Dict[str, float]:
    """All applicable Theorem 3 bounds on ``P1 - P2`` at these parameters.

    Returns a dict of case name to bound; cases whose preconditions fail
    are omitted.
    """
    out: Dict[str, float] = {}
    try:
        if d >= 1 and s <= min(c * U, U / (4.0 * math.sqrt(d))):
            out["case1 (signed+unsigned)"] = gap_bound_case1(s, c, U, max(1, d))
    except ParameterError:
        pass
    try:
        if d >= 2 and s <= U / (2.0 * d):
            out["case2 (signed only)"] = gap_bound_case2(s, c, U, d)
    except ParameterError:
        pass
    try:
        if s <= U / 8.0:
            out["case3 (signed+unsigned)"] = gap_bound_case3(s, U)
    except ParameterError:
        pass
    return out
