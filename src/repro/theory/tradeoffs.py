"""Hard-instance parameter maps: what Theorems 1 and 2 actually construct.

For a target instance size ``n``, these helpers instantiate each proof's
embedding family at the parameters the proofs choose (``d = gamma log n``,
``q = sqrt(d)``, ``k = d``, ...), returning the concrete
``(d, d2, s, cs, c, ratio)`` of the resulting hard join instance — the
paper's "for intuition" discussion (hard instances distinguish nearly
orthogonal from very nearly orthogonal vectors) made computable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.embeddings.chebyshev import scaled_chebyshev
from repro.embeddings.chebyshev_pm1 import chebyshev_embedding_dims
from repro.errors import ParameterError


@dataclass(frozen=True)
class HardInstanceParameters:
    """Parameters of one hard (cs, s)-join instance produced by a proof."""

    problem: str
    n: int
    d_ovp: int          # OVP dimension d = gamma log2 n
    d_embedded: int     # join instance dimension d2
    s: float
    cs: float

    @property
    def c(self) -> float:
        return self.cs / self.s if self.s else 0.0

    @property
    def ratio(self) -> float:
        """The Theorem 2 quantity ``log(s/d2) / log(cs/d2)``."""
        if self.cs <= 0:
            return 0.0
        return math.log(self.s / self.d_embedded) / math.log(self.cs / self.d_embedded)


def _ovp_dimension(n: int, gamma: float) -> int:
    if n < 16:
        raise ParameterError(f"n must be >= 16, got {n}")
    if gamma <= 0:
        raise ParameterError(f"gamma must be positive, got {gamma}")
    return max(8, math.ceil(gamma * math.log2(n)))


def hard_instance_signed_pm1(n: int, gamma: float = 2.0) -> HardInstanceParameters:
    """Theorem 1 item 1: the signed gadget at ``d = gamma log2 n``."""
    d = _ovp_dimension(n, gamma)
    return HardInstanceParameters(
        problem="signed {-1,1}",
        n=n, d_ovp=d, d_embedded=4 * d - 4, s=4.0, cs=0.0,
    )


def hard_instance_unsigned_pm1(
    n: int, gamma: float = 2.0, q: int = None
) -> HardInstanceParameters:
    """Theorems 1/2 item on unsigned ±1: Chebyshev embedding at ``q = sqrt(d)``.

    The proof of Theorem 2 takes ``q = sqrt(d)``; the resulting ratio is
    ``1 - O(1/sqrt(d)) = 1 - o(1/sqrt(log n))`` for ``d = omega(log n)``.
    """
    d = _ovp_dimension(n, gamma)
    if q is None:
        q = max(1, round(math.sqrt(d)))
    dims = chebyshev_embedding_dims(d, q)
    s = scaled_chebyshev(q, 2.0 * d + 2.0, 2.0 * d)
    return HardInstanceParameters(
        problem="unsigned {-1,1}",
        n=n, d_ovp=d, d_embedded=int(dims[-1]), s=float(s), cs=float((2 * d) ** q),
    )


def hard_instance_unsigned_01(
    n: int, gamma: float = 2.0, k: int = None
) -> HardInstanceParameters:
    """Theorems 1/2 on unsigned {0,1}: the chopped embedding at ``k = d``.

    With ``k = d`` the output dimension is exactly ``2d`` and the ratio is
    ``1 - Theta(1/d) = 1 - o(1/log n)`` — the regime where the paper notes
    ``cs`` "ends up just barely omega(1)".
    """
    d = _ovp_dimension(n, gamma)
    if k is None:
        k = d
    if not 1 <= k <= d:
        raise ParameterError(f"need 1 <= k <= d = {d}, got k={k}")
    size = -(-d // k)
    n_chunks = -(-d // size)
    d2 = n_chunks * (2 ** size)
    return HardInstanceParameters(
        problem="unsigned {0,1}",
        n=n, d_ovp=d, d_embedded=int(d2), s=float(n_chunks), cs=float(n_chunks - 1),
    )


def hard_instance_table(n_values, gamma: float = 2.0):
    """All three hard-instance parameter rows for each ``n``."""
    rows = []
    for n in n_values:
        rows.append(hard_instance_signed_pm1(n, gamma))
        rows.append(hard_instance_unsigned_pm1(n, gamma))
        rows.append(hard_instance_unsigned_01(n, gamma))
    return rows
