"""Shared low-level utilities: RNG plumbing, validation, bit manipulation."""

from repro.utils.persistence import load_structure, save_structure
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_approximation_factor,
    check_binary,
    check_matrix,
    check_positive,
    check_sign,
    check_threshold,
    check_vector,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "save_structure",
    "load_structure",
    "check_approximation_factor",
    "check_binary",
    "check_matrix",
    "check_positive",
    "check_sign",
    "check_threshold",
    "check_vector",
]
