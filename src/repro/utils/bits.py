"""Bit-level helpers: packing binary vectors and binary index codecs.

The OVP solvers pack {0,1} vectors into ``uint64`` words so that a pairwise
orthogonality test costs ``d/64`` word operations, and the sketch recovery
index of Section 4.3 addresses data structures by binary prefixes of vector
indices; both codecs live here.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DomainError, ValidationError
from repro.utils.validation import check_binary, check_matrix

WORD_BITS = 64

#: Widths up to this take the vectorized shift path in the bit codecs;
#: wider values need Python's arbitrary-precision integers.
_NATIVE_BITS = 63


def pack_binary_rows(X) -> np.ndarray:
    """Pack the rows of a binary matrix into ``uint64`` words.

    Returns an array of shape ``(n, ceil(d / 64))``; bit ``j`` of row ``i``
    is stored in word ``j // 64`` at position ``j % 64``.  ``bool`` and
    ``uint8`` inputs are packed directly — no int64 round-trip copy;
    other dtypes go through full binary validation first.
    """
    arr = np.asarray(X)
    if arr.dtype in (np.dtype(np.bool_), np.dtype(np.uint8)):
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2:
            raise ValidationError(f"X must be 2-dimensional, got shape {arr.shape}")
        if arr.shape[0] == 0 or arr.shape[1] == 0:
            raise ValidationError(f"X must be non-empty, got shape {arr.shape}")
        if arr.dtype == np.uint8 and int(arr.max()) > 1:
            raise DomainError("X must have entries in {0, 1}")
        bits = arr
    else:
        bits = check_binary(check_matrix(X, "X", dtype=np.int64), "X")
    n, d = bits.shape
    n_words = (d + WORD_BITS - 1) // WORD_BITS
    pad = n_words * WORD_BITS - d
    if pad:
        padded = np.zeros((n, n_words * WORD_BITS), dtype=np.uint8)
        padded[:, :d] = bits
    else:
        padded = np.ascontiguousarray(bits, dtype=np.uint8)
    # np.packbits packs most-significant-bit first within bytes; the exact
    # layout is irrelevant as long as it is consistent for both operands.
    packed_bytes = np.packbits(padded, axis=1)
    return packed_bytes.view(np.uint64).reshape(n, n_words)


def packed_dot_is_zero(a_words: np.ndarray, b_words: np.ndarray) -> bool:
    """Return True when the binary vectors behind the packed words are orthogonal."""
    return not np.any(np.bitwise_and(a_words, b_words))


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Binary representation of ``value`` as an array of ``width`` bits, MSB first."""
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    if width <= _NATIVE_BITS:
        shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
        return (np.int64(value) >> shifts) & np.int64(1)
    # Values this wide exceed int64; peel them word by word with Python's
    # arbitrary-precision shifts, vectorizing within each word.
    out = np.empty(width, dtype=np.int64)
    for start in range(0, width, _NATIVE_BITS):
        span = min(_NATIVE_BITS, width - start)
        word = (value >> (width - start - span)) & ((1 << span) - 1)
        shifts = np.arange(span - 1, -1, -1, dtype=np.int64)
        out[start:start + span] = (np.int64(word) >> shifts) & np.int64(1)
    return out


def bits_to_int(bits) -> int:
    """Inverse of :func:`int_to_bits` (MSB first)."""
    arr = np.asarray(bits, dtype=np.int64)
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("bits must be 0/1")
    out = 0
    # Fold 63-bit chunks: each chunk is one vectorized dot, and the
    # chunk results combine with arbitrary-precision shifts so widths
    # beyond 63 bits still round-trip.
    for start in range(0, arr.size, _NATIVE_BITS):
        chunk = arr[start:start + _NATIVE_BITS]
        weights = np.left_shift(
            np.int64(1), np.arange(chunk.size - 1, -1, -1, dtype=np.int64)
        )
        out = (out << chunk.size) | int(chunk @ weights)
    return out


def prefixes(value: int, width: int):
    """Yield the binary prefixes of ``value`` (MSB first) of lengths 1..width.

    Used by the prefix recovery index: a vector with index ``value`` belongs
    to the data structure of each of its binary prefixes.
    """
    bits = int_to_bits(value, width)
    prefix = 0
    for k in range(width):
        prefix = (prefix << 1) | int(bits[k])
        yield k + 1, prefix
