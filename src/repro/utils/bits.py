"""Bit-level helpers: packing binary vectors and binary index codecs.

The OVP solvers pack {0,1} vectors into ``uint64`` words so that a pairwise
orthogonality test costs ``d/64`` word operations, and the sketch recovery
index of Section 4.3 addresses data structures by binary prefixes of vector
indices; both codecs live here.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_binary, check_matrix

WORD_BITS = 64


def pack_binary_rows(X) -> np.ndarray:
    """Pack the rows of a binary matrix into ``uint64`` words.

    Returns an array of shape ``(n, ceil(d / 64))``; bit ``j`` of row ``i``
    is stored in word ``j // 64`` at position ``j % 64``.
    """
    X = check_binary(check_matrix(X, "X", dtype=np.int64), "X")
    n, d = X.shape
    n_words = (d + WORD_BITS - 1) // WORD_BITS
    padded = np.zeros((n, n_words * WORD_BITS), dtype=np.uint8)
    padded[:, :d] = X.astype(np.uint8)
    # np.packbits packs most-significant-bit first within bytes; the exact
    # layout is irrelevant as long as it is consistent for both operands.
    packed_bytes = np.packbits(padded, axis=1)
    return packed_bytes.view(np.uint64).reshape(n, n_words)


def packed_dot_is_zero(a_words: np.ndarray, b_words: np.ndarray) -> bool:
    """Return True when the binary vectors behind the packed words are orthogonal."""
    return not np.any(np.bitwise_and(a_words, b_words))


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Binary representation of ``value`` as an array of ``width`` bits, MSB first."""
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - k)) & 1 for k in range(width)], dtype=np.int64)


def bits_to_int(bits) -> int:
    """Inverse of :func:`int_to_bits` (MSB first)."""
    out = 0
    for b in np.asarray(bits, dtype=np.int64):
        if b not in (0, 1):
            raise ValueError("bits must be 0/1")
        out = (out << 1) | int(b)
    return out


def prefixes(value: int, width: int):
    """Yield the binary prefixes of ``value`` (MSB first) of lengths 1..width.

    Used by the prefix recovery index: a vector with index ``value`` belongs
    to the data structure of each of its binary prefixes.
    """
    bits = int_to_bits(value, width)
    prefix = 0
    for k in range(width):
        prefix = (prefix << 1) | int(bits[k])
        yield k + 1, prefix
