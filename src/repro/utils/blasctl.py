"""BLAS thread-count control without threadpoolctl.

Every chunk kernel bottoms out in a GEMM, and BLAS libraries default to
one thread per core.  Run ``k`` worker processes (or threads) on top of
that and you get ``k x cores`` BLAS threads thrashing each other —
oversubscription is a big slice of why the old process path ran at
0.23x serial.  The fix is standard: each worker pins its BLAS pool to
``total_cores // n_workers`` (at least 1) threads.

threadpoolctl is not a dependency of this repo, so this module speaks to
the BLAS runtime directly:

* :func:`set_blas_threads` / :func:`get_blas_threads` — resolve the
  ``*_set_num_threads`` / ``*_get_num_threads`` symbols in the BLAS
  shared object numpy is linked against (OpenBLAS spellings vary by
  build: plain, ``64_``-suffixed ILP64, and scipy-openblas-vendored
  variants are all probed) and call them via ctypes.  Takes effect
  immediately in the current process — the right tool for thread-pool
  workers and the serial path.
* :func:`blas_threads` — context manager: pin inside, restore on exit.
* :func:`blas_env` — the corresponding environment variables
  (``OMP_NUM_THREADS`` etc.).  Only effective if set *before* the BLAS
  library loads, i.e. before numpy is imported — the right tool for
  spawn-context worker processes, where the executor injects them into
  the child's environment ahead of interpreter start.
* :func:`worker_blas_threads` — the per-worker pin policy in one place.

If no known BLAS symbol resolves (unusual static builds), the setters
are no-ops that return ``False``/``0`` rather than raising: pinning is a
performance measure, never a correctness requirement.
"""

from __future__ import annotations

import ctypes
import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.errors import ParameterError

#: Environment variables that cap BLAS/OpenMP pools when set before the
#: library loads.  Ordered: generic OpenMP first, then each BLAS family.
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "BLIS_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)

#: set/get symbol spellings, most specific first.  scipy-openblas wheels
#: (what manylinux numpy ships) prefix with ``scipy_openblas`` and
#: suffix ILP64 builds with ``64_``.
_SET_SYMBOLS = (
    "scipy_openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads_64_",
    "scipy_openblas_set_num_threads",
    "openblas_set_num_threads64_",
    "openblas_set_num_threads_64_",
    "openblas_set_num_threads",
    "MKL_Set_Num_Threads",
    "bli_thread_set_num_threads",
)
_GET_SYMBOLS = (
    "scipy_openblas_get_num_threads64_",
    "scipy_openblas_get_num_threads_64_",
    "scipy_openblas_get_num_threads",
    "openblas_get_num_threads64_",
    "openblas_get_num_threads_64_",
    "openblas_get_num_threads",
    "mkl_get_max_threads",
    "bli_thread_get_num_threads",
)

# Resolved (setter, getter) ctypes functions; None until probed, a
# (None, None) pair if probing found nothing.
_RESOLVED: Optional[tuple] = None


def _candidate_libraries():
    """Shared objects that might expose BLAS thread controls.

    numpy's multiarray extension links the BLAS, so the loaded library
    is findable from numpy's vendored ``.libs`` directory; fall back to
    the process image itself (``None`` handle), which covers BLAS
    linked into the main binary.
    """
    import numpy as np

    seen = []
    base = os.path.dirname(os.path.dirname(np.__file__))
    for libs_dir in (
        os.path.join(base, "numpy.libs"),
        os.path.join(os.path.dirname(np.__file__), ".libs"),
    ):
        if not os.path.isdir(libs_dir):
            continue
        for entry in sorted(os.listdir(libs_dir)):
            lower = entry.lower()
            if any(tag in lower for tag in ("openblas", "blas", "mkl", "blis")):
                seen.append(os.path.join(libs_dir, entry))
    return seen


def _resolve() -> tuple:
    """Locate (setter, getter) once per process."""
    global _RESOLVED
    if _RESOLVED is not None:
        return _RESOLVED
    handles = []
    for path in _candidate_libraries():
        try:
            handles.append(ctypes.CDLL(path, mode=ctypes.RTLD_GLOBAL))
        except OSError:
            continue
    try:
        handles.append(ctypes.CDLL(None))  # symbols already in-process
    except (OSError, TypeError):  # pragma: no cover - platform quirk
        pass
    setter = getter = None
    for handle in handles:
        if setter is None:
            for name in _SET_SYMBOLS:
                fn = getattr(handle, name, None)
                if fn is not None:
                    fn.argtypes = [ctypes.c_int]
                    fn.restype = None
                    setter = fn
                    break
        if getter is None:
            for name in _GET_SYMBOLS:
                fn = getattr(handle, name, None)
                if fn is not None:
                    fn.argtypes = []
                    fn.restype = ctypes.c_int
                    getter = fn
                    break
        if setter is not None and getter is not None:
            break
    _RESOLVED = (setter, getter)
    return _RESOLVED


def blas_available() -> bool:
    """Whether a runtime thread-count setter was found."""
    return _resolve()[0] is not None


def get_blas_threads() -> int:
    """Current BLAS thread count, or ``0`` if no getter resolved."""
    getter = _resolve()[1]
    if getter is None:
        return 0
    return int(getter())


def set_blas_threads(n: int) -> bool:
    """Pin the BLAS pool to ``n`` threads; ``True`` if a setter ran."""
    if n < 1:
        raise ParameterError(f"BLAS thread count must be >= 1, got {n}")
    setter = _resolve()[0]
    if setter is None:
        return False
    setter(int(n))
    return True


@contextmanager
def blas_threads(n: int) -> Iterator[bool]:
    """Pin BLAS to ``n`` threads inside the block, restoring on exit.

    Yields whether the pin took effect.  Restoration needs a working
    getter; without one the previous count is unknowable and the pin is
    left in place (documented, not silent: yields ``False`` then too).
    """
    previous = get_blas_threads()
    applied = previous > 0 and set_blas_threads(n)
    try:
        yield applied
    finally:
        if applied:
            set_blas_threads(previous)


def blas_env(n: int) -> Dict[str, str]:
    """Environment mapping that caps BLAS pools at ``n`` threads.

    Must reach the process before its BLAS loads — pass to spawn-context
    worker initializers or ``subprocess`` env, not the current process.
    """
    if n < 1:
        raise ParameterError(f"BLAS thread count must be >= 1, got {n}")
    return {name: str(n) for name in BLAS_ENV_VARS}


def worker_blas_threads(n_workers: int, requested: Optional[int] = None) -> int:
    """Per-worker BLAS thread budget: explicit request, else fair share.

    The fair share is ``cpu_count // n_workers`` floored at 1 — with it,
    ``k`` workers never field more than ``cpu_count`` BLAS threads
    between them.
    """
    if requested is not None:
        if requested < 1:
            raise ParameterError(
                f"blas_threads must be >= 1, got {requested}"
            )
        return int(requested)
    cores = os.cpu_count() or 1
    return max(1, cores // max(1, n_workers))
