"""Structure persistence: save and load built indexes and sketches.

Index construction is the expensive step of every data structure in this
library; persistence lets a user build once and query across processes.
Two formats, both versioned so incompatible loads fail loudly
(:class:`PersistenceError`) instead of strangely:

* **Single file** (:func:`save_structure` / :func:`load_structure`) —
  pickle with a magic/version header.  Compact and universal, but the
  whole object (arrays included) is deserialized into fresh memory on
  every load.
* **Directory** (:func:`save_structure_dir` / :func:`load_structure_dir`)
  — a ``manifest.json`` (format version, object type, array table), a
  ``shell.pkl`` holding the object graph with every large array detoured
  to a raw sidecar file under ``arrays/``, and those sidecars loaded via
  ``np.memmap`` so a service opening a saved index maps the pages
  instead of copying them: N processes serving the same index share one
  page cache, and load time is independent of index size.  Sidecar
  views come back as plain read-only ``np.ndarray`` objects (memmap
  based), so downstream machinery that type-checks arrays — the
  shared-memory arena's freeze detour in particular — treats them
  exactly like in-memory arrays.

Both writers are **atomic**: content goes to ``<path>.tmp`` first, is
fsynced, and is renamed over the destination in one step — a crash
mid-save can never leave a truncated file under the real name.  Loaders
verify sizes and translate every decode failure into
:class:`PersistenceError`, so a file truncated by some *other* writer
still fails with a typed error rather than a bare pickle exception.
"""

from __future__ import annotations

import io
import json
import mmap as mmaplib
import os
import pickle
import shutil
from pathlib import Path
from typing import Any, List, Optional

import numpy as np

from repro.errors import ReproError

#: Bumped when persisted layouts change incompatibly.
FORMAT_VERSION = 1

#: Directory-format version, independent of the single-file one.
DIR_FORMAT_VERSION = 1

#: Arrays at or above this many bytes become raw sidecar files; smaller
#: ones stay inline in the pickled shell (matches the shared-memory
#: arena's placement threshold).
PERSIST_MIN_BYTES = 4096

_MAGIC = b"repro-structure"
_DIR_MAGIC = "repro-structure-dir"
_MANIFEST = "manifest.json"
_SHELL = "shell.pkl"
_ARRAY_DIR = "arrays"
_ARRAY_TAG = "repro-sidecar-array"

#: Exceptions a corrupt/truncated pickle stream can raise while decoding.
_DECODE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    ValueError,
    IndexError,
    AttributeError,
    ImportError,
    KeyError,
    MemoryError,
)


class PersistenceError(ReproError):
    """A structure file is missing, corrupt, or from an incompatible version."""


def _fsync_file(handle) -> None:
    handle.flush()
    os.fsync(handle.fileno())


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def save_structure(obj, path) -> None:
    """Serialize a built structure (index, sketch, engine) to ``path``.

    Atomic: bytes land in ``<path>.tmp`` and are renamed over ``path``
    only after an fsync, so a crash mid-save leaves either the old file
    or the new one — never a truncated hybrid.
    """
    path = Path(path)
    payload = {
        "magic": _MAGIC,
        "format_version": FORMAT_VERSION,
        "type": type(obj).__name__,
        "object": obj,
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        _fsync_file(handle)
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def load_structure(path, expected_type: str = None):
    """Load a structure saved by :func:`save_structure`.

    Args:
        path: file to read.
        expected_type: optional class-name check (e.g. ``"BatchSignIndex"``)
            so callers fail fast on the wrong file.

    Raises :class:`PersistenceError` on missing, truncated, corrupt, or
    version-incompatible files.  Note the standard pickle caveat: only
    load files you trust.
    """
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no structure file at {path}")
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except _DECODE_ERRORS as exc:
        raise PersistenceError(f"corrupt structure file {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise PersistenceError(f"{path} is not a repro structure file")
    if payload.get("format_version") != FORMAT_VERSION:
        raise PersistenceError(
            f"{path} uses format version {payload.get('format_version')}, "
            f"this library reads version {FORMAT_VERSION}"
        )
    if expected_type is not None and payload.get("type") != expected_type:
        raise PersistenceError(
            f"{path} holds a {payload.get('type')}, expected {expected_type}"
        )
    return payload["object"]


# ---------------------------------------------------------------------------
# Directory format: manifest + shell pickle + raw array sidecars


def save_structure_dir(
    obj,
    path,
    *,
    threshold: int = PERSIST_MIN_BYTES,
    overwrite: bool = True,
) -> Path:
    """Save a structure as a versioned directory with raw array sidecars.

    Layout::

        <path>/
          manifest.json     format version, type, array table
          shell.pkl         the object graph, large arrays detoured
          arrays/0000.bin   raw C-order bytes of each detoured array

    Every ndarray of at least ``threshold`` bytes is written once (deduped
    by object identity, like the shared-memory arena) as a raw sidecar and
    replaced in the pickle stream by a ``(tag, index)`` reference, so
    :func:`load_structure_dir` can reconstruct it as a ``np.memmap`` view
    instead of copying bytes through the pickle machinery.

    Atomic: the whole tree is assembled under ``<path>.tmp`` (files and
    directories fsynced) and renamed into place in one step.  With
    ``overwrite`` (default) an existing structure directory at ``path``
    is replaced; anything at ``path`` that is *not* a structure directory
    is never deleted.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    if tmp.exists():
        shutil.rmtree(tmp)
    array_dir = tmp / _ARRAY_DIR
    array_dir.mkdir(parents=True)

    entries: List[dict] = []
    seen: dict = {}
    keepalive: List[np.ndarray] = []

    class _SidecarPickler(pickle.Pickler):
        def persistent_id(self, target):
            if type(target) is np.ndarray and target.nbytes >= threshold:
                index = seen.get(id(target))
                if index is None:
                    index = len(entries)
                    seen[id(target)] = index
                    keepalive.append(target)
                    contiguous = np.ascontiguousarray(target)
                    name = f"{_ARRAY_DIR}/{index:04d}.bin"
                    with open(tmp / name, "wb") as handle:
                        contiguous.tofile(handle)
                        _fsync_file(handle)
                    entries.append({
                        "file": name,
                        "dtype": contiguous.dtype.str,
                        "shape": list(contiguous.shape),
                        "nbytes": int(contiguous.nbytes),
                    })
                return (_ARRAY_TAG, index)
            return None

    buffer = io.BytesIO()
    _SidecarPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    shell = buffer.getvalue()
    with open(tmp / _SHELL, "wb") as handle:
        handle.write(shell)
        _fsync_file(handle)
    manifest = {
        "magic": _DIR_MAGIC,
        "format_version": DIR_FORMAT_VERSION,
        "type": type(obj).__name__,
        "shell": _SHELL,
        "shell_nbytes": len(shell),
        "arrays": entries,
    }
    with open(tmp / _MANIFEST, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
        _fsync_file(handle)
    _fsync_dir(array_dir)
    _fsync_dir(tmp)
    if path.exists():
        if not overwrite:
            raise PersistenceError(f"{path} already exists")
        if not (path.is_dir() and (path / _MANIFEST).exists()):
            raise PersistenceError(
                f"{path} exists and is not a repro structure directory; "
                "refusing to replace it"
            )
        shutil.rmtree(path)
    os.rename(tmp, path)
    _fsync_dir(path.parent)
    return path


def _load_manifest(path: Path) -> dict:
    manifest_path = path / _MANIFEST
    if not path.exists():
        raise PersistenceError(f"no structure directory at {path}")
    if not manifest_path.exists():
        raise PersistenceError(f"{path} has no {_MANIFEST}: not a structure directory")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise PersistenceError(f"corrupt manifest in {path}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("magic") != _DIR_MAGIC:
        raise PersistenceError(f"{path} is not a repro structure directory")
    if manifest.get("format_version") != DIR_FORMAT_VERSION:
        raise PersistenceError(
            f"{path} uses directory format version "
            f"{manifest.get('format_version')}, this library reads version "
            f"{DIR_FORMAT_VERSION}"
        )
    return manifest


def _advise_random(mapped) -> None:
    """``MADV_RANDOM`` on a sidecar mapping, where the platform has it.

    Served indexes are point-queried: candidate verification gathers
    scattered rows, and the kernel's default sequential readahead turns
    each 4 KiB fault into ~128 KiB of neighbours — enough to pull a
    whole index resident behind a handful of queries.  Advising random
    access keeps a memmap-loaded session's RSS proportional to the rows
    actually touched.  Best-effort: a no-op off Linux/CPython.
    """
    advise = getattr(getattr(mapped, "_mmap", None), "madvise", None)
    flag = getattr(mmaplib, "MADV_RANDOM", None)
    if advise is not None and flag is not None:
        try:
            advise(flag)
        except (OSError, ValueError):
            pass


def load_structure_dir(
    path,
    expected_type: Optional[str] = None,
    *,
    mmap: bool = True,
):
    """Load a structure saved by :func:`save_structure_dir`.

    With ``mmap=True`` (default) every sidecar array comes back as a
    read-only ``np.ndarray`` view over a ``np.memmap`` — the file's pages
    are mapped, not copied, so loading a multi-gigabyte index costs
    milliseconds and peak RSS stays at the shell size until queries
    actually touch the data.  ``mmap=False`` reads full in-memory copies
    (writable), for callers that intend to mutate.

    Every sidecar is size-checked against the manifest before the shell
    is decoded, so a truncated array file raises
    :class:`PersistenceError` up front rather than a numpy error later.
    """
    path = Path(path)
    manifest = _load_manifest(path)
    if expected_type is not None and manifest.get("type") != expected_type:
        raise PersistenceError(
            f"{path} holds a {manifest.get('type')}, expected {expected_type}"
        )
    entries = manifest.get("arrays")
    if not isinstance(entries, list):
        raise PersistenceError(f"corrupt manifest in {path}: bad array table")
    arrays: List[np.ndarray] = []
    for entry in entries:
        try:
            file = path / entry["file"]
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(v) for v in entry["shape"])
            nbytes = int(entry["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(
                f"corrupt manifest in {path}: bad array entry: {exc}"
            ) from exc
        if not file.exists():
            raise PersistenceError(f"{path} is missing sidecar {entry['file']}")
        actual = file.stat().st_size
        if actual != nbytes:
            raise PersistenceError(
                f"truncated sidecar {entry['file']} in {path}: "
                f"{actual} bytes on disk, manifest says {nbytes}"
            )
        if mmap:
            mapped = np.memmap(file, dtype=dtype, mode="r", shape=shape)
            _advise_random(mapped)
            arrays.append(mapped.view(np.ndarray))
        else:
            arrays.append(np.fromfile(file, dtype=dtype).reshape(shape))
    shell_path = path / manifest.get("shell", _SHELL)
    if not shell_path.exists():
        raise PersistenceError(f"{path} is missing its shell pickle")
    expected_shell = manifest.get("shell_nbytes")
    if expected_shell is not None and shell_path.stat().st_size != expected_shell:
        raise PersistenceError(
            f"truncated shell pickle in {path}: "
            f"{shell_path.stat().st_size} bytes on disk, manifest says "
            f"{expected_shell}"
        )

    class _SidecarUnpickler(pickle.Unpickler):
        def persistent_load(self, pid):
            if (
                isinstance(pid, tuple)
                and len(pid) == 2
                and pid[0] == _ARRAY_TAG
                and isinstance(pid[1], int)
                and 0 <= pid[1] < len(arrays)
            ):
                return arrays[pid[1]]
            raise PersistenceError(
                f"unknown persistent reference {pid!r} in {path}"
            )

    try:
        with open(shell_path, "rb") as handle:
            return _SidecarUnpickler(handle).load()
    except _DECODE_ERRORS as exc:
        raise PersistenceError(f"corrupt shell pickle in {path}: {exc}") from exc
