"""Structure persistence: save and load built indexes and sketches.

Index construction is the expensive step of every data structure in this
library; persistence lets a user build once and query across processes.
Objects are stored with pickle (they are plain numpy-holding Python
objects with no open resources), wrapped with a header that records the
library version so incompatible loads fail loudly instead of strangely.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro.errors import ReproError

#: Bumped when persisted layouts change incompatibly.
FORMAT_VERSION = 1

_MAGIC = b"repro-structure"


class PersistenceError(ReproError):
    """A structure file is missing, corrupt, or from an incompatible version."""


def save_structure(obj, path) -> None:
    """Serialize a built structure (index, sketch, engine) to ``path``."""
    path = Path(path)
    payload = {
        "magic": _MAGIC,
        "format_version": FORMAT_VERSION,
        "type": type(obj).__name__,
        "object": obj,
    }
    with open(path, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


def load_structure(path, expected_type: str = None):
    """Load a structure saved by :func:`save_structure`.

    Args:
        path: file to read.
        expected_type: optional class-name check (e.g. ``"BatchSignIndex"``)
            so callers fail fast on the wrong file.

    Note the standard pickle caveat: only load files you trust.
    """
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no structure file at {path}")
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except (pickle.UnpicklingError, EOFError) as exc:
        raise PersistenceError(f"corrupt structure file {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise PersistenceError(f"{path} is not a repro structure file")
    if payload.get("format_version") != FORMAT_VERSION:
        raise PersistenceError(
            f"{path} uses format version {payload.get('format_version')}, "
            f"this library reads version {FORMAT_VERSION}"
        )
    if expected_type is not None and payload.get("type") != expected_type:
        raise PersistenceError(
            f"{path} holds a {payload.get('type')}, expected {expected_type}"
        )
    return payload["object"]
