"""Random-number-generator plumbing.

All randomized components of the library accept a ``seed`` argument that may
be ``None`` (fresh entropy), an integer, or an existing
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps every
constructor signature identical and reproducible runs one keyword away.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so stateful reuse
    across components is possible when the caller wants correlated draws.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Derive ``count`` statistically independent generators from ``seed``.

    Independent child streams are required when a structure (for example a
    multi-table LSH index) needs one generator per internal component but
    must stay reproducible from a single user-facing seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh seed material from the generator.
        seq = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
