"""Input validation helpers shared across the library.

These functions normalize inputs into ``float64``/``int64`` numpy arrays and
raise :class:`repro.errors.ValidationError` subclasses with messages that
name the offending argument, so failures surface at API boundaries rather
than deep inside numerical code.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DomainError, ParameterError, ValidationError


def check_vector(x, name: str = "x", dtype=np.float64) -> np.ndarray:
    """Return ``x`` as a 1-d numpy array, raising on bad shape or non-finite
    entries (see :func:`check_matrix` for why NaN/inf are rejected)."""
    arr = np.asarray(x, dtype=dtype)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if np.issubdtype(arr.dtype, np.floating) and not np.isfinite(arr).all():
        raise ValidationError(f"{name} contains NaN or infinite entries")
    return arr


def check_matrix(x, name: str = "X", dtype=np.float64, allow_empty: bool = False) -> np.ndarray:
    """Return ``x`` as a 2-d numpy array of shape (n, d).

    Rejects NaN/inf entries for float dtypes: every algorithm in this
    library silently corrupts under non-finite inputs (argmax of NaN
    scores, hash of inf projections), so the failure must happen at the
    API boundary.
    """
    arr = np.asarray(x, dtype=dtype)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if not allow_empty and (arr.shape[0] == 0 or arr.shape[1] == 0):
        raise ValidationError(f"{name} must be non-empty, got shape {arr.shape}")
    if np.issubdtype(arr.dtype, np.floating) and not np.isfinite(arr).all():
        raise ValidationError(f"{name} contains NaN or infinite entries")
    return arr


def check_binary(x, name: str = "x") -> np.ndarray:
    """Validate that all entries of ``x`` lie in {0, 1}; return int64 array."""
    arr = np.asarray(x)
    if not np.isin(arr, (0, 1)).all():
        raise DomainError(f"{name} must have entries in {{0, 1}}")
    return arr.astype(np.int64)


def check_sign(x, name: str = "x") -> np.ndarray:
    """Validate that all entries of ``x`` lie in {-1, +1}; return int64 array."""
    arr = np.asarray(x)
    if not np.isin(arr, (-1, 1)).all():
        raise DomainError(f"{name} must have entries in {{-1, +1}}")
    return arr.astype(np.int64)


def check_positive(value: float, name: str) -> float:
    """Validate that a scalar parameter is strictly positive."""
    value = float(value)
    if not value > 0:
        raise ParameterError(f"{name} must be positive, got {value}")
    return value


def check_threshold(s: float, name: str = "s") -> float:
    """Validate a join/search threshold ``s > 0``."""
    return check_positive(s, name)


def check_approximation_factor(c: float, name: str = "c") -> float:
    """Validate an approximation factor ``0 < c < 1`` (paper's Definition 1)."""
    c = float(c)
    if not 0.0 < c < 1.0:
        raise ParameterError(f"{name} must satisfy 0 < {name} < 1, got {c}")
    return c


def check_unit_ball(X: np.ndarray, radius: float = 1.0, name: str = "X", atol: float = 1e-9) -> np.ndarray:
    """Validate that every row of ``X`` has Euclidean norm at most ``radius``."""
    X = check_matrix(X, name)
    norms = np.linalg.norm(X, axis=1)
    worst = float(norms.max(initial=0.0))
    if worst > radius + atol:
        raise DomainError(
            f"rows of {name} must lie in the ball of radius {radius}, "
            f"but the largest norm is {worst:.6g}"
        )
    return X


def require(condition: bool, message: str, error=ValidationError) -> None:
    """Raise ``error(message)`` unless ``condition`` holds."""
    if not condition:
        raise error(message)
