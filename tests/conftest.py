"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _builtin_cost_model(monkeypatch):
    """Isolate tests from any persisted ``~/.repro/costmodel.json``.

    An empty ``REPRO_COSTMODEL`` tells
    :func:`repro.engine.planner.default_model` to use the builtin
    defaults, so planner-dependent tests behave the same on every
    machine regardless of local calibration state.
    """
    monkeypatch.setenv("REPRO_COSTMODEL", "")


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def unit_vectors(rng):
    """A small batch of unit vectors (8 x 16)."""
    X = rng.normal(size=(8, 16))
    return X / np.linalg.norm(X, axis=1, keepdims=True)
