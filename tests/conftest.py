"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def unit_vectors(rng):
    """A small batch of unit vectors (8 x 16)."""
    X = rng.normal(size=(8, 16))
    return X / np.linalg.norm(X, axis=1, keepdims=True)
