"""Batch hashing protocol: native vectorized hashers vs per-row reference.

Every concrete family's ``sample_batch`` hasher must produce *exactly*
the keys of its own per-row reference path (``hash_rows``), and an
``LSHIndex`` built through the batch path must produce exactly the
candidate sets of the generic per-vector closure path (``use_batch=
False``) for a shared seed — the batch protocol's core contract.
"""

import numpy as np
import pytest

from repro.lsh import (
    AsymmetricMinHash,
    CrossPolytopeLSH,
    DataDepALSH,
    E2LSH,
    HyperplaneLSH,
    L2ALSH,
    LSHIndex,
    MinHash,
    SignALSH,
    SimpleALSH,
    SymmetricIPSHash,
)
from repro.lsh.base import MISS_KEY
from repro.lsh.crosspolytope import _ROTATION_CACHE, sample_rotation

D = 10
SEED = 1234


def _dense_data(rng, n=40):
    P = rng.normal(size=(n, D))
    P /= np.linalg.norm(P, axis=1, keepdims=True) * 1.25
    Q = rng.normal(size=(n // 2, D))
    Q /= np.linalg.norm(Q, axis=1, keepdims=True)
    return P, Q


def _binary_data(rng, universe, max_norm, n=40):
    P = np.zeros((n, universe), dtype=np.int64)
    for row in P:
        row[rng.choice(universe, size=rng.integers(1, max_norm + 1), replace=False)] = 1
    Q = np.zeros((n // 2, universe), dtype=np.int64)
    for row in Q:
        row[rng.choice(universe, size=rng.integers(1, universe // 2), replace=False)] = 1
    return P, Q


def _family_and_data(name, rng):
    if name == "hyperplane":
        return HyperplaneLSH(D), _dense_data(rng)
    if name == "crosspolytope":
        return CrossPolytopeLSH(D), _dense_data(rng)
    if name == "e2lsh":
        return E2LSH(D, w=2.0), _dense_data(rng)
    if name == "simple_alsh":
        return SimpleALSH(D), _dense_data(rng)
    if name == "sign_alsh":
        P, Q = _dense_data(rng)
        return SignALSH.fit(P), (P, Q)
    if name == "l2alsh":
        P, Q = _dense_data(rng)
        return L2ALSH.fit(P), (P, Q)
    if name == "datadep":
        return DataDepALSH(D), _dense_data(rng)
    if name == "symmetric":
        return SymmetricIPSHash(D, sphere="hyperplane"), _dense_data(rng)
    if name == "minhash":
        return MinHash(24), _binary_data(rng, 24, 6)
    if name == "asym_minhash":
        return AsymmetricMinHash(24, max_norm=6), _binary_data(rng, 24, 6)
    raise AssertionError(name)


FAMILIES = [
    "hyperplane",
    "crosspolytope",
    "e2lsh",
    "simple_alsh",
    "sign_alsh",
    "l2alsh",
    "datadep",
    "symmetric",
    "minhash",
    "asym_minhash",
]


@pytest.mark.parametrize("name", FAMILIES)
def test_hash_matrix_equals_per_row_reference(name):
    rng = np.random.default_rng(SEED)
    family, (P, Q) = _family_and_data(name, rng)
    hasher = family.sample_batch(np.random.default_rng(SEED + 1), 3, 4)
    assert hasher is not None and hasher.is_native
    for X, side in ((P, "data"), (Q, "query")):
        batch = hasher.hash_matrix(X, side=side)
        rows = hasher.hash_rows(X, side=side)
        assert batch.shape == (X.shape[0], 4)
        assert batch.dtype == np.int64
        assert np.array_equal(batch, rows), f"{name}/{side}"


@pytest.mark.parametrize("name", FAMILIES)
def test_batch_index_matches_generic_index(name):
    rng = np.random.default_rng(SEED + 2)
    family, (P, Q) = _family_and_data(name, rng)
    batch_index = LSHIndex(family, n_tables=4, hashes_per_table=3, seed=99).build(P)
    generic_index = LSHIndex(
        family, n_tables=4, hashes_per_table=3, seed=99, use_batch=False
    ).build(P)
    assert batch_index.uses_batch_hashing
    assert not generic_index.uses_batch_hashing
    batch_cands = batch_index.candidates_batch(Q)
    generic_cands = generic_index.candidates_batch(Q)
    for b, g in zip(batch_cands, generic_cands):
        assert np.array_equal(b, g)
    assert batch_index.stats.candidates == generic_index.stats.candidates
    assert batch_index.stats.unique_candidates == generic_index.stats.unique_candidates
    # scalar path agrees with the batched path on the same index
    for j in range(Q.shape[0]):
        assert np.array_equal(batch_index.candidates(Q[j]), batch_cands[j])


def test_generic_hasher_marks_itself_non_native():
    class Opaque(HyperplaneLSH):
        def sample_batch(self, rng, hashes_per_table, n_tables):
            return None

    index = LSHIndex(Opaque(D), n_tables=2, hashes_per_table=2, seed=0)
    assert not index.uses_batch_hashing


def test_query_side_misses_produce_no_candidates():
    # A query key never seen on the data side must fall through cleanly.
    rng = np.random.default_rng(SEED)
    family = MinHash(24)
    P, Q = _binary_data(rng, 24, 6)
    index = LSHIndex(family, n_tables=2, hashes_per_table=2, seed=5).build(P)
    hasher = index._hasher
    keys = hasher.hash_matrix(Q, side="query")
    assert keys.dtype == np.int64
    assert MISS_KEY == np.int64(-1)
    # every returned candidate is a valid data row
    for cands in index.candidates_batch(Q):
        assert np.all((cands >= 0) & (cands < P.shape[0]))


def test_rotation_cache_identical_hashes():
    """Cached and fresh rotations give identical hashes for a fixed seed."""
    state = np.random.default_rng(777).bit_generator.state
    rng_a = np.random.default_rng(777)
    first = sample_rotation(rng_a, D)
    key = (D, repr(state))
    assert key in _ROTATION_CACHE
    rng_b = np.random.default_rng(777)
    cached = sample_rotation(rng_b, D)
    assert cached is first  # second call is a cache hit
    # the hit consumed the same variates: both rngs continue identically
    assert np.array_equal(rng_a.normal(size=3), rng_b.normal(size=3))
    # evicting the entry and resampling reproduces the same rotation
    _ROTATION_CACHE.pop(key)
    fresh = sample_rotation(np.random.default_rng(777), D)
    assert fresh is not first
    assert np.array_equal(fresh, first)
    family = CrossPolytopeLSH(D)
    x = np.random.default_rng(3).normal(size=D)
    x /= np.linalg.norm(x)
    pair_cached = family.sample(np.random.default_rng(42))
    _ROTATION_CACHE.clear()
    pair_fresh = family.sample(np.random.default_rng(42))
    assert pair_cached.hash_data(x) == pair_fresh.hash_data(x)
    assert pair_cached.hash_query(x) == pair_fresh.hash_query(x)


def test_rotation_cache_is_bounded():
    from repro.lsh.crosspolytope import _ROTATION_CACHE_MAX

    _ROTATION_CACHE.clear()
    for i in range(_ROTATION_CACHE_MAX + 10):
        sample_rotation(np.random.default_rng(10_000 + i), 4)
    assert len(_ROTATION_CACHE) <= _ROTATION_CACHE_MAX
