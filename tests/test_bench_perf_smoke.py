"""Tier-1 smoke for the perf suite: quick mode completes, schema valid.

``tools/bench_perf.py --quick`` is the CI guard for the fast paths: it
runs a seconds-scale shrink of the full n=100k suite, asserts the
equivalence checks inside it, and writes a schema-stable JSON artifact
(the full run's ``BENCH_PR1.json`` lives at the repo root).
"""

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOLS = os.path.join(REPO_ROOT, "tools")


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    sys.path.insert(0, TOOLS)
    try:
        import bench_perf
    finally:
        sys.path.remove(TOOLS)
    out = tmp_path_factory.mktemp("bench") / "bench_quick.json"
    report = bench_perf.main(["--quick", "--out", str(out)])
    return report, out, bench_perf


def test_quick_suite_completes_and_validates(quick_report):
    report, out, bench_perf = quick_report
    assert out.exists()
    on_disk = json.loads(out.read_text())
    bench_perf.validate_schema(on_disk)
    assert on_disk["meta"]["quick"] is True
    assert on_disk["schema"] == bench_perf.SCHEMA


def test_quick_suite_equivalence_checks_pass(quick_report):
    report, _, _ = quick_report
    assert all(report["checks"].values()), report["checks"]


def test_timings_positive(quick_report):
    report, _, _ = quick_report
    for key, value in report["timings"].items():
        if isinstance(value, dict):
            assert all(v > 0 for v in value.values()), key
        else:
            assert value > 0, key


def _load_bench_perf():
    sys.path.insert(0, TOOLS)
    try:
        import bench_perf
    finally:
        sys.path.remove(TOOLS)
    return bench_perf


def test_repo_artifact_when_present():
    """BENCH_PR1.json at the repo root, when checked in, must be valid."""
    path = os.path.join(REPO_ROOT, "BENCH_PR1.json")
    if not os.path.exists(path):
        pytest.skip("full-suite artifact not generated in this checkout")
    bench_perf = _load_bench_perf()
    with open(path) as handle:
        report = json.load(handle)
    bench_perf.validate_schema(report)
    assert report["meta"]["n"] == 100_000
    assert report["meta"]["d"] == 64
    assert report["speedups"]["candidates_csr_vs_dict"] >= 5.0
    assert report["checks"]["parallel_matches_identical"]


def test_pr2_artifact_when_present():
    """BENCH_PR2.json (batch hashing / sketch suites), when checked in."""
    path = os.path.join(REPO_ROOT, "BENCH_PR2.json")
    if not os.path.exists(path):
        pytest.skip("full-suite artifact not generated in this checkout")
    bench_perf = _load_bench_perf()
    with open(path) as handle:
        report = json.load(handle)
    bench_perf.validate_schema(report)
    suites = report["meta"]["suites"]
    assert "hash_batch_vs_generic" in suites
    assert "sketch_batch_vs_loop" in suites
    assert report["meta"]["hash_suite"]["n"] == 20_000
    assert report["meta"]["sketch_suite"]["n"] == 20_000
    for name in ("crosspolytope", "e2lsh"):
        assert report["speedups"][f"hash_batch_vs_generic_{name}"] >= 10.0
        assert report["checks"][f"hash_candidates_equal_{name}"]
    assert report["speedups"]["sketch_join_blocked_vs_loop"] >= 5.0
    assert report["checks"]["sketch_join_matches_equal"]
    assert all(report["checks"].values()), report["checks"]


def test_pr3_artifact_when_present():
    """BENCH_PR3.json (planner/dispatch suite), when checked in."""
    path = os.path.join(REPO_ROOT, "BENCH_PR3.json")
    if not os.path.exists(path):
        pytest.skip("full-suite artifact not generated in this checkout")
    bench_perf = _load_bench_perf()
    with open(path) as handle:
        report = json.load(handle)
    bench_perf.validate_schema(report)
    assert "planner_dispatch" in report["meta"]["suites"]
    assert report["meta"]["planner_suite"]["n"] == 20_000
    picks = report["work"]["planner_picks"]
    assert picks["tiny_signed"] in ("brute_force", "norm_pruned")
    assert picks["large_gap_signed"] in ("lsh", "sketch")
    ceiling = bench_perf.DISPATCH_OVERHEAD_CEILING
    assert report["work"]["dispatch_overhead_brute_force"] <= ceiling
    assert report["work"]["dispatch_overhead_lsh"] <= ceiling
    assert report["checks"]["dispatch_brute_matches_equal"]
    assert report["checks"]["dispatch_lsh_matches_equal"]
    assert all(report["checks"].values()), report["checks"]


def test_pr5_artifact_when_present():
    """BENCH_PR5.json (hybrid plan suite), when checked in."""
    path = os.path.join(REPO_ROOT, "BENCH_PR5.json")
    if not os.path.exists(path):
        pytest.skip("full-suite artifact not generated in this checkout")
    bench_perf = _load_bench_perf()
    with open(path) as handle:
        report = json.load(handle)
    bench_perf.validate_schema(report)
    assert "hybrid_vs_single" in report["meta"]["suites"]
    assert report["meta"]["hybrid_suite"]["n"] == 30_000
    assert report["speedups"]["hybrid_vs_best_single"] > 1.0
    assert report["work"]["hybrid_coverage_vs_brute"] >= \
        bench_perf.HYBRID_COVERAGE_FLOOR
    assert report["work"]["plan_dispatch_overhead"] <= \
        bench_perf.PLAN_DISPATCH_OVERHEAD_CEILING
    assert report["checks"]["hybrid_backend_is_plan"]
    assert report["checks"]["hybrid_parallel_identical"]
    assert all(report["checks"].values()), report["checks"]


def test_pr6_artifact_when_present():
    """BENCH_PR6.json (zero-copy parallel executor), when checked in."""
    path = os.path.join(REPO_ROOT, "BENCH_PR6.json")
    if not os.path.exists(path):
        pytest.skip("full-suite artifact not generated in this checkout")
    bench_perf = _load_bench_perf()
    with open(path) as handle:
        report = json.load(handle)
    bench_perf.validate_schema(report)
    assert "parallel_scaling" in report["meta"]["suites"]
    assert report["meta"]["parallel_suite"]["n"] == 40_000
    assert report["checks"]["parallel_modes_identical"]
    scaling = report["speedups"]["parallel_scaling_vs_serial"]
    legacy_ratio = report["speedups"]["parallel_zero_copy_vs_legacy"]
    for workers, ratio in legacy_ratio.items():
        assert ratio >= 1.0, f"zero-copy lost to legacy at {workers}w"
    # Wall-clock scaling assertions are cores-aware: the artifact may
    # have been recorded on a small container, so only enforce the 4w
    # floor when the recording machine actually had >= 4 cores.
    cores = report["work"]["parallel_cpu_count"]
    if cores >= 4 and "4" in scaling["process"]:
        best_4w = max(scaling["process"]["4"], scaling["thread"]["4"])
        assert best_4w >= bench_perf.PARALLEL_4W_SPEEDUP_FLOOR
    assert all(report["checks"].values()), report["checks"]


def test_pr7_artifact_when_present():
    """BENCH_PR7.json (quantized compact tier), when checked in."""
    path = os.path.join(REPO_ROOT, "BENCH_PR7.json")
    if not os.path.exists(path):
        pytest.skip("full-suite artifact not generated in this checkout")
    bench_perf = _load_bench_perf()
    with open(path) as handle:
        report = json.load(handle)
    bench_perf.validate_schema(report)
    assert "quantized_tier" in report["meta"]["suites"]
    assert report["meta"]["quant_suite"]["n"] == 100_000
    assert report["speedups"]["quant_scan_vs_brute"] >= \
        bench_perf.QUANT_SCAN_SPEEDUP_FLOOR
    assert report["speedups"]["quant_memory_reduction"] >= \
        bench_perf.QUANT_MEMORY_REDUCTION_FLOOR
    assert report["speedups"]["quant_filter_vs_brute"] > 1.0
    assert report["work"]["quant_filter_recall"] >= \
        bench_perf.QUANT_FILTER_RECALL_FLOOR
    assert report["checks"]["quant_matches_equal_brute"]
    assert report["checks"]["quant_parallel_identical"]
    assert report["checks"]["quant_auto_picks_quantized_under_budget"]
    assert all(report["checks"].values()), report["checks"]


def test_pr8_artifact_when_present():
    """BENCH_PR8.json (session engine core), when checked in."""
    path = os.path.join(REPO_ROOT, "BENCH_PR8.json")
    if not os.path.exists(path):
        pytest.skip("full-suite artifact not generated in this checkout")
    bench_perf = _load_bench_perf()
    with open(path) as handle:
        report = json.load(handle)
    bench_perf.validate_schema(report)
    assert "streaming_session" in report["meta"]["suites"]
    assert report["meta"]["session_suite"]["n"] == 100_000
    assert report["speedups"]["session_reuse_vs_oneshot"] >= \
        bench_perf.SESSION_REUSE_SPEEDUP_FLOOR
    assert (
        report["work"]["session_rss_mmap_load_bytes"]
        <= bench_perf.SESSION_MMAP_RSS_CEILING
        * report["work"]["session_rss_full_load_bytes"]
    )
    assert report["checks"]["session_matches_equal_oneshot"]
    assert report["checks"]["session_stream_bit_identical"]
    assert report["checks"]["session_load_matches_equal"]
    assert all(report["checks"].values()), report["checks"]


def test_pr10_artifact_when_present():
    """BENCH_PR10.json (similarity-measure layer), when checked in."""
    path = os.path.join(REPO_ROOT, "BENCH_PR10.json")
    if not os.path.exists(path):
        pytest.skip("full-suite artifact not generated in this checkout")
    bench_perf = _load_bench_perf()
    with open(path) as handle:
        report = json.load(handle)
    bench_perf.validate_schema(report)
    assert "jaccard_join" in report["meta"]["suites"]
    assert report["meta"]["jaccard_suite"]["n"] == 20_000
    assert report["work"]["jaccard_minhash_recall"] >= \
        bench_perf.JACCARD_MINHASH_RECALL_FLOOR
    assert report["speedups"]["jaccard_minhash_pair_reduction"] >= 1.0
    assert report["checks"]["jaccard_minhash_sound"]
    assert report["checks"]["jaccard_parallel_identical"]
    assert report["checks"]["jaccard_session_matches_equal"]
    assert report["checks"]["jaccard_stream_bit_identical"]
    assert all(report["checks"].values()), report["checks"]


def test_pr9_artifact_when_present():
    """BENCH_PR9.json (serving telemetry), when checked in."""
    path = os.path.join(REPO_ROOT, "BENCH_PR9.json")
    if not os.path.exists(path):
        pytest.skip("full-suite artifact not generated in this checkout")
    bench_perf = _load_bench_perf()
    with open(path) as handle:
        report = json.load(handle)
    bench_perf.validate_schema(report)
    assert "serving_obs" in report["meta"]["suites"]
    assert report["meta"]["serving_obs_suite"]["n"] == 50_000
    assert (
        report["work"]["serving_obs_overhead_disabled"]
        <= bench_perf.SERVING_OBS_DISABLED_CEILING
    )
    assert (
        report["work"]["serving_obs_overhead_sampled"]
        <= bench_perf.SERVING_OBS_SAMPLED_CEILING
    )
    assert report["checks"]["serving_matches_equal"]
    assert report["checks"]["serving_quantile_within_one_bucket"]
    assert report["checks"]["serving_sink_parseable"]
    assert report["checks"]["serving_sink_rotated"]
    assert all(report["checks"].values()), report["checks"]
