import numpy as np
import pytest

from repro.core import JoinSpec, brute_force_join, brute_force_mips, brute_force_search


class TestBruteForceJoin:
    def test_exact_signed(self, rng):
        P = rng.normal(size=(50, 8))
        Q = rng.normal(size=(20, 8))
        spec = JoinSpec(s=0.5)
        result = brute_force_join(P, Q, spec)
        ips = Q @ P.T
        for i in range(20):
            best = int(np.argmax(ips[i]))
            if ips[i, best] >= 0.5:
                assert result.matches[i] == best
            else:
                assert result.matches[i] is None

    def test_exact_unsigned(self, rng):
        P = rng.normal(size=(30, 6))
        Q = rng.normal(size=(10, 6))
        spec = JoinSpec(s=0.5, signed=False)
        result = brute_force_join(P, Q, spec)
        ips = np.abs(Q @ P.T)
        for i in range(10):
            best = int(np.argmax(ips[i]))
            expected = best if ips[i, best] >= 0.5 else None
            assert result.matches[i] == expected

    def test_blocking_invariant(self, rng):
        P = rng.normal(size=(37, 5))
        Q = rng.normal(size=(23, 5))
        spec = JoinSpec(s=0.3)
        full = brute_force_join(P, Q, spec, block=1024)
        blocked = brute_force_join(P, Q, spec, block=7)
        assert full.matches == blocked.matches

    def test_work_accounting(self, rng):
        P = rng.normal(size=(10, 3))
        Q = rng.normal(size=(4, 3))
        result = brute_force_join(P, Q, JoinSpec(s=0.1))
        assert result.inner_products_evaluated == 40

    def test_cs_threshold_applied(self, rng):
        P = np.array([[1.0, 0.0]])
        Q = np.array([[0.6, 0.0]])
        # Max inner product 0.6: below s=1 but above cs=0.5.
        result = brute_force_join(P, Q, JoinSpec(s=1.0, c=0.5))
        assert result.matches[0] == 0

    def test_signed_ignores_negative(self):
        P = np.array([[-1.0, 0.0]])
        Q = np.array([[1.0, 0.0]])
        assert brute_force_join(P, Q, JoinSpec(s=0.5)).matches[0] is None
        assert brute_force_join(P, Q, JoinSpec(s=0.5, signed=False)).matches[0] == 0


class TestBruteForceMIPS:
    def test_signed_argmax(self, rng):
        P = rng.normal(size=(40, 6))
        q = rng.normal(size=6)
        result = brute_force_mips(P, q)
        assert result.index == int(np.argmax(P @ q))
        assert abs(result.value - float((P @ q).max())) < 1e-12

    def test_unsigned_argmax(self):
        P = np.array([[1.0, 0.0], [-2.0, 0.0]])
        q = np.array([1.0, 0.0])
        result = brute_force_mips(P, q, signed=False)
        assert result.index == 1
        assert result.value == -2.0  # raw value reported


class TestBruteForceSearch:
    def test_hit(self):
        P = np.array([[1.0, 0.0]])
        assert brute_force_search(P, np.array([1.0, 0.0]), s=0.9) == 0

    def test_miss(self):
        P = np.array([[1.0, 0.0]])
        assert brute_force_search(P, np.array([0.0, 1.0]), s=0.5) is None

    def test_unsigned_hit_on_negative(self):
        P = np.array([[-1.0, 0.0]])
        q = np.array([1.0, 0.0])
        assert brute_force_search(P, q, s=0.5) is None
        assert brute_force_search(P, q, s=0.5, signed=False) == 0
