"""Tests for lsh_join, sketch_join, algebraic join and the dispatch API."""

import numpy as np
import pytest

from repro.core import (
    JoinSpec,
    brute_force_join,
    chebyshev_expand_join,
    lsh_join,
    signed_join,
    sketch_unsigned_join,
    unsigned_join,
)
from repro.datasets import planted_mips, random_sign
from repro.errors import CapacityError, DomainError, ParameterError
from repro.lsh import DataDepALSH


@pytest.fixture(scope="module")
def instance():
    return planted_mips(300, 16, 24, s=0.85, c=0.4, seed=0)


@pytest.fixture(scope="module")
def family():
    return DataDepALSH(24, sphere="hyperplane")


class TestLSHJoin:
    def test_recall_against_exact(self, instance, family):
        spec = JoinSpec(s=instance.s, c=0.4)
        exact = brute_force_join(instance.P, instance.Q, spec)
        approx = lsh_join(
            instance.P, instance.Q, spec, family,
            n_tables=16, hashes_per_table=6, seed=1,
        )
        assert approx.recall_against(exact) >= 0.8

    def test_matches_verified(self, instance, family):
        spec = JoinSpec(s=instance.s, c=0.4)
        result = lsh_join(instance.P, instance.Q, spec, family, seed=2)
        for qi, match in enumerate(result.matches):
            if match is not None:
                assert float(instance.P[match] @ instance.Q[qi]) >= spec.cs

    def test_subquadratic_work(self, instance, family):
        spec = JoinSpec(s=instance.s, c=0.4)
        result = lsh_join(
            instance.P, instance.Q, spec, family,
            n_tables=12, hashes_per_table=6, seed=3,
        )
        assert result.inner_products_evaluated < instance.n * 16

    def test_prebuilt_index_reused(self, instance, family):
        from repro.lsh import LSHIndex
        index = LSHIndex(family, n_tables=8, hashes_per_table=5, seed=4).build(instance.P)
        spec = JoinSpec(s=instance.s, c=0.4)
        result = lsh_join(instance.P, instance.Q, spec, family, index=index)
        assert len(result.matches) == 16


class TestSketchJoin:
    def test_planted_matches_found(self, instance):
        result = sketch_unsigned_join(instance.P, instance.Q, s=instance.s,
                                      kappa=4.0, seed=5)
        assert result.matched_count >= 14
        assert result.spec.c == pytest.approx(instance.n ** -0.25)

    def test_matches_clear_relaxed_threshold(self, instance):
        result = sketch_unsigned_join(instance.P, instance.Q, s=instance.s,
                                      kappa=3.0, seed=6)
        for qi, match in enumerate(result.matches):
            if match is not None:
                value = abs(float(instance.P[match] @ instance.Q[qi]))
                assert value >= result.spec.cs - 1e-12

    def test_bad_s(self, instance):
        with pytest.raises(ParameterError):
            sketch_unsigned_join(instance.P, instance.Q, s=-1.0)


class TestAlgebraicJoin:
    def test_planted_correlation_found(self):
        P = random_sign(50, 16, seed=7)
        Q = random_sign(30, 16, seed=8)
        Q[3] = P[11]
        result = chebyshev_expand_join(P, Q, JoinSpec(s=16.0, c=0.5, signed=False), degree=3)
        assert result.matches[3] == 11

    def test_matches_verified_against_raw_products(self):
        P = random_sign(40, 12, seed=9)
        Q = random_sign(20, 12, seed=10)
        spec = JoinSpec(s=12.0, c=0.9, signed=False)
        result = chebyshev_expand_join(P, Q, spec, degree=2)
        for qi, match in enumerate(result.matches):
            if match is not None:
                assert abs(int(P[match] @ Q[qi])) >= spec.cs

    def test_capacity_guard(self):
        P = random_sign(4, 50, seed=11)
        with pytest.raises(CapacityError):
            chebyshev_expand_join(P, P, JoinSpec(s=10.0, signed=False), degree=4)

    def test_requires_sign_vectors(self):
        with pytest.raises(DomainError):
            chebyshev_expand_join(
                np.zeros((2, 4)), np.zeros((2, 4)), JoinSpec(s=1.0), degree=2
            )

    def test_degree_validated(self):
        P = random_sign(4, 4, seed=12)
        with pytest.raises(ParameterError):
            chebyshev_expand_join(P, P, JoinSpec(s=1.0), degree=0)


class TestDispatch:
    def test_signed_exact(self, instance):
        result = signed_join(instance.P, instance.Q, s=instance.s)
        assert result.matched_count == 16

    def test_signed_lsh(self, instance, family):
        result = signed_join(instance.P, instance.Q, s=instance.s, c=0.4,
                             algorithm="lsh", family=family, seed=13)
        assert result.matched_count >= 12

    def test_signed_lsh_needs_family(self, instance):
        with pytest.raises(ParameterError):
            signed_join(instance.P, instance.Q, s=1.0, algorithm="lsh")

    def test_unknown_algorithm(self, instance):
        with pytest.raises(ParameterError):
            signed_join(instance.P, instance.Q, s=1.0, algorithm="magic")
        with pytest.raises(ParameterError):
            unsigned_join(instance.P, instance.Q, s=1.0, algorithm="magic")

    def test_unsigned_exact(self, instance):
        result = unsigned_join(instance.P, instance.Q, s=instance.s)
        assert result.matched_count == 16

    def test_unsigned_sketch(self, instance):
        result = unsigned_join(instance.P, instance.Q, s=instance.s,
                               algorithm="sketch", kappa=4.0, seed=14)
        assert result.matched_count >= 14

    def test_unsigned_via_signed_exact(self, instance):
        direct = unsigned_join(instance.P, instance.Q, s=instance.s, c=0.9)
        via = unsigned_join(instance.P, instance.Q, s=instance.s, c=0.9,
                            algorithm="via-signed")
        assert via.recall_against(direct) == 1.0

    def test_via_signed_catches_negative_matches(self):
        # A pair visible only through -q.
        P = np.array([[-0.9, 0.0], [0.0, 0.1]])
        Q = np.array([[0.9, 0.0]])
        result = unsigned_join(P, Q, s=0.5, c=0.9, algorithm="via-signed")
        assert result.matches[0] == 0

    def test_via_signed_with_lsh(self, instance, family):
        result = unsigned_join(instance.P, instance.Q, s=instance.s, c=0.4,
                               algorithm="via-signed", family=family, seed=15)
        assert result.matched_count >= 10
