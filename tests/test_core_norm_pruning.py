import numpy as np
import pytest

from repro.core import JoinSpec, NormScanIndex, brute_force_join, norm_pruned_join
from repro.datasets import latent_factor_model
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def model():
    return latent_factor_model(16, 400, rank=10, popularity_skew=1.0, seed=0)


class TestNormScanIndex:
    def test_norms_sorted_descending(self, model):
        index = NormScanIndex(model.items)
        assert (np.diff(index.norms) <= 1e-12).all()

    def test_prefix_length_cutoff(self, model):
        index = NormScanIndex(model.items)
        length = index.prefix_length(query_norm=1.0, threshold=0.5)
        assert (index.norms[:length] >= 0.5 - 1e-12).all()
        if length < index.n:
            assert index.norms[length] < 0.5

    def test_prefix_zero_threshold_scans_all(self, model):
        index = NormScanIndex(model.items)
        assert index.prefix_length(1.0, 0.0) == index.n

    def test_prefix_zero_query(self, model):
        index = NormScanIndex(model.items)
        assert index.prefix_length(0.0, 0.5) == 0

    def test_query_finds_exact_best(self, model):
        index = NormScanIndex(model.items)
        for u in range(16):
            q = model.users[u]
            prefs = model.preference(u)
            found, value, work = index.query(q, threshold=float(prefs.max()) * 0.99)
            assert found == int(np.argmax(prefs))
            assert abs(value - prefs.max()) < 1e-12

    def test_query_miss(self, model):
        index = NormScanIndex(model.items)
        found, _, work = index.query(model.users[0], threshold=100.0)
        assert found is None
        assert work == 0  # no vector can reach the threshold

    def test_wrong_dimension(self, model):
        index = NormScanIndex(model.items)
        with pytest.raises(ParameterError):
            index.query(np.zeros(3), threshold=0.5)


class TestNormPrunedJoin:
    def test_matches_brute_force_values(self, model):
        spec = JoinSpec(s=0.4, c=0.8)
        pruned = norm_pruned_join(model.items, model.users, spec)
        exact = brute_force_join(model.items, model.users, spec)
        # Compare matched values, not indices, to be robust to exact ties.
        for qi in range(model.n_users):
            a, b = pruned.matches[qi], exact.matches[qi]
            assert (a is None) == (b is None)
            if a is not None:
                va = float(model.items[a] @ model.users[qi])
                vb = float(model.items[b] @ model.users[qi])
                assert abs(va - vb) < 1e-12

    def test_prunes_on_skewed_norms(self, model):
        spec = JoinSpec(s=0.4, c=0.8)
        pruned = norm_pruned_join(model.items, model.users, spec)
        exact = brute_force_join(model.items, model.users, spec)
        assert pruned.inner_products_evaluated < exact.inner_products_evaluated / 2

    def test_unsigned_spec(self, rng):
        P = rng.normal(size=(100, 6))
        Q = rng.normal(size=(10, 6))
        spec = JoinSpec(s=0.5, signed=False)
        pruned = norm_pruned_join(P, Q, spec)
        exact = brute_force_join(P, Q, spec)
        for qi in range(10):
            a, b = pruned.matches[qi], exact.matches[qi]
            assert (a is None) == (b is None)
            if a is not None:
                assert abs(abs(P[a] @ Q[qi]) - abs(P[b] @ Q[qi])) < 1e-12

    def test_equal_norms_degrades_to_scan(self, rng):
        # Unit-norm data: no pruning possible when the threshold is low.
        P = rng.normal(size=(50, 6))
        P /= np.linalg.norm(P, axis=1, keepdims=True)
        Q = rng.normal(size=(5, 6))
        Q /= np.linalg.norm(Q, axis=1, keepdims=True)
        spec = JoinSpec(s=0.05)
        pruned = norm_pruned_join(P, Q, spec, block=1000)
        # Some queries find an early best that cuts the scan; the prefix
        # itself is the full set.
        index = NormScanIndex(P)
        assert index.prefix_length(1.0, 0.05) == 50

    def test_small_blocks_consistent(self, model):
        spec = JoinSpec(s=0.4, c=0.8)
        a = norm_pruned_join(model.items, model.users, spec, block=7)
        b = norm_pruned_join(model.items, model.users, spec, block=1000)
        for qi in range(model.n_users):
            x, y = a.matches[qi], b.matches[qi]
            assert (x is None) == (y is None)


class TestQueryBlock:
    def test_blocked_equals_scalar_scan(self, model, rng):
        index = NormScanIndex(model.items)
        Q = model.users
        for signed in (True, False):
            for threshold in (0.1, 0.5, 2.0):
                indices, values, work = index.query_block(
                    Q, threshold=threshold, signed=signed, block=64
                )
                for qi, q in enumerate(Q):
                    found, value, evaluated = index.query(
                        q, threshold=threshold, signed=signed, block=64
                    )
                    assert int(indices[qi]) == (-1 if found is None else found)
                    assert int(work[qi]) == evaluated
                    assert values[qi] == pytest.approx(value, rel=1e-9, abs=1e-12)

    def test_blocked_join_preserves_matches_and_work(self, model):
        spec = JoinSpec(s=0.4, c=0.8)
        blocked = norm_pruned_join(model.items, model.users, spec, block=32, query_block=7)
        index = NormScanIndex(model.items)
        work = 0
        matches = []
        for q in model.users:
            found, _, evaluated = index.query(q, threshold=spec.cs, signed=True, block=32)
            matches.append(found)
            work += evaluated
        assert blocked.matches == matches
        assert blocked.inner_products_evaluated == work

    def test_query_block_empty(self, model):
        index = NormScanIndex(model.items)
        indices, values, work = index.query_block(
            np.empty((0, index.d)), threshold=0.5
        )
        assert indices.size == 0 and values.size == 0 and work.size == 0

    def test_query_block_dimension_mismatch(self, model):
        index = NormScanIndex(model.items)
        with pytest.raises(ParameterError):
            index.query_block(np.ones((2, index.d + 1)), threshold=0.5)
