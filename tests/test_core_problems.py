import numpy as np
import pytest

from repro.core import JoinResult, JoinSpec
from repro.core.problems import validate_join_inputs
from repro.errors import ParameterError


class TestJoinSpec:
    def test_exact_spec(self):
        spec = JoinSpec(s=2.0)
        assert spec.c == 1.0 and spec.cs == 2.0

    def test_approximate_spec(self):
        spec = JoinSpec(s=2.0, c=0.5)
        assert spec.cs == 1.0

    def test_signed_satisfied(self):
        spec = JoinSpec(s=2.0, c=0.5, signed=True)
        assert spec.satisfied(1.0)
        assert not spec.satisfied(-3.0)

    def test_unsigned_satisfied(self):
        spec = JoinSpec(s=2.0, c=0.5, signed=False)
        assert spec.satisfied(-3.0)
        assert not spec.satisfied(0.5)

    def test_above_promise(self):
        spec = JoinSpec(s=2.0, c=0.5)
        assert spec.above_promise(2.0)
        assert not spec.above_promise(1.5)

    def test_bad_s(self):
        with pytest.raises(ParameterError):
            JoinSpec(s=0.0)

    def test_bad_c(self):
        with pytest.raises(ParameterError):
            JoinSpec(s=1.0, c=1.5)


class TestJoinResult:
    def test_matched_count(self):
        result = JoinResult(matches=[1, None, 3], spec=JoinSpec(s=1.0))
        assert result.matched_count == 2

    def test_recall_full(self):
        spec = JoinSpec(s=1.0)
        ref = JoinResult(matches=[1, 2, None], spec=spec)
        mine = JoinResult(matches=[5, 2, None], spec=spec)
        assert mine.recall_against(ref) == 1.0

    def test_recall_partial(self):
        spec = JoinSpec(s=1.0)
        ref = JoinResult(matches=[1, 2], spec=spec)
        mine = JoinResult(matches=[1, None], spec=spec)
        assert mine.recall_against(ref) == 0.5

    def test_recall_no_reference_matches(self):
        spec = JoinSpec(s=1.0)
        ref = JoinResult(matches=[None, None], spec=spec)
        mine = JoinResult(matches=[None, 1], spec=spec)
        assert mine.recall_against(ref) == 1.0

    def test_recall_length_mismatch(self):
        spec = JoinSpec(s=1.0)
        with pytest.raises(ParameterError):
            JoinResult(matches=[1], spec=spec).recall_against(
                JoinResult(matches=[1, 2], spec=spec)
            )


class TestValidateJoinInputs:
    def test_dimension_mismatch(self):
        with pytest.raises(ParameterError):
            validate_join_inputs(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_returns_float_matrices(self):
        P, Q = validate_join_inputs([[1, 2]], [[3, 4]])
        assert P.dtype == np.float64 and Q.shape == (1, 2)
