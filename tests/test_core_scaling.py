import numpy as np
import pytest

from repro.core import brute_force_search, cmips_via_search
from repro.errors import ParameterError


@pytest.fixture
def data(rng):
    P = rng.normal(size=(100, 8))
    return P / np.linalg.norm(P, axis=1, keepdims=True)


def oracle_for(P):
    return lambda q, s: brute_force_search(P, q, s, signed=False)


class TestCMIPSViaSearch:
    def test_finds_within_factor_c(self, data, rng):
        q = rng.normal(size=8); q /= np.linalg.norm(q)
        opt = float(np.abs(data @ q).max())
        result = cmips_via_search(oracle_for(data), q, s=2.0, c=0.5, gamma=0.01, data=data)
        assert result is not None
        assert abs(result.value) >= 0.5 * opt - 1e-9

    def test_exact_oracle_gives_scaled_exactness(self, data, rng):
        # With an exact oracle the first hit is within factor c of the max.
        q = rng.normal(size=8)
        result = cmips_via_search(oracle_for(data), q, s=5.0, c=0.9, gamma=0.01, data=data)
        opt = float(np.abs(data @ q).max())
        assert abs(result.value) >= 0.9 * opt - 1e-9

    def test_value_nan_without_data(self, data, rng):
        q = rng.normal(size=8)
        result = cmips_via_search(oracle_for(data), q, s=2.0, c=0.5, gamma=0.01)
        assert np.isnan(result.value)

    def test_none_when_promise_violated(self):
        # Oracle that never answers (empty dataset behaviour).
        result = cmips_via_search(lambda q, s: None, np.ones(3), s=1.0, c=0.5, gamma=0.5)
        assert result is None

    def test_scale_count_bounded(self, data, rng):
        calls = []

        def counting_oracle(q, s):
            calls.append(1)
            return None

        cmips_via_search(counting_oracle, rng.normal(size=8), s=1.0, c=0.5, gamma=0.125)
        # log_{2}(1/0.125) = 3 scales plus the original.
        assert len(calls) == 4

    def test_parameter_validation(self, data):
        oracle = oracle_for(data)
        q = np.ones(8)
        with pytest.raises(ParameterError):
            cmips_via_search(oracle, q, s=1.0, c=1.5, gamma=0.1)
        with pytest.raises(ParameterError):
            cmips_via_search(oracle, q, s=0.0, c=0.5, gamma=0.1)
        with pytest.raises(ParameterError):
            cmips_via_search(oracle, q, s=1.0, c=0.5, gamma=2.0)
