import numpy as np
import pytest

from repro.core import JoinSpec, lsh_self_join, self_join
from repro.errors import ParameterError
from repro.lsh import BatchSignIndex


class TestSelfJoin:
    def test_self_pairs_excluded(self, rng):
        P = rng.normal(size=(20, 6))
        spec = JoinSpec(s=0.01, signed=False)
        result = self_join(P, spec)
        for i, match in enumerate(result.matches):
            assert match != i

    def test_best_other_vector_found(self, rng):
        P = rng.normal(size=(30, 6))
        spec = JoinSpec(s=0.01, signed=False)
        result = self_join(P, spec)
        ips = np.abs(P @ P.T)
        np.fill_diagonal(ips, -np.inf)
        for i, match in enumerate(result.matches):
            if match is not None:
                assert abs(ips[i, match] - ips[i].max()) < 1e-12

    def test_duplicate_handling(self):
        P = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 0.2]])
        spec = JoinSpec(s=0.5)
        with_dups = self_join(P, spec, match_duplicates=True)
        assert with_dups.matches[0] == 1 and with_dups.matches[1] == 0
        without = self_join(P, spec, match_duplicates=False)
        assert without.matches[0] is None  # the only >= cs partner is a duplicate

    def test_threshold_respected(self, rng):
        P = rng.normal(size=(15, 4))
        spec = JoinSpec(s=100.0)
        assert self_join(P, spec).matched_count == 0

    def test_blocking_invariance(self, rng):
        P = rng.normal(size=(25, 5))
        spec = JoinSpec(s=0.2, signed=False)
        a = self_join(P, spec, block=4)
        b = self_join(P, spec, block=100)
        assert a.matches == b.matches

    def test_needs_two_vectors(self):
        with pytest.raises(ParameterError):
            self_join(np.ones((1, 3)), JoinSpec(s=1.0))


class TestLSHSelfJoin:
    def test_near_duplicates_found(self, rng):
        # Clustered data: pairs of near-duplicates.
        base = rng.normal(size=(25, 8))
        base *= 0.9 / np.linalg.norm(base, axis=1, keepdims=True)
        P = np.vstack([base, base + rng.normal(size=base.shape) * 0.01])
        P *= 0.99 / np.linalg.norm(P, axis=1, keepdims=True).max()
        spec = JoinSpec(s=0.7)
        idx = BatchSignIndex.for_symmetric(
            8, eps=0.05, n_tables=12, bits_per_table=8, seed=0
        ).build(P)
        exact = self_join(P, spec)
        approx = lsh_self_join(P, spec, idx)
        assert approx.recall_against(exact) >= 0.8

    def test_self_excluded(self, rng):
        P = rng.normal(size=(30, 6))
        P *= 0.9 / np.linalg.norm(P, axis=1, keepdims=True)
        idx = BatchSignIndex.for_symmetric(
            6, eps=0.1, n_tables=8, bits_per_table=4, seed=1
        ).build(P)
        result = lsh_self_join(P, JoinSpec(s=0.01, signed=False), idx)
        for i, match in enumerate(result.matches):
            assert match != i

    def test_duplicate_exclusion(self, rng):
        row = rng.normal(size=6)
        row *= 0.9 / np.linalg.norm(row)
        P = np.vstack([row, row, rng.normal(size=6) * 0.01])
        idx = BatchSignIndex.for_symmetric(
            6, eps=0.1, n_tables=8, bits_per_table=3, seed=2
        ).build(P)
        spec = JoinSpec(s=0.5)
        strict = lsh_self_join(P, spec, idx, match_duplicates=False)
        assert strict.matches[0] is None

    def test_subquadratic_verification(self, rng):
        P = rng.normal(size=(200, 8))
        P *= 0.9 / np.linalg.norm(P, axis=1, keepdims=True)
        idx = BatchSignIndex.for_symmetric(
            8, eps=0.1, n_tables=6, bits_per_table=8, seed=3
        ).build(P)
        result = lsh_self_join(P, JoinSpec(s=0.6), idx)
        assert result.inner_products_evaluated < 200 * 199 / 2
