import numpy as np
import pytest

from repro.core import JoinSpec, join_topk, lsh_join_topk, topk_recall
from repro.datasets import planted_mips
from repro.errors import ParameterError
from repro.lsh import BatchSignIndex, DataDepALSH


class TestJoinTopK:
    def test_exact_topk_order_and_threshold(self, rng):
        P = rng.normal(size=(30, 6))
        Q = rng.normal(size=(5, 6))
        spec = JoinSpec(s=0.5, c=0.5)
        results = join_topk(P, Q, spec, k=3)
        for qi, matches in enumerate(results):
            assert len(matches) <= 3
            values = [float(P[m] @ Q[qi]) for m in matches]
            assert all(v >= spec.cs for v in values)
            assert values == sorted(values, reverse=True)

    def test_k_one_matches_best(self, rng):
        P = rng.normal(size=(30, 6))
        Q = rng.normal(size=(4, 6))
        spec = JoinSpec(s=0.01)
        results = join_topk(P, Q, spec, k=1)
        ips = Q @ P.T
        for qi, matches in enumerate(results):
            if matches:
                assert matches[0] == int(np.argmax(ips[qi]))

    def test_unsigned_variant(self):
        P = np.array([[1.0, 0.0], [-2.0, 0.0], [0.0, 1.0]])
        Q = np.array([[1.0, 0.0]])
        spec = JoinSpec(s=0.5, signed=False)
        results = join_topk(P, Q, spec, k=5)
        assert results[0] == [1, 0]  # |-2| > |1|, 0.0 excluded

    def test_blocked_matches_unblocked(self, rng):
        P = rng.normal(size=(25, 5))
        Q = rng.normal(size=(9, 5))
        spec = JoinSpec(s=0.2, c=0.7)
        assert join_topk(P, Q, spec, 4, block=3) == join_topk(P, Q, spec, 4)

    def test_bad_k(self, rng):
        P = rng.normal(size=(5, 3))
        with pytest.raises(ParameterError):
            join_topk(P, P, JoinSpec(s=1.0), k=0)


class TestLSHJoinTopK:
    def test_with_generic_family(self):
        inst = planted_mips(300, 10, 24, s=0.85, c=0.4, seed=0)
        spec = JoinSpec(s=inst.s, c=0.4)
        exact = join_topk(inst.P, inst.Q, spec, k=3)
        approx = lsh_join_topk(
            inst.P, inst.Q, spec, k=3,
            family=DataDepALSH(24, sphere="hyperplane"),
            n_tables=14, hashes_per_table=6, seed=1,
        )
        assert topk_recall(approx, exact) >= 0.6

    def test_with_batch_index(self):
        inst = planted_mips(300, 10, 24, s=0.85, c=0.4, seed=2)
        spec = JoinSpec(s=inst.s, c=0.4)
        idx = BatchSignIndex.for_datadep(
            24, n_tables=16, bits_per_table=8, seed=3
        ).build(inst.P)
        exact = join_topk(inst.P, inst.Q, spec, k=3)
        approx = lsh_join_topk(inst.P, inst.Q, spec, k=3, index=idx)
        assert topk_recall(approx, exact) >= 0.6

    def test_requires_family_or_index(self, rng):
        P = rng.normal(size=(5, 3))
        with pytest.raises(ParameterError):
            lsh_join_topk(P, P, JoinSpec(s=1.0), k=2)


class TestTopKRecall:
    def test_perfect(self):
        assert topk_recall([[1, 2]], [[2, 1]]) == 1.0

    def test_partial(self):
        assert topk_recall([[1]], [[1, 2]]) == 0.5

    def test_empty_reference_ignored(self):
        assert topk_recall([[1], []], [[1], []]) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            topk_recall([[1]], [[1], [2]])


class TestBlockedTopK:
    def test_blocked_equals_per_query_reference(self, rng):
        from repro.lsh import HyperplaneLSH, LSHIndex

        P = rng.normal(size=(200, 12))
        P /= np.linalg.norm(P, axis=1, keepdims=True) * 1.1
        Q = rng.normal(size=(67, 12))
        Q /= np.linalg.norm(Q, axis=1, keepdims=True)
        spec = JoinSpec(s=0.5, c=0.6)
        family = HyperplaneLSH(12)
        blocked = lsh_join_topk(P, Q, spec, k=4, family=family, seed=11, block=16)
        index = LSHIndex(family, n_tables=16, hashes_per_table=4, seed=11).build(P)
        reference = []
        for q in Q:
            candidates = index.candidates(q)
            if candidates.size == 0:
                reference.append([])
                continue
            values = P[candidates] @ q
            keep = values >= spec.cs
            kept, scores = candidates[keep], values[keep]
            order = np.argsort(-scores)[:4]
            reference.append(kept[order].tolist())
        assert blocked == reference

    def test_candidate_values_block_alignment(self, rng):
        from repro.core.verify import candidate_values_block

        P = rng.normal(size=(50, 8))
        Q = rng.normal(size=(9, 8))
        cand_lists = [
            np.sort(rng.choice(50, size=rng.integers(0, 20), replace=False)).astype(np.int64)
            for _ in range(9)
        ]
        for signed in (True, False):
            values = candidate_values_block(P, Q, cand_lists, signed=signed)
            for i, cands in enumerate(cand_lists):
                expected = P[cands] @ Q[i]
                if not signed:
                    expected = np.abs(expected)
                assert values[i].shape == expected.shape
                assert np.allclose(values[i], expected, rtol=1e-9, atol=1e-12)
