"""Path-equivalence tests for the CSR tables, blocked verify, and executor.

The fast paths must be *refactorings*, not new algorithms: same seed ⇒
identical candidate sets and identical join matches across the generic
``LSHIndex``, the dict-layout ``BatchSignIndex``, the CSR layout, and
the process-parallel executor at any worker count.
"""

import numpy as np
import pytest

from repro.core import (
    BatchIndexSpec,
    JoinSpec,
    lsh_join,
    lsh_self_join,
    parallel_lsh_join,
    verify_block,
    verify_candidates,
)
from repro.datasets import planted_mips, random_unit
from repro.errors import ParameterError
from repro.lsh import BatchSignIndex, CSRBucketTable, DataDepALSH, LSHIndex


@pytest.fixture(scope="module")
def instance():
    return planted_mips(800, 24, 32, s=0.85, c=0.4, seed=0)


def _pair(instance, n_tables=10, bits=8, seed=3):
    """Identically-seeded dict and CSR BatchSignIndexes over the data."""
    dict_idx = BatchSignIndex.for_datadep(
        32, n_tables=n_tables, bits_per_table=bits, seed=seed, layout="dict"
    ).build(instance.P)
    csr_idx = BatchSignIndex.for_datadep(
        32, n_tables=n_tables, bits_per_table=bits, seed=seed, layout="csr"
    ).build(instance.P)
    return dict_idx, csr_idx


class TestCSRBucketTable:
    def test_roundtrip_groups_rows_by_key(self):
        keys = np.array([5, 3, 5, 5, 3, 9], dtype=np.int64)
        table = CSRBucketTable.from_keys(keys)
        np.testing.assert_array_equal(table.keys, [3, 5, 9])
        starts, ends = table.lookup(np.array([3, 5, 9, 4]))
        buckets = [table.indices[s:e].tolist() for s, e in zip(starts, ends)]
        assert buckets == [[1, 4], [0, 2, 3], [5], []]

    def test_bucket_contents_sorted_ascending(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 16, size=500)
        table = CSRBucketTable.from_keys(keys)
        for b in range(table.n_buckets):
            bucket = table.indices[table.offsets[b]:table.offsets[b + 1]]
            assert (np.diff(bucket) > 0).all()

    def test_empty_table_lookup(self):
        table = CSRBucketTable.from_keys(np.empty(0, dtype=np.int64))
        starts, ends = table.lookup(np.array([1, 2, 3]))
        assert (starts == ends).all()

    def test_gather_matches_manual_slices(self):
        keys = np.array([1, 1, 2, 3, 3, 3], dtype=np.int64)
        table = CSRBucketTable.from_keys(keys)
        starts, ends = table.lookup(np.array([3, 7, 1]))
        rows, lengths = table.gather(starts, ends)
        assert rows.tolist() == [3, 4, 5, 0, 1]
        assert lengths.tolist() == [3, 0, 2]


class TestLayoutEquivalence:
    @pytest.mark.parametrize("n_probes", [0, 2])
    def test_dict_and_csr_identical(self, instance, n_probes):
        dict_idx, csr_idx = _pair(instance)
        dict_lists = dict_idx.candidates_batch(instance.Q, n_probes=n_probes)
        csr_lists = csr_idx.candidates_batch(instance.Q, n_probes=n_probes)
        assert len(dict_lists) == len(csr_lists) == 24
        for a, b in zip(dict_lists, csr_lists):
            np.testing.assert_array_equal(a, b)
        # Work accounting must agree too, including probe attribution.
        for field in ("queries", "candidates", "unique_candidates",
                      "probe_candidates", "probed_buckets"):
            assert getattr(dict_idx.stats, field) == getattr(csr_idx.stats, field)

    def test_generic_index_matches_batch_index(self, instance):
        """Same seed ⇒ same hash stream: LSHIndex(DataDepALSH) and
        BatchSignIndex.for_datadep bucket identically."""
        generic = LSHIndex(
            DataDepALSH(32, sphere="hyperplane"),
            n_tables=6, hashes_per_table=8, seed=11,
        ).build(instance.P)
        batch = BatchSignIndex.for_datadep(
            32, n_tables=6, bits_per_table=8, seed=11
        ).build(instance.P)
        for qi in range(24):
            np.testing.assert_array_equal(
                generic.candidates(instance.Q[qi]),
                batch.candidates(instance.Q[qi]),
            )

    def test_generic_candidates_sorted_and_deterministic(self, instance):
        index = LSHIndex(
            DataDepALSH(32, sphere="hyperplane"),
            n_tables=8, hashes_per_table=6, seed=5,
        ).build(instance.P)
        first = index.candidates(instance.Q[0])
        assert (np.diff(first) > 0).all()
        np.testing.assert_array_equal(first, index.candidates(instance.Q[0]))

    def test_batch_candidates_sorted(self, instance):
        _, csr_idx = _pair(instance)
        for cands in csr_idx.candidates_batch(instance.Q, n_probes=2):
            if cands.size > 1:
                assert (np.diff(cands) > 0).all()

    def test_empty_query_matrix(self, instance):
        for idx in _pair(instance):
            assert idx.candidates_batch(np.empty((0, 32))) == []

    def test_empty_bucket_query(self):
        rng = np.random.default_rng(7)
        P = rng.normal(size=(40, 6))
        far = -P.mean(axis=0) * 100
        for layout in ("dict", "csr"):
            idx = BatchSignIndex.for_hyperplane(
                6, n_tables=1, bits_per_table=20, seed=0, layout=layout
            ).build(P)
            cands = idx.candidates(far)
            assert cands.size == 0 and cands.dtype == np.int64


class TestQueryStats:
    def test_reset(self, instance):
        _, idx = _pair(instance)
        idx.candidates_batch(instance.Q, n_probes=1)
        assert idx.stats.queries > 0
        idx.stats.reset()
        assert idx.stats.queries == 0
        assert idx.stats.candidates == 0
        assert idx.stats.probe_candidates == 0

    def test_join_reports_delta_not_cumulative(self, instance):
        """A reused index must not inflate candidates_generated (the
        QueryStats-pollution regression)."""
        _, idx = _pair(instance)
        spec = JoinSpec(s=instance.s, c=0.4)
        first = lsh_join(instance.P, instance.Q, spec, family=None, index=idx)
        second = lsh_join(instance.P, instance.Q, spec, family=None, index=idx)
        assert first.matches == second.matches
        assert first.candidates_generated == second.candidates_generated
        assert first.inner_products_evaluated == second.inner_products_evaluated
        # The index's cumulative stats still see both joins.
        assert idx.stats.queries == 48

    def test_probe_fraction(self, instance):
        _, idx = _pair(instance)
        idx.candidates_batch(instance.Q, n_probes=3)
        assert 0.0 < idx.stats.probe_fraction < 1.0
        assert idx.stats.probe_candidates <= idx.stats.candidates


class TestVerifyKernel:
    def _naive(self, P, Q, cand_lists, threshold, signed):
        out = []
        for qi, cands in enumerate(cand_lists):
            if cands.size == 0:
                out.append(None)
                continue
            values = P[cands] @ Q[qi]
            scores = values if signed else np.abs(values)
            best = int(np.argmax(scores))
            out.append(int(cands[best]) if scores[best] >= threshold else None)
        return out

    @pytest.mark.parametrize("signed", [True, False])
    def test_matches_naive_loop(self, signed):
        rng = np.random.default_rng(1)
        P = rng.normal(size=(300, 16))
        Q = rng.normal(size=(40, 16))
        cand_lists = [
            np.unique(rng.integers(0, 300, rng.integers(0, 25)))
            for _ in range(40)
        ]
        cand_lists[3] = np.empty(0, dtype=np.int64)  # force an empty list
        matches, evaluated = verify_candidates(
            P, Q, cand_lists, threshold=1.0, signed=signed, block=16
        )
        assert matches == self._naive(P, Q, cand_lists, 1.0, signed)
        assert evaluated == sum(c.size for c in cand_lists)

    def test_gemm_path_fires_and_agrees(self):
        """Heavily overlapping lists take the union-GEMM branch; results
        must equal the naive loop regardless."""
        rng = np.random.default_rng(2)
        P = rng.normal(size=(500, 8))
        Q = rng.normal(size=(64, 8))
        hot = np.arange(20, dtype=np.int64)
        cand_lists = [np.unique(rng.choice(hot, 15)) for _ in range(64)]
        result = verify_block(P, Q, cand_lists)
        naive = self._naive(P, Q, cand_lists, -np.inf, True)
        assert result.best_index.tolist() == naive

    def test_all_empty(self):
        P = np.eye(4)
        Q = np.eye(4)
        result = verify_block(P, Q, [np.empty(0, dtype=np.int64)] * 4)
        assert (result.best_index == -1).all()
        assert result.n_evaluated == 0


class TestExecutor:
    @pytest.fixture(scope="class")
    def workload(self):
        P = random_unit(2000, 24, seed=0) * 0.95
        Q = random_unit(300, 24, seed=1) * 0.95
        spec = JoinSpec(s=0.75, c=0.8)
        index_spec = BatchIndexSpec(
            d=24, scheme="datadep", n_tables=10, bits_per_table=9, seed=13
        )
        return P, Q, spec, index_spec

    def test_serial_equals_lsh_join(self, workload):
        P, Q, spec, index_spec = workload
        serial = parallel_lsh_join(P, Q, spec, index_spec=index_spec, n_workers=1)
        via_join = lsh_join(P, Q, spec, family=None, index=index_spec.build(P))
        assert serial.matches == via_join.matches
        assert serial.inner_products_evaluated == via_join.inner_products_evaluated
        assert serial.candidates_generated == via_join.candidates_generated

    def test_four_workers_identical_to_serial(self, workload):
        P, Q, spec, index_spec = workload
        serial = parallel_lsh_join(P, Q, spec, index_spec=index_spec, n_workers=1)
        parallel = parallel_lsh_join(P, Q, spec, index_spec=index_spec, n_workers=4)
        assert serial.matches == parallel.matches
        assert serial.inner_products_evaluated == parallel.inner_products_evaluated
        assert serial.candidates_generated == parallel.candidates_generated

    def test_multiprobe_parallel_identical(self, workload):
        P, Q, spec, index_spec = workload
        serial = parallel_lsh_join(
            P, Q, spec, index_spec=index_spec, n_workers=1, n_probes=2
        )
        parallel = parallel_lsh_join(
            P, Q, spec, index_spec=index_spec, n_workers=2, n_probes=2
        )
        assert serial.matches == parallel.matches
        # Multiprobe inspects strictly more candidates than exact-only.
        exact_only = parallel_lsh_join(
            P, Q, spec, index_spec=index_spec, n_workers=1
        )
        assert serial.candidates_generated >= exact_only.candidates_generated

    def test_prebuilt_index_shipped_to_workers(self, workload):
        P, Q, spec, index_spec = workload
        index = index_spec.build(P)
        parallel = parallel_lsh_join(P, Q, spec, index=index, n_workers=2)
        serial = parallel_lsh_join(P, Q, spec, index_spec=index_spec, n_workers=1)
        assert parallel.matches == serial.matches

    def test_block_alignment_worker_count_invariance(self, workload):
        """Different worker counts shard at different boundaries but the
        block alignment keeps every GEMM identical."""
        P, Q, spec, index_spec = workload
        results = [
            parallel_lsh_join(
                P, Q, spec, index_spec=index_spec, n_workers=w, block=64
            )
            for w in (1, 2, 3)
        ]
        assert results[0].matches == results[1].matches == results[2].matches

    def test_spec_validation(self):
        with pytest.raises(ParameterError, match="scheme"):
            BatchIndexSpec(d=8, scheme="nope")
        with pytest.raises(ParameterError, match="seed"):
            BatchIndexSpec(d=8, seed=None)

    def test_exactly_one_index_source(self, workload):
        P, Q, spec, index_spec = workload
        with pytest.raises(ParameterError, match="exactly one"):
            parallel_lsh_join(P, Q, spec)
        with pytest.raises(ParameterError, match="exactly one"):
            parallel_lsh_join(
                P, Q, spec, index_spec=index_spec, index=index_spec.build(P)
            )


class TestSelfJoinBlockedPath:
    def test_blocked_lsh_self_join_matches_per_query(self):
        P = random_unit(400, 16, seed=3) * 0.9
        spec = JoinSpec(s=0.7, c=0.7)
        idx = BatchSignIndex.for_symmetric(
            16, n_tables=12, bits_per_table=6, seed=4
        ).build(P)
        blocked = lsh_self_join(P, spec, idx, block=64)
        # Per-query reference: candidates + verify one row at a time.
        for qi in [0, 17, 399]:
            cands = idx.candidates(P[qi])
            cands = cands[cands != qi]
            if cands.size == 0:
                assert blocked.matches[qi] is None
                continue
            values = P[cands] @ P[qi]
            best = int(np.argmax(values))
            expected = int(cands[best]) if values[best] >= spec.cs else None
            assert blocked.matches[qi] == expected
