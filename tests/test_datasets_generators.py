import numpy as np
import pytest

from repro.datasets import (
    random_binary,
    random_gaussian,
    random_sign,
    random_sparse_binary,
    random_unit,
)
from repro.errors import ParameterError


class TestRandomBinary:
    def test_shape_and_domain(self):
        X = random_binary(10, 20, seed=0)
        assert X.shape == (10, 20)
        assert set(np.unique(X)) <= {0, 1}

    def test_density_respected(self):
        X = random_binary(200, 200, density=0.1, seed=0)
        assert 0.05 < X.mean() < 0.15

    def test_density_zero(self):
        assert random_binary(5, 5, density=0.0, seed=0).sum() == 0

    def test_density_one(self):
        assert random_binary(5, 5, density=1.0, seed=0).sum() == 25

    def test_bad_density(self):
        with pytest.raises(ParameterError):
            random_binary(5, 5, density=1.5)

    def test_bad_shape(self):
        with pytest.raises(ParameterError):
            random_binary(0, 5)

    def test_reproducible(self):
        np.testing.assert_array_equal(random_binary(5, 5, seed=3), random_binary(5, 5, seed=3))


class TestRandomSparseBinary:
    def test_exact_row_weight(self):
        X = random_sparse_binary(20, 30, ones_per_row=7, seed=0)
        np.testing.assert_array_equal(X.sum(axis=1), np.full(20, 7))

    def test_weight_bounds(self):
        with pytest.raises(ParameterError):
            random_sparse_binary(5, 10, ones_per_row=11)
        with pytest.raises(ParameterError):
            random_sparse_binary(5, 10, ones_per_row=0)


class TestRandomSign:
    def test_domain(self):
        X = random_sign(10, 10, seed=0)
        assert set(np.unique(X)) <= {-1, 1}

    def test_mean_near_zero(self):
        assert abs(random_sign(100, 100, seed=0).mean()) < 0.05


class TestRandomUnit:
    def test_unit_norms(self):
        X = random_unit(50, 8, seed=0)
        np.testing.assert_allclose(np.linalg.norm(X, axis=1), 1.0, atol=1e-12)

    def test_direction_spread(self):
        X = random_unit(500, 3, seed=0)
        assert np.abs(X.mean(axis=0)).max() < 0.1


class TestRandomGaussian:
    def test_scale(self):
        X = random_gaussian(500, 50, scale=2.0, seed=0)
        assert 1.9 < X.std() < 2.1

    def test_shape(self):
        assert random_gaussian(3, 4, seed=0).shape == (3, 4)
