import numpy as np
import pytest

from repro.datasets.io import (
    load_vectors,
    normalize_rows,
    normalize_to_unit_ball,
    save_vectors,
)
from repro.errors import ValidationError


class TestLoadSave:
    def test_npy_roundtrip(self, tmp_path, rng):
        X = rng.normal(size=(6, 4))
        save_vectors(tmp_path / "x.npy", X)
        np.testing.assert_allclose(load_vectors(tmp_path / "x.npy"), X)

    def test_csv_roundtrip(self, tmp_path, rng):
        X = rng.normal(size=(6, 4))
        save_vectors(tmp_path / "x.csv", X)
        np.testing.assert_allclose(load_vectors(tmp_path / "x.csv"), X, atol=1e-12)

    def test_csv_with_header(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b,c\n1,2,3\n4,5,6\n")
        np.testing.assert_array_equal(
            load_vectors(path), [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]
        )

    def test_csv_whitespace_separated(self, tmp_path):
        path = tmp_path / "w.csv"
        path.write_text("1 2 3\n4 5 6\n")
        assert load_vectors(path).shape == (2, 3)

    def test_csv_single_row(self, tmp_path):
        path = tmp_path / "one.csv"
        path.write_text("1,2,3\n")
        assert load_vectors(path).shape == (1, 3)

    def test_npz_single_array(self, tmp_path, rng):
        X = rng.normal(size=(3, 2))
        np.savez(tmp_path / "x.npz", data=X)
        np.testing.assert_allclose(load_vectors(tmp_path / "x.npz"), X)

    def test_npz_needs_key_when_ambiguous(self, tmp_path, rng):
        np.savez(tmp_path / "two.npz", a=rng.normal(size=(2, 2)), b=rng.normal(size=(2, 2)))
        with pytest.raises(ValidationError, match="npz_key"):
            load_vectors(tmp_path / "two.npz")
        assert load_vectors(tmp_path / "two.npz", npz_key="a").shape == (2, 2)

    def test_npz_wrong_key(self, tmp_path, rng):
        np.savez(tmp_path / "one.npz", a=rng.normal(size=(2, 2)))
        with pytest.raises(ValidationError, match="no array named"):
            load_vectors(tmp_path / "one.npz", npz_key="zzz")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="no dataset"):
            load_vectors(tmp_path / "nope.csv")

    def test_unsupported_extension(self, tmp_path):
        (tmp_path / "x.parquet").write_bytes(b"")
        with pytest.raises(ValidationError, match="unsupported"):
            load_vectors(tmp_path / "x.parquet")
        with pytest.raises(ValidationError, match="unsupported"):
            save_vectors(tmp_path / "x.parquet", np.ones((1, 1)))


class TestNormalization:
    def test_unit_ball(self, rng):
        X = rng.normal(size=(10, 4)) * 7
        Y = normalize_to_unit_ball(X)
        assert abs(np.linalg.norm(Y, axis=1).max() - 1.0) < 1e-12

    def test_unit_ball_margin(self, rng):
        X = rng.normal(size=(10, 4))
        Y = normalize_to_unit_ball(X, margin=0.1)
        assert abs(np.linalg.norm(Y, axis=1).max() - 0.9) < 1e-12

    def test_unit_ball_rejects_zeros(self):
        with pytest.raises(ValidationError):
            normalize_to_unit_ball(np.zeros((2, 3)))

    def test_unit_ball_bad_margin(self, rng):
        with pytest.raises(ValidationError):
            normalize_to_unit_ball(rng.normal(size=(2, 2)), margin=1.0)

    def test_rows(self, rng):
        Y = normalize_rows(rng.normal(size=(5, 3)))
        np.testing.assert_allclose(np.linalg.norm(Y, axis=1), 1.0)

    def test_rows_reject_zero_row(self, rng):
        X = rng.normal(size=(3, 3))
        X[1] = 0
        with pytest.raises(ValidationError):
            normalize_rows(X)
