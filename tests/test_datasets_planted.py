import numpy as np
import pytest

from repro.datasets import planted_mips, planted_ovp
from repro.errors import ParameterError


class TestPlantedOVP:
    def test_planted_pair_is_orthogonal(self):
        inst = planted_ovp(30, 24, planted=True, seed=0)
        i, j = inst.planted_pair
        assert inst.is_orthogonal(i, j)

    def test_unplanted_has_no_pair(self):
        inst = planted_ovp(30, 40, planted=False, seed=1)
        assert inst.planted_pair is None
        assert not (inst.P @ inst.Q.T == 0).any()

    def test_unbalanced_sizes(self):
        inst = planted_ovp(50, 24, planted=True, n_p=10, seed=2)
        assert inst.n_p == 10 and inst.n_q == 50

    def test_no_zero_rows(self):
        inst = planted_ovp(40, 24, planted=False, seed=3)
        assert (inst.P.sum(axis=1) > 0).all()
        assert (inst.Q.sum(axis=1) > 0).all()

    def test_rejects_tiny_dimension(self):
        with pytest.raises(ParameterError):
            planted_ovp(10, 1)

    def test_reproducible(self):
        a = planted_ovp(20, 24, seed=7)
        b = planted_ovp(20, 24, seed=7)
        np.testing.assert_array_equal(a.P, b.P)
        np.testing.assert_array_equal(a.Q, b.Q)


class TestPlantedMIPS:
    def test_planted_answers_reach_threshold(self):
        inst = planted_mips(200, 10, 32, s=0.8, c=0.5, seed=0)
        ips = inst.P[inst.answers] @ inst.Q.T
        diag = ips[np.arange(10), np.arange(10)]
        assert (diag >= inst.s - 1e-9).all()

    def test_bulk_below_cs(self):
        inst = planted_mips(200, 10, 32, s=0.8, c=0.5, seed=0)
        ips = inst.P @ inst.Q.T
        mask = np.ones_like(ips, dtype=bool)
        mask[inst.answers, np.arange(10)] = False
        assert np.abs(ips[mask]).max() < inst.cs

    def test_data_in_unit_ball(self):
        inst = planted_mips(100, 5, 16, seed=1)
        assert np.linalg.norm(inst.P, axis=1).max() <= 1.0 + 1e-9

    def test_queries_unit_norm(self):
        inst = planted_mips(100, 5, 16, seed=1)
        np.testing.assert_allclose(np.linalg.norm(inst.Q, axis=1), 1.0, atol=1e-9)

    def test_tight_gap_still_separates(self):
        inst = planted_mips(300, 8, 24, s=0.7, c=0.8, seed=2)
        ips = inst.P @ inst.Q.T
        mask = np.ones_like(ips, dtype=bool)
        mask[inst.answers, np.arange(8)] = False
        assert np.abs(ips[mask]).max() < inst.cs

    def test_rejects_more_queries_than_data(self):
        with pytest.raises(ParameterError):
            planted_mips(5, 10, 16)

    def test_rejects_bad_s(self):
        with pytest.raises(ParameterError):
            planted_mips(10, 2, 16, s=1.5)

    def test_properties(self):
        inst = planted_mips(50, 4, 12, seed=3)
        assert inst.n == 50 and inst.d == 12
