import numpy as np
import pytest

from repro.datasets import latent_factor_model
from repro.errors import ParameterError


class TestLatentFactorModel:
    def test_shapes(self):
        model = latent_factor_model(20, 50, rank=8, seed=0)
        assert model.users.shape == (20, 8)
        assert model.items.shape == (50, 8)
        assert model.rank == 8
        assert model.n_users == 20 and model.n_items == 50

    def test_users_unit_norm(self):
        model = latent_factor_model(10, 10, seed=0)
        np.testing.assert_allclose(np.linalg.norm(model.users, axis=1), 1.0)

    def test_items_in_unit_ball(self):
        model = latent_factor_model(10, 100, popularity_skew=1.0, seed=0)
        assert np.linalg.norm(model.items, axis=1).max() <= 1.0 + 1e-9

    def test_skew_spreads_norms(self):
        flat = latent_factor_model(5, 200, popularity_skew=0.0, seed=1)
        skewed = latent_factor_model(5, 200, popularity_skew=1.0, seed=1)
        assert np.linalg.norm(flat.items, axis=1).std() < 1e-9
        assert np.linalg.norm(skewed.items, axis=1).std() > 0.05

    def test_preference_matches_inner_product(self):
        model = latent_factor_model(4, 6, rank=3, seed=2)
        np.testing.assert_allclose(
            model.preference(1), model.items @ model.users[1]
        )

    def test_top_items_sorted(self):
        model = latent_factor_model(3, 30, seed=3)
        top = model.top_items(0, k=5)
        prefs = model.preference(0)
        assert len(top) == 5
        assert (np.diff(prefs[top]) <= 1e-12).all()
        assert prefs[top[0]] == prefs.max()

    def test_top_items_k_exceeds_items(self):
        model = latent_factor_model(2, 5, seed=4)
        assert len(model.top_items(0, k=50)) == 5

    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            latent_factor_model(0, 5)
        with pytest.raises(ParameterError):
            latent_factor_model(5, 5, popularity_skew=-1)
