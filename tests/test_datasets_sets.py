import numpy as np
import pytest

from repro.datasets import zipfian_sets
from repro.errors import ParameterError


class TestZipfianSets:
    def test_shape_and_domain(self):
        X = zipfian_sets(30, 100, mean_size=10, seed=0)
        assert X.shape == (30, 100)
        assert set(np.unique(X)) <= {0, 1}

    def test_no_empty_sets(self):
        X = zipfian_sets(50, 60, mean_size=1, seed=1)
        assert (X.sum(axis=1) >= 1).all()

    def test_mean_size_roughly_respected(self):
        X = zipfian_sets(300, 500, mean_size=20, seed=2)
        assert 15 < X.sum(axis=1).mean() < 25

    def test_skew_towards_low_ranks(self):
        X = zipfian_sets(500, 200, mean_size=10, exponent=1.5, seed=3)
        first_half = X[:, :100].sum()
        second_half = X[:, 100:].sum()
        assert first_half > 2 * second_half

    def test_set_sizes_capped_at_universe(self):
        X = zipfian_sets(20, 10, mean_size=10, seed=4)
        assert X.sum(axis=1).max() <= 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0, "universe": 10, "mean_size": 2},
            {"n": 5, "universe": 1, "mean_size": 1},
            {"n": 5, "universe": 10, "mean_size": 0},
            {"n": 5, "universe": 10, "mean_size": 2, "exponent": 0},
        ],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            zipfian_sets(**kwargs)
