import pickle

import numpy as np
import pytest

from repro.datasets import (
    SetCollection,
    jaccard_pair,
    planted_jaccard_sets,
    zipfian_sets,
)
from repro.errors import ParameterError
from repro.lsh.minhash import MinHash


class TestZipfianSets:
    def test_shape_and_domain(self):
        X = zipfian_sets(30, 100, mean_size=10, seed=0)
        assert X.shape == (30, 100)
        assert set(np.unique(X)) <= {0, 1}

    def test_no_empty_sets(self):
        X = zipfian_sets(50, 60, mean_size=1, seed=1)
        assert (X.sum(axis=1) >= 1).all()

    def test_mean_size_roughly_respected(self):
        X = zipfian_sets(300, 500, mean_size=20, seed=2)
        assert 15 < X.sum(axis=1).mean() < 25

    def test_skew_towards_low_ranks(self):
        X = zipfian_sets(500, 200, mean_size=10, exponent=1.5, seed=3)
        first_half = X[:, :100].sum()
        second_half = X[:, 100:].sum()
        assert first_half > 2 * second_half

    def test_set_sizes_capped_at_universe(self):
        X = zipfian_sets(20, 10, mean_size=10, seed=4)
        assert X.sum(axis=1).max() <= 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0, "universe": 10, "mean_size": 2},
            {"n": 5, "universe": 1, "mean_size": 1},
            {"n": 5, "universe": 10, "mean_size": 0},
            {"n": 5, "universe": 10, "mean_size": 2, "exponent": 0},
        ],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            zipfian_sets(**kwargs)


class TestSetCollectionEdgeCases:
    def test_empty_sets_roundtrip(self):
        sets = SetCollection.from_lists([[], [1, 3], []], universe=5)
        assert sets.shape == (3, 5)
        assert sets.sizes.tolist() == [0, 2, 0]
        assert sets.row(0).size == 0
        dense = sets.to_dense()
        assert dense.sum() == 2
        assert SetCollection.from_dense(dense) == sets

    def test_all_empty_collection(self):
        sets = SetCollection.from_lists([[], []], universe=4)
        assert sets.indices.size == 0
        assert SetCollection.from_dense(sets.to_dense()) == sets

    def test_duplicate_elements_dropped(self):
        sets = SetCollection.from_lists([[3, 1, 3, 1, 1]], universe=5)
        assert sets.row(0).tolist() == [1, 3]

    def test_singleton_universe(self):
        sets = SetCollection.from_lists([[], [0], [0]], universe=1)
        assert sets.shape == (3, 1)
        assert jaccard_pair(sets.row(0), sets.row(1)) == 0.0
        assert jaccard_pair(sets.row(1), sets.row(2)) == 1.0
        assert SetCollection.from_dense(sets.to_dense()) == sets

    def test_jaccard_pair_empty_vs_empty_is_zero(self):
        empty = np.empty(0, dtype=np.int64)
        assert jaccard_pair(empty, empty) == 0.0
        assert jaccard_pair(empty, np.array([2, 4])) == 0.0

    def test_slice_and_fancy_index_agree(self):
        sets = SetCollection.from_lists(
            [[0], [1, 2], [], [3, 4, 5], [2, 5]], universe=6
        )
        assert sets[1:4] == sets[np.arange(1, 4)]
        assert sets[::2] == sets[np.array([0, 2, 4])]
        assert len(sets[2:2]) == 0

    def test_coerce_rejects_ragged_python_lists(self):
        with pytest.raises(ParameterError, match="from_lists"):
            SetCollection.coerce([[0, 1], [2]])

    def test_coerce_rejects_non_binary_dense(self):
        with pytest.raises(ParameterError, match="0/1"):
            SetCollection.coerce(np.full((2, 3), 0.5))

    def test_constructor_validation(self):
        with pytest.raises(ParameterError):
            SetCollection(np.array([1, 2]), np.array([0, 1]), 4)
        with pytest.raises(ParameterError):
            SetCollection(np.array([0, 2]), np.array([0, 9]), 4)
        with pytest.raises(ParameterError):
            SetCollection(np.array([0, 1]), np.array([0]), 0)

    def test_pickle_roundtrip(self):
        sets = SetCollection.from_lists([[0, 2], [], [1]], universe=3)
        assert pickle.loads(pickle.dumps(sets)) == sets


class TestMinHashBatchVsPerRow:
    """The batch ``hash_matrix`` path must agree with the per-row
    reference key for key, including the empty-set sentinel rows."""

    def _tables(self, universe, n_tables=4, hashes_per_table=3, seed=0):
        family = MinHash(universe)
        rng = np.random.default_rng(seed)
        return family.sample_batch(
            rng, hashes_per_table=hashes_per_table, n_tables=n_tables
        )

    def test_batch_equals_per_row_on_random_sets(self):
        universe = 40
        tables = self._tables(universe)
        X = zipfian_sets(25, universe, mean_size=6, seed=1)
        assert np.array_equal(
            tables.hash_matrix(X), tables.hash_rows(X)
        )

    def test_batch_equals_per_row_with_empty_and_full_rows(self):
        universe = 12
        tables = self._tables(universe)
        X = np.zeros((4, universe), dtype=np.int64)
        X[1, :] = 1                      # the full universe
        X[2, 5] = 1                      # a singleton
        # row 0 and row 3 stay empty
        assert np.array_equal(tables.hash_matrix(X), tables.hash_rows(X))

    def test_empty_set_keys_are_the_packed_sentinel(self):
        universe = 9
        tables = self._tables(universe)
        X = np.zeros((2, universe), dtype=np.int64)
        keys = tables.hash_matrix(X)
        # EMPTY_SET components are -1, shifted by one to pack as 0.
        assert (keys == 0).all()

    def test_identical_sets_collide_in_every_table(self):
        universe = 30
        tables = self._tables(universe, n_tables=6)
        row = np.zeros((1, universe), dtype=np.int64)
        row[0, [2, 11, 17]] = 1
        X = np.vstack([row, row])
        keys = tables.hash_matrix(X)
        assert np.array_equal(keys[0], keys[1])

    def test_planted_workload_hashes_identically_both_paths(self):
        P, Q = planted_jaccard_sets(
            30, 8, universe=64, mean_size=8, threshold=0.6, seed=3
        )
        tables = self._tables(64, seed=5)
        for sets in (P, Q):
            dense = sets.to_dense()
            assert np.array_equal(
                tables.hash_matrix(dense), tables.hash_rows(dense)
            )
