"""Failure injection and edge cases across the library.

Degenerate dimensions, empty candidate sets, adversarial duplicates (the
p == q caveat of Section 4.2), thresholds nothing can reach, zero
vectors, and boundary approximation factors.
"""

import numpy as np
import pytest

from repro.core import (
    JoinSpec,
    brute_force_join,
    lsh_join,
    signed_join,
    sketch_unsigned_join,
    unsigned_join,
)
from repro.datasets import planted_mips
from repro.errors import ParameterError
from repro.lsh import BatchSignIndex, DataDepALSH, HyperplaneLSH, LSHIndex
from repro.mips import ConeTreeMIPS, ExactMIPS
from repro.sketches import LKappaSketch, SketchCMIPS


class TestUnreachableThresholds:
    def test_exact_join_all_none(self, rng):
        P = rng.normal(size=(20, 4))
        Q = rng.normal(size=(5, 4))
        result = brute_force_join(P, Q, JoinSpec(s=1e9))
        assert result.matches == [None] * 5

    def test_lsh_join_all_none(self, rng):
        P = rng.normal(size=(30, 4)); P /= 2 * np.linalg.norm(P, axis=1, keepdims=True)
        Q = rng.normal(size=(4, 4)); Q /= np.linalg.norm(Q, axis=1, keepdims=True)
        result = lsh_join(
            P, Q, JoinSpec(s=100.0, c=0.5), DataDepALSH(4, sphere="hyperplane"),
            seed=0,
        )
        assert result.matches == [None] * 4

    def test_sketch_join_all_none(self, rng):
        P = rng.normal(size=(40, 4))
        Q = rng.normal(size=(4, 4))
        result = sketch_unsigned_join(P, Q, s=1e9, kappa=3.0, seed=1)
        assert result.matches == [None] * 4


class TestDegenerateShapes:
    def test_single_data_vector(self):
        P = np.array([[1.0, 0.0]])
        Q = np.array([[1.0, 0.0], [0.0, 1.0]])
        result = brute_force_join(P, Q, JoinSpec(s=0.5))
        assert result.matches == [0, None]

    def test_single_dimension(self, rng):
        P = rng.normal(size=(10, 1))
        Q = rng.normal(size=(3, 1))
        result = brute_force_join(P, Q, JoinSpec(s=0.01, signed=False))
        assert len(result.matches) == 3

    def test_one_point_cone_tree(self):
        engine = ConeTreeMIPS(np.array([[2.0, 0.0]]), seed=0)
        assert engine.query(np.array([1.0, 1.0])).value == 2.0

    def test_sketch_on_tiny_dataset(self):
        P = np.array([[1.0, 0.0], [0.0, 1.0]])
        structure = SketchCMIPS(P, kappa=2.0, seed=0)
        answer = structure.query(np.array([1.0, 0.0]))
        assert answer.index == 0 and answer.value == 1.0

    def test_sketch_single_row(self):
        sketch = LKappaSketch(1, 2.0, copies=3, seed=0)
        assert sketch.estimate(np.array([3.0])) > 0


class TestZeroVectors:
    def test_zero_query_brute_force(self, rng):
        P = rng.normal(size=(5, 3))
        result = brute_force_join(P, np.zeros((1, 3)), JoinSpec(s=0.1))
        assert result.matches == [None]

    def test_zero_data_sketch_estimate(self):
        sketch = LKappaSketch(8, 3.0, copies=3, seed=0)
        assert sketch.estimate(np.zeros(8)) == 0.0

    def test_zero_vector_in_cone_tree(self, rng):
        P = np.vstack([np.zeros(3), rng.normal(size=(5, 3))])
        exact = ExactMIPS(P)
        tree = ConeTreeMIPS(P, seed=1)
        q = rng.normal(size=3)
        assert abs(exact.query(q).value - tree.query(q).value) < 1e-9


class TestAdversarialDuplicates:
    def test_duplicate_rows_exact_join(self):
        P = np.array([[1.0, 0.0]] * 5)
        Q = np.array([[1.0, 0.0]])
        result = brute_force_join(P, Q, JoinSpec(s=0.5))
        assert result.matches[0] in range(5)

    def test_duplicate_rows_in_lsh_index(self, rng):
        P = np.tile(rng.normal(size=(1, 4)), (8, 1))
        P *= 0.5 / np.linalg.norm(P[0])
        idx = LSHIndex(HyperplaneLSH(4), n_tables=4, hashes_per_table=2, seed=0)
        idx.build(P)
        cands = idx.candidates(P[0])
        assert set(cands.tolist()) == set(range(8))

    def test_query_equals_data_vector_unsigned(self):
        # The p == q pair in the unsigned join; must behave like any pair.
        P = np.array([[0.9, 0.0], [0.0, 0.1]])
        result = unsigned_join(P, np.array([[0.9, 0.0]]), s=0.5)
        assert result.matches[0] == 0


class TestBoundaryApproximationFactors:
    def test_c_exactly_one_is_exact(self, rng):
        P = rng.normal(size=(10, 4))
        Q = rng.normal(size=(3, 4))
        a = signed_join(P, Q, s=0.5, c=1.0)
        b = brute_force_join(P, Q, JoinSpec(s=0.5))
        assert a.matches == b.matches

    @pytest.mark.parametrize("c", [0.0, -0.5, 1.0001])
    def test_invalid_c_rejected(self, c, rng):
        P = rng.normal(size=(5, 3))
        with pytest.raises(ParameterError):
            JoinSpec(s=1.0, c=c)

    def test_tiny_c_accepted(self):
        spec = JoinSpec(s=1.0, c=1e-9)
        assert spec.cs == pytest.approx(1e-9)


class TestBatchIndexEdges:
    def test_empty_bucket_query(self, rng):
        # Tight bits, one table: a far query may find nothing; the index
        # must return an empty candidate array, not fail.
        P = rng.normal(size=(30, 6))
        idx = BatchSignIndex.for_hyperplane(
            6, n_tables=1, bits_per_table=20, seed=0
        ).build(P)
        cands = idx.candidates(-P.mean(axis=0) * 100)
        assert cands.dtype == np.int64

    def test_stats_accumulate(self, rng):
        P = rng.normal(size=(30, 6))
        idx = BatchSignIndex.for_hyperplane(
            6, n_tables=4, bits_per_table=4, seed=1
        ).build(P)
        idx.candidates(P[0])
        idx.candidates(P[1])
        assert idx.stats.queries == 2

    def test_lsh_join_accepts_batch_index(self, rng):
        inst = planted_mips(200, 8, 24, s=0.85, c=0.4, seed=2)
        idx = BatchSignIndex.for_datadep(
            24, n_tables=12, bits_per_table=8, seed=3
        ).build(inst.P)
        spec = JoinSpec(s=inst.s, c=0.4)
        result = lsh_join(inst.P, inst.Q, spec, family=None, index=idx)
        assert result.matched_count >= 6
