import math

import numpy as np
import pytest

from repro.embeddings.chebyshev import (
    chebyshev_growth_exact,
    chebyshev_growth_lower_bound,
    chebyshev_t,
    chebyshev_t_recurrence,
    chebyshev_t_vector,
    growth_bound_valid,
    scaled_chebyshev,
)
from repro.errors import ParameterError


class TestChebyshevValues:
    @pytest.mark.parametrize("x", [-1.0, -0.5, 0.0, 0.3, 1.0])
    def test_t0_is_one(self, x):
        assert chebyshev_t(0, x) == 1.0

    @pytest.mark.parametrize("x", [-2.0, -0.5, 0.0, 1.0, 3.0])
    def test_t1_is_identity(self, x):
        assert abs(chebyshev_t(1, x) - x) < 1e-12

    def test_t2_closed_form(self):
        for x in (-1.5, 0.2, 2.0):
            assert abs(chebyshev_t(2, x) - (2 * x * x - 1)) < 1e-9

    @pytest.mark.parametrize("q", [0, 1, 2, 3, 5, 8])
    def test_recurrence_matches_closed_form(self, q):
        for x in (-1.2, -0.7, 0.0, 0.9, 1.4):
            assert abs(chebyshev_t(q, x) - chebyshev_t_recurrence(q, x)) < 1e-6

    @pytest.mark.parametrize("q", [1, 3, 7])
    def test_bounded_on_unit_interval(self, q):
        xs = np.linspace(-1, 1, 101)
        assert np.all(np.abs(chebyshev_t_vector(q, xs)) <= 1.0 + 1e-12)

    def test_negative_q_raises(self):
        with pytest.raises(ParameterError):
            chebyshev_t(-1, 0.5)


class TestGrowthBound:
    @pytest.mark.parametrize("q", [1, 2, 5, 10, 20])
    @pytest.mark.parametrize("eps", [0.01, 0.1, 0.3, 0.49])
    def test_exact_growth_matches_t(self, q, eps):
        assert abs(chebyshev_t(q, 1.0 + eps) - chebyshev_growth_exact(q, eps)) < 1e-6

    @pytest.mark.parametrize("q", [1, 2, 5, 10, 20])
    @pytest.mark.parametrize("eps", [0.01, 0.1, 0.3, 0.49])
    def test_paper_bound_holds_when_valid(self, q, eps):
        # The paper's e^{q sqrt(eps)} is an asymptotic statement; the
        # validity predicate tells exactly when it kicks in.
        if growth_bound_valid(q, eps):
            assert chebyshev_t(q, 1.0 + eps) >= chebyshev_growth_lower_bound(q, eps)

    def test_bound_eventually_valid(self):
        # For every eps the bound becomes valid at finite q.
        for eps in (0.01, 0.1, 0.3, 0.49):
            assert any(growth_bound_valid(q, eps) for q in range(1, 200))

    def test_validity_is_monotone_in_q(self):
        eps = 0.1
        states = [growth_bound_valid(q, eps) for q in range(1, 50)]
        # Once valid, stays valid.
        first_true = states.index(True)
        assert all(states[first_true:])

    def test_half_exponential_lower_bound_always(self):
        # The provable-for-all-q bound: T_q(1+eps) >= e^{q acosh(1+eps)} / 2.
        for q in (1, 2, 5, 10):
            for eps in (0.01, 0.1, 0.3, 0.49):
                floor = math.exp(q * math.acosh(1.0 + eps)) / 2.0
                assert chebyshev_t(q, 1.0 + eps) >= floor - 1e-9

    def test_bound_domain(self):
        with pytest.raises(ParameterError):
            chebyshev_growth_lower_bound(3, 0.6)
        with pytest.raises(ParameterError):
            chebyshev_growth_lower_bound(3, 0.0)


class TestScaledChebyshev:
    @pytest.mark.parametrize("q", [0, 1, 2, 4])
    def test_matches_definition(self, q):
        b, u = 6.0, 7.0
        expected = (b ** q) * chebyshev_t(q, u / b)
        assert abs(scaled_chebyshev(q, u, b) - expected) < 1e-6 * max(1, abs(expected))

    def test_integer_valued_for_integer_inputs(self):
        # b^q T_q(u/b) via the integer recurrence stays integral.
        value = scaled_chebyshev(5, 10, 8)
        assert value == round(value)

    def test_bad_b(self):
        with pytest.raises(ParameterError):
            scaled_chebyshev(2, 1.0, 0.0)
