import numpy as np
import pytest

from repro.embeddings import ChebyshevSignEmbedding
from repro.embeddings.chebyshev import chebyshev_t
from repro.embeddings.chebyshev_pm1 import chebyshev_embedding_dims
from repro.errors import CapacityError, ParameterError


class TestDimensions:
    def test_recurrence_values(self):
        dims = chebyshev_embedding_dims(8, 3)
        base = 4 * 8 + 2
        assert dims[0] == 1
        assert dims[1] == base
        assert dims[2] == 2 * base * base + 256
        assert dims[3] == 2 * base * dims[2] + 256 * dims[1]

    @pytest.mark.parametrize("d", [8, 10, 16])
    @pytest.mark.parametrize("q", [1, 2, 3])
    def test_paper_dimension_bound(self, d, q):
        # D_q <= (9d)^q for d >= 8 (Lemma 3).
        assert chebyshev_embedding_dims(d, q)[-1] <= (9 * d) ** q

    def test_capacity_guard(self):
        with pytest.raises(CapacityError):
            ChebyshevSignEmbedding(d=32, q=5)

    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            ChebyshevSignEmbedding(d=1, q=2)
        with pytest.raises(ParameterError):
            ChebyshevSignEmbedding(d=8, q=0)


class TestGapParameters:
    def test_s_and_cs(self):
        emb = ChebyshevSignEmbedding(d=8, q=2)
        assert emb.cs == 16.0 ** 2
        assert abs(emb.s - 16.0 ** 2 * chebyshev_t(2, 1.0 + 1.0 / 8)) < 1e-9

    def test_gap_grows_with_q(self):
        ratios = [
            ChebyshevSignEmbedding(d=8, q=q).s / ChebyshevSignEmbedding(d=8, q=q).cs
            for q in (1, 2, 3)
        ]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_growth_exact(self):
        # s / cs = T_q(1 + 1/d) = cosh(q acosh(1 + 1/d)) exactly.
        import math
        emb = ChebyshevSignEmbedding(d=9, q=3)
        assert abs(emb.s / emb.cs - math.cosh(3 * math.acosh(1 + 1 / 9))) < 1e-9


class TestEmbeddedVectors:
    @pytest.fixture
    def emb(self):
        return ChebyshevSignEmbedding(d=6, q=2)

    def test_output_is_pm1(self, emb, rng):
        x = rng.integers(0, 2, 6)
        left = emb.embed_left(x)
        right = emb.embed_right(x)
        assert set(np.unique(left)) <= {-1.0, 1.0}
        assert set(np.unique(right)) <= {-1.0, 1.0}
        assert left.size == right.size == emb.d_out

    def test_inner_product_matches_closed_form(self, emb, rng):
        for _ in range(30):
            x = rng.integers(0, 2, 6)
            y = rng.integers(0, 2, 6)
            value = emb.embed_left(x) @ emb.embed_right(y)
            assert abs(value - emb.embedded_inner_product(int(x @ y))) < 1e-6

    def test_gap_holds(self, emb, rng):
        for _ in range(30):
            x = rng.integers(0, 2, 6)
            y = rng.integers(0, 2, 6)
            assert emb.gap_holds(x, y)

    def test_orthogonal_pair_above_s(self, emb):
        x = np.array([1, 1, 1, 0, 0, 0])
        y = np.array([0, 0, 0, 1, 1, 1])
        value = abs(emb.embed_left(x) @ emb.embed_right(y))
        assert value >= emb.s - 1e-9

    def test_q3_consistency(self, rng):
        emb = ChebyshevSignEmbedding(d=4, q=3)
        x = rng.integers(0, 2, 4)
        y = rng.integers(0, 2, 4)
        value = emb.embed_left(x) @ emb.embed_right(y)
        assert abs(value - emb.embedded_inner_product(int(x @ y))) < 1e-6

    def test_base_inner_product_formula(self):
        emb = ChebyshevSignEmbedding(d=5, q=1)
        # q=1 embeds the base gadget directly: u(t) = 2d + 2 - 4t.
        x = np.array([1, 1, 0, 0, 0])
        y = np.array([1, 0, 0, 0, 0])
        value = emb.embed_left(x) @ emb.embed_right(y)
        assert value == emb.base_inner_product(1)

    def test_wrong_dimension(self, emb):
        with pytest.raises(ParameterError):
            emb.embed_left(np.zeros(3, dtype=int))
