import numpy as np
import pytest

from repro.embeddings import ChoppedBinaryEmbedding
from repro.embeddings.chopped_01 import chunk_boundaries
from repro.errors import CapacityError, ParameterError


class TestChunking:
    def test_even_split(self):
        assert chunk_boundaries(12, 4) == [(0, 3), (3, 6), (6, 9), (9, 12)]

    def test_uneven_split_last_shorter(self):
        assert chunk_boundaries(10, 4) == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_k_equals_d(self):
        assert chunk_boundaries(5, 5) == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]

    def test_k_one(self):
        assert chunk_boundaries(5, 1) == [(0, 5)]

    def test_bad_k(self):
        with pytest.raises(ParameterError):
            chunk_boundaries(5, 6)
        with pytest.raises(ParameterError):
            chunk_boundaries(5, 0)


class TestParameters:
    def test_dimension_formula(self):
        emb = ChoppedBinaryEmbedding(d=12, k=4)
        assert emb.d_out == 4 * 2 ** 3

    def test_dimension_bound(self):
        # d2 <= k * 2^{ceil(d/k)}.
        for d, k in ((10, 3), (16, 4), (7, 7)):
            emb = ChoppedBinaryEmbedding(d=d, k=k)
            assert emb.d_out <= k * 2 ** (-(-d // k))

    def test_gap_values(self):
        emb = ChoppedBinaryEmbedding(d=12, k=4)
        assert emb.s == 4.0 and emb.cs == 3.0

    def test_k_equals_d_gives_2d_dims(self):
        emb = ChoppedBinaryEmbedding(d=9, k=9)
        assert emb.d_out == 18  # the Theorem 2 parametrization

    def test_capacity_guard(self):
        with pytest.raises(CapacityError):
            ChoppedBinaryEmbedding(d=40, k=1)


class TestEmbeddedVectors:
    @pytest.fixture
    def emb(self):
        return ChoppedBinaryEmbedding(d=12, k=4)

    def test_output_is_binary(self, emb, rng):
        x = rng.integers(0, 2, 12)
        assert set(np.unique(emb.embed_left(x))) <= {0.0, 1.0}
        assert set(np.unique(emb.embed_right(x))) <= {0.0, 1.0}

    def test_inner_product_counts_clean_chunks(self, emb, rng):
        for _ in range(50):
            x = rng.integers(0, 2, 12)
            y = rng.integers(0, 2, 12)
            value = emb.embed_left(x) @ emb.embed_right(y)
            assert value == emb.embedded_inner_product(x, y)

    def test_orthogonal_reaches_k(self, emb):
        x = np.zeros(12, dtype=int); x[::2] = 1
        y = np.zeros(12, dtype=int); y[1::2] = 1
        assert emb.embed_left(x) @ emb.embed_right(y) == 4.0

    def test_single_overlap_loses_one_chunk(self, emb):
        x = np.zeros(12, dtype=int); x[0] = 1
        y = np.zeros(12, dtype=int); y[0] = 1
        assert emb.embed_left(x) @ emb.embed_right(y) == 3.0

    def test_gap_holds(self, emb, rng):
        for _ in range(50):
            x = rng.integers(0, 2, 12)
            y = rng.integers(0, 2, 12)
            assert emb.gap_holds(x, y)

    def test_full_product_k1(self):
        emb = ChoppedBinaryEmbedding(d=8, k=1)
        x = np.zeros(8, dtype=int); x[:4] = 1
        y = np.zeros(8, dtype=int); y[4:] = 1
        # Orthogonal: full product polynomial evaluates to 1.
        assert emb.embed_left(x) @ emb.embed_right(y) == 1.0
        y[0] = 1
        assert emb.embed_left(x) @ emb.embed_right(y) == 0.0

    def test_uneven_chunks_still_correct(self, rng):
        emb = ChoppedBinaryEmbedding(d=11, k=3)
        for _ in range(30):
            x = rng.integers(0, 2, 11)
            y = rng.integers(0, 2, 11)
            assert emb.embed_left(x) @ emb.embed_right(y) == emb.embedded_inner_product(x, y)

    def test_wrong_dimension(self, emb):
        with pytest.raises(ParameterError):
            emb.embed_left(np.zeros(5, dtype=int))
