import numpy as np
import pytest

from repro.embeddings import SymmetricSphereCompletion
from repro.errors import DomainError


@pytest.fixture(scope="module")
def completion():
    # Module-scoped: building the Reed-Solomon registry is not free.
    return SymmetricSphereCompletion(eps=0.1, precision_bits=12)


class TestSymmetricSphereCompletion:
    def test_output_on_unit_sphere(self, completion, rng):
        for _ in range(5):
            x = rng.normal(size=4)
            x *= rng.uniform(0, 0.99) / np.linalg.norm(x)
            assert abs(np.linalg.norm(completion.embed(x)) - 1.0) < 1e-9

    def test_inner_products_preserved_up_to_eps(self, completion, rng):
        for _ in range(10):
            p = rng.normal(size=4); p *= 0.8 / np.linalg.norm(p)
            q = rng.normal(size=4); q *= 0.6 / np.linalg.norm(q)
            fp, fq = completion.embed(p), completion.embed(q)
            assert abs(fp @ fq - p @ q) <= completion.eps + 1e-9

    def test_identical_vectors_map_identically(self, completion):
        x = np.array([0.25, -0.5, 0.125, 0.0])
        np.testing.assert_array_equal(completion.embed(x), completion.embed(x))

    def test_self_inner_product_is_one(self, completion):
        # The deliberate relaxation: f(p).f(p) = 1 even when p.p < 1.
        x = np.array([0.25, 0.0, 0.0, 0.0])
        f = completion.embed(x)
        assert abs(f @ f - 1.0) < 1e-9
        assert x @ x < 0.9

    def test_symmetric_interface(self, completion):
        x = np.array([0.1, 0.2, 0.3, 0.0])
        np.testing.assert_array_equal(completion.embed_data(x), completion.embed_query(x))

    def test_outside_ball_rejected(self, completion):
        with pytest.raises(DomainError):
            completion.embed(np.array([1.0, 1.0, 0.0, 0.0]))

    def test_output_dimension(self, completion):
        assert completion.output_dimension(4) == 4 + completion.registry.dimension

    def test_batch(self, completion, rng):
        X = rng.normal(size=(3, 4))
        X *= 0.5 / np.linalg.norm(X, axis=1, keepdims=True)
        out = completion.embed_many(X)
        assert out.shape == (3, completion.output_dimension(4))

    def test_quantization_merges_close_vectors(self):
        coarse = SymmetricSphereCompletion(eps=0.2, precision_bits=2)
        a = coarse.embed(np.array([0.5, 0.0]))
        b = coarse.embed(np.array([0.51, 0.0]))
        # At 2-bit precision 0.5 and 0.51 quantize to the same key, so the
        # incoherent companions (the tails) coincide.
        np.testing.assert_allclose(a[2:] / np.linalg.norm(a[2:]),
                                   b[2:] / np.linalg.norm(b[2:]))
