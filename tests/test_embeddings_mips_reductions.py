import numpy as np
import pytest

from repro.embeddings import (
    L2ALSHTransform,
    NeyshaburSrebroTransform,
    SimpleLSHTransform,
)
from repro.errors import DomainError, ParameterError


class TestNeyshaburSrebro:
    @pytest.fixture
    def transform(self):
        return NeyshaburSrebroTransform(query_radius=2.0)

    def test_outputs_unit_norm(self, transform, rng):
        p = rng.normal(size=6); p /= 2 * np.linalg.norm(p)
        q = rng.normal(size=6); q /= np.linalg.norm(q) / 1.5
        assert abs(np.linalg.norm(transform.embed_data(p)) - 1) < 1e-9
        assert abs(np.linalg.norm(transform.embed_query(q)) - 1) < 1e-9

    def test_inner_product_scaled_by_u(self, transform, rng):
        p = rng.normal(size=6); p /= 2 * np.linalg.norm(p)
        q = rng.normal(size=6); q /= np.linalg.norm(q)
        embedded = transform.embed_data(p) @ transform.embed_query(q)
        assert abs(embedded - (p @ q) / 2.0) < 1e-9

    def test_asymmetry(self, transform):
        v = np.array([0.1, 0.2, 0.0, 0.0, 0.0, 0.0])
        assert not np.allclose(transform.embed_data(v), transform.embed_query(v))

    def test_data_outside_ball_rejected(self, transform):
        with pytest.raises(DomainError):
            transform.embed_data(np.full(4, 1.0))

    def test_query_outside_ball_rejected(self, transform):
        with pytest.raises(DomainError):
            transform.embed_query(np.full(4, 2.0))

    def test_output_dimension(self, transform):
        assert transform.output_dimension(6) == 8

    def test_batch_shapes(self, transform, rng):
        P = rng.normal(size=(5, 6)); P /= 3 * np.linalg.norm(P, axis=1, keepdims=True)
        assert transform.embed_data_many(P).shape == (5, 8)

    def test_bad_radius(self):
        with pytest.raises(ParameterError):
            NeyshaburSrebroTransform(query_radius=0.0)

    def test_scale_accessor(self, transform):
        assert transform.inner_product_scale() == 0.5


class TestSimpleLSHTransform:
    @pytest.fixture
    def transform(self):
        return SimpleLSHTransform()

    def test_preserves_inner_products(self, transform, rng):
        p = rng.normal(size=5); p *= 0.4 / np.linalg.norm(p)
        q = rng.normal(size=5); q /= np.linalg.norm(q)
        embedded = transform.embed_data(p) @ transform.embed_query(q)
        assert abs(embedded - p @ q) < 1e-9

    def test_data_completion_unit_norm(self, transform):
        p = np.array([0.3, 0.0, 0.0])
        assert abs(np.linalg.norm(transform.embed_data(p)) - 1) < 1e-9

    def test_query_must_be_unit(self, transform):
        with pytest.raises(DomainError):
            transform.embed_query(np.array([0.5, 0.0]))

    def test_unit_data_gets_zero_tail(self, transform):
        p = np.array([1.0, 0.0])
        assert transform.embed_data(p)[-1] == 0.0


class TestL2ALSH:
    def test_output_dimension(self):
        assert L2ALSHTransform(m=3).output_dimension(5) == 8

    def test_norm_powers_appended(self):
        t = L2ALSHTransform(m=3, max_norm_target=0.8)
        x = np.array([0.6, 0.0])
        out = t.embed_data(x, scale=1.0)
        np.testing.assert_allclose(out[2:], [0.36, 0.36 ** 2, 0.36 ** 4])

    def test_query_halves(self):
        t = L2ALSHTransform(m=2)
        out = t.embed_query(np.array([3.0, 4.0]))
        np.testing.assert_allclose(out, [0.6, 0.8, 0.5, 0.5])

    def test_distance_formula(self, rng):
        # |P(x) - Q(q)|^2 = 1 + m/4 - 2 x.q/|q| + |x|^{2^{m+1}} after scaling.
        t = L2ALSHTransform(m=3, max_norm_target=0.8)
        x = rng.normal(size=4); x *= 0.7 / np.linalg.norm(x)
        q = rng.normal(size=4)
        ex, eq = t.embed_data(x, scale=1.0), t.embed_query(q)
        lhs = np.sum((ex - eq) ** 2)
        norm_sq = float(x @ x)
        rhs = 1 + 3 / 4 - 2 * (x @ q) / np.linalg.norm(q) + norm_sq ** (2 ** 3)
        assert abs(lhs - rhs) < 1e-9

    def test_fit_scale_targets_max_norm(self, rng):
        t = L2ALSHTransform(max_norm_target=0.83)
        P = rng.normal(size=(10, 4))
        scale = t.fit_scale(P)
        assert abs(np.linalg.norm(P * scale, axis=1).max() - 0.83) < 1e-9

    def test_monotone_in_inner_product(self, rng):
        # Larger inner product => smaller embedded distance (fixed norms).
        t = L2ALSHTransform(m=3)
        q = np.array([1.0, 0.0])
        near = np.array([0.7, 0.0])
        far = np.array([0.0, 0.7])
        d_near = np.sum((t.embed_data(near, 1.0) - t.embed_query(q)) ** 2)
        d_far = np.sum((t.embed_data(far, 1.0) - t.embed_query(q)) ** 2)
        assert d_near < d_far

    def test_zero_query_rejected(self):
        with pytest.raises(DomainError):
            L2ALSHTransform().embed_query(np.zeros(3))

    def test_scaled_data_must_fit_ball(self):
        with pytest.raises(DomainError):
            L2ALSHTransform().embed_data(np.array([2.0, 0.0]), scale=1.0)

    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            L2ALSHTransform(m=0)
        with pytest.raises(ParameterError):
            L2ALSHTransform(max_norm_target=1.0)
