import numpy as np
import pytest

from repro.embeddings.ops import (
    concat_maps,
    concat_vectors,
    constant_map,
    identity_map,
    repeat_map,
    repeat_vector,
    tensor_maps,
    tensor_vectors,
)
from repro.errors import ParameterError


class TestVectorOps:
    def test_concat(self):
        out = concat_vectors(np.array([1.0, 2.0]), np.array([3.0]))
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_tensor_shape(self):
        assert tensor_vectors(np.ones(3), np.ones(4)).shape == (12,)

    def test_tensor_inner_product_duality(self, rng):
        x1, x2 = rng.normal(size=5), rng.normal(size=7)
        y1, y2 = rng.normal(size=5), rng.normal(size=7)
        lhs = tensor_vectors(x1, x2) @ tensor_vectors(y1, y2)
        rhs = (x1 @ y1) * (x2 @ y2)
        assert abs(lhs - rhs) < 1e-9

    def test_concat_inner_product_duality(self, rng):
        x1, x2 = rng.normal(size=4), rng.normal(size=6)
        y1, y2 = rng.normal(size=4), rng.normal(size=6)
        lhs = concat_vectors(x1, x2) @ concat_vectors(y1, y2)
        assert abs(lhs - (x1 @ y1 + x2 @ y2)) < 1e-9

    def test_repeat_scales_inner_product(self, rng):
        x, y = rng.normal(size=3), rng.normal(size=3)
        lhs = repeat_vector(x, 5) @ repeat_vector(y, 5)
        assert abs(lhs - 5 * (x @ y)) < 1e-9

    def test_repeat_zero_times(self):
        assert repeat_vector(np.ones(3), 0).size == 0

    def test_repeat_negative_raises(self):
        with pytest.raises(ParameterError):
            repeat_vector(np.ones(3), -1)


class TestPairMapCombinators:
    def test_concat_maps_adds(self, rng):
        m = concat_maps(identity_map(4), identity_map(4))
        x, y = rng.normal(size=4), rng.normal(size=4)
        lhs = m.embed_left(x) @ m.embed_right(y)
        assert abs(lhs - 2 * (x @ y)) < 1e-9

    def test_tensor_maps_multiplies(self, rng):
        m = tensor_maps(identity_map(3), identity_map(3))
        x, y = rng.normal(size=3), rng.normal(size=3)
        lhs = m.embed_left(x) @ m.embed_right(y)
        assert abs(lhs - (x @ y) ** 2) < 1e-9

    def test_repeat_map_scales(self, rng):
        m = repeat_map(identity_map(3), 4)
        x, y = rng.normal(size=3), rng.normal(size=3)
        assert abs(m.embed_left(x) @ m.embed_right(y) - 4 * (x @ y)) < 1e-9

    def test_constant_map_translates(self, rng):
        m = concat_maps(identity_map(3), constant_map(3, np.ones(5), -np.ones(5)))
        x, y = rng.normal(size=3), rng.normal(size=3)
        assert abs(m.embed_left(x) @ m.embed_right(y) - (x @ y - 5)) < 1e-9

    def test_dims_tracked(self):
        m = tensor_maps(identity_map(3), concat_maps(identity_map(3), identity_map(3)))
        assert m.d_out == 18
        assert m.d_in == 3

    def test_mismatched_d_in_rejected(self):
        with pytest.raises(ParameterError):
            concat_maps(identity_map(3), identity_map(4))
        with pytest.raises(ParameterError):
            tensor_maps(identity_map(3), identity_map(4))

    def test_empty_concat_rejected(self):
        with pytest.raises(ParameterError):
            concat_maps()

    def test_constant_map_length_mismatch(self):
        with pytest.raises(ParameterError):
            constant_map(3, np.ones(2), np.ones(3))

    def test_wrong_input_dimension_raises(self):
        m = identity_map(3)
        with pytest.raises(ValueError):
            m.embed_left(np.ones(4))

    def test_batch_embedding(self, rng):
        m = concat_maps(identity_map(3), identity_map(3))
        X = rng.normal(size=(5, 3))
        out = m.embed_left_many(X)
        assert out.shape == (5, 6)
