import numpy as np
import pytest

from repro.datasets import random_binary
from repro.embeddings import SignedCoordinateEmbedding
from repro.errors import ParameterError


@pytest.fixture
def embedding():
    return SignedCoordinateEmbedding(d=10)


class TestParameters:
    def test_dimensions(self, embedding):
        assert embedding.d_in == 10
        assert embedding.d_out == 36  # 4d - 4

    def test_gap_parameters(self, embedding):
        assert embedding.s == 4.0
        assert embedding.cs == 0.0
        assert embedding.c == 0.0

    def test_is_signed(self, embedding):
        assert embedding.signed

    def test_minimum_dimension(self):
        SignedCoordinateEmbedding(4)
        with pytest.raises(ParameterError):
            SignedCoordinateEmbedding(3)


class TestOutputDomain:
    def test_left_output_is_pm1(self, embedding, rng):
        x = rng.integers(0, 2, 10)
        assert set(np.unique(embedding.embed_left(x))) <= {-1.0, 1.0}

    def test_right_output_is_pm1(self, embedding, rng):
        y = rng.integers(0, 2, 10)
        assert set(np.unique(embedding.embed_right(y))) <= {-1.0, 1.0}

    def test_output_length(self, embedding, rng):
        assert embedding.embed_left(rng.integers(0, 2, 10)).size == 36


class TestGapGuarantee:
    def test_orthogonal_pair_reaches_s(self, embedding):
        x = np.zeros(10, dtype=int); x[:5] = 1
        y = np.zeros(10, dtype=int); y[5:] = 1
        value = embedding.embed_left(x) @ embedding.embed_right(y)
        assert value == 4.0

    def test_overlapping_pair_below_cs(self, embedding):
        x = np.ones(10, dtype=int)
        y = np.ones(10, dtype=int)
        value = embedding.embed_left(x) @ embedding.embed_right(y)
        assert value <= 0.0

    def test_closed_form_matches(self, embedding, rng):
        for _ in range(50):
            x = rng.integers(0, 2, 10)
            y = rng.integers(0, 2, 10)
            value = embedding.embed_left(x) @ embedding.embed_right(y)
            assert value == embedding.embedded_inner_product(int(x @ y))

    def test_gap_holds_random(self, embedding, rng):
        X = random_binary(40, 10, seed=rng)
        Y = random_binary(40, 10, seed=rng)
        for x, y in zip(X, Y):
            assert embedding.gap_holds(x, y)

    def test_minimal_dimension_instance(self):
        emb = SignedCoordinateEmbedding(4)
        x = np.array([1, 1, 0, 0]); y = np.array([0, 0, 1, 1])
        assert emb.embed_left(x) @ emb.embed_right(y) == 4.0
        assert emb.d_out == 12


class TestValidation:
    def test_wrong_dimension(self, embedding):
        with pytest.raises(ParameterError):
            embedding.embed_left(np.zeros(5, dtype=int))

    def test_non_binary_input(self, embedding):
        from repro.errors import DomainError
        with pytest.raises(DomainError):
            embedding.embed_left(np.full(10, 2))

    def test_batch(self, embedding):
        X = np.zeros((3, 10), dtype=int); X[:, 0] = 1
        assert embedding.embed_left_many(X).shape == (3, 36)
