import math

import numpy as np
import pytest

from repro.embeddings.chebyshev import chebyshev_t
from repro.embeddings.valiant_random import (
    RandomizedChebyshevEmbedding,
    chebyshev_coefficients,
)
from repro.errors import DomainError, ParameterError


class TestChebyshevCoefficients:
    def test_t0_t1(self):
        np.testing.assert_array_equal(chebyshev_coefficients(0), [1])
        np.testing.assert_array_equal(chebyshev_coefficients(1), [0, 1])

    def test_t2_t3(self):
        np.testing.assert_array_equal(chebyshev_coefficients(2), [-1, 0, 2])
        np.testing.assert_array_equal(chebyshev_coefficients(3), [0, -3, 0, 4])

    @pytest.mark.parametrize("q", [2, 4, 7])
    def test_coefficients_evaluate_to_tq(self, q):
        coeffs = chebyshev_coefficients(q)
        for z in (-1.2, -0.3, 0.8, 1.5):
            poly = sum(c * z ** j for j, c in enumerate(coeffs))
            assert abs(poly - chebyshev_t(q, z)) < 1e-6

    def test_negative_q(self):
        with pytest.raises(ParameterError):
            chebyshev_coefficients(-1)


class TestRandomizedEmbedding:
    def test_output_is_pm1(self, rng):
        emb = RandomizedChebyshevEmbedding(d=16, q=3, b=32.0, m=200, seed=0)
        x = rng.choice([-1, 1], size=16)
        left = emb.embed_left(x)
        right = emb.embed_right(x)
        assert set(np.unique(left)) <= {-1.0, 1.0}
        assert set(np.unique(right)) <= {-1.0, 1.0}

    def test_unbiasedness(self, rng):
        # Average of estimates over independent samplings approaches the
        # exact value.
        d, q, b = 12, 2, 24.0
        x = rng.choice([-1, 1], size=d)
        y = rng.choice([-1, 1], size=d)
        exact = RandomizedChebyshevEmbedding(d, q, b, m=1, seed=0).exact_value(
            float(x @ y)
        )
        estimates = [
            RandomizedChebyshevEmbedding(d, q, b, m=400, seed=s).estimate(x, y)
            for s in range(40)
        ]
        mean = float(np.mean(estimates))
        std_bound = RandomizedChebyshevEmbedding(d, q, b, m=400, seed=0)
        tolerance = 4 * std_bound.standard_deviation_bound / math.sqrt(40)
        assert abs(mean - exact) <= tolerance

    def test_variance_shrinks_with_m(self, rng):
        d, q, b = 10, 2, 20.0
        x = rng.choice([-1, 1], size=d)
        y = rng.choice([-1, 1], size=d)
        def spread(m):
            vals = [
                RandomizedChebyshevEmbedding(d, q, b, m=m, seed=s).estimate(x, y)
                for s in range(30)
            ]
            return float(np.std(vals))
        assert spread(1600) < spread(25)

    def test_identical_vectors_track_maximum(self, rng):
        # x = y gives u = d, the largest input; estimate should sit near
        # the exact value relative to the std bound.
        d, q, b = 10, 2, 20.0
        x = rng.choice([-1, 1], size=d)
        emb = RandomizedChebyshevEmbedding(d, q, b, m=2000, seed=1)
        exact = emb.exact_value(float(d))
        assert abs(emb.estimate(x, x) - exact) <= 4 * emb.standard_deviation_bound

    def test_exact_value_matches_scaled_chebyshev(self):
        emb = RandomizedChebyshevEmbedding(d=8, q=3, b=16.0, m=10, seed=2)
        assert abs(emb.exact_value(10.0) - 16.0 ** 3 * chebyshev_t(3, 10.0 / 16.0)) < 1e-6

    def test_requires_sign_vectors(self):
        emb = RandomizedChebyshevEmbedding(d=4, q=2, b=8.0, m=10, seed=3)
        with pytest.raises(DomainError):
            emb.embed_left(np.array([0, 1, 1, 0]))

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            RandomizedChebyshevEmbedding(d=0, q=2, b=1.0, m=10)
        with pytest.raises(ParameterError):
            RandomizedChebyshevEmbedding(d=4, q=0, b=1.0, m=10)
        with pytest.raises(ParameterError):
            RandomizedChebyshevEmbedding(d=4, q=2, b=-1.0, m=10)
        with pytest.raises(ParameterError):
            RandomizedChebyshevEmbedding(d=4, q=2, b=1.0, m=0)

    def test_wrong_dimension(self, rng):
        emb = RandomizedChebyshevEmbedding(d=4, q=2, b=8.0, m=10, seed=4)
        with pytest.raises(ParameterError):
            emb.embed_left(rng.choice([-1, 1], size=5))
