"""The unified join engine: backends, planner, dispatch, and stats.

Two contracts are enforced here.  *Equivalence*: ``repro.engine.join``
with an explicit backend is bit-identical to the legacy entry point for
every variant (signed/unsigned threshold, top-k, self), and
``backend="auto"`` returns a valid exact answer matching brute force on
small inputs (where the planner's fixed build charges always select an
exact backend).  *Stats*: :class:`QueryStats` merging is a single
field-wise monoid, and engine-level stats are identical serial vs
parallel.
"""

import numpy as np
import pytest

from repro import engine
from repro.core import (
    BatchIndexSpec,
    JoinSpec,
    QueryStats,
    SketchStructureSpec,
    brute_force_join,
    join_topk,
    lsh_join,
    lsh_join_topk,
    lsh_self_join,
    norm_pruned_join,
    self_join,
    signed_join,
    sketch_unsigned_join,
    unsigned_join,
)
from repro.datasets import planted_mips
from repro.engine import (
    CostEstimate,
    CostModel,
    available_backends,
    get_backend,
    plan_join,
    register,
)
from repro.errors import ParameterError
from repro.lsh import BatchSignIndex, DataDepALSH, LSHIndex


@pytest.fixture(scope="module")
def instance():
    return planted_mips(600, 24, 32, s=0.85, c=0.5, seed=7)


@pytest.fixture(scope="module")
def spec():
    return JoinSpec(s=0.85, c=0.5, signed=True)


class TestBackendEquivalence:
    """engine.join(backend=...) == the legacy entry point, bit for bit."""

    def test_brute_force_signed(self, instance, spec):
        legacy = brute_force_join(instance.P, instance.Q, spec)
        result = engine.join(instance.P, instance.Q, spec, backend="brute_force")
        assert result.matches == legacy.matches
        assert result.inner_products_evaluated == legacy.inner_products_evaluated
        assert result.candidates_generated == legacy.candidates_generated
        assert result.backend == "brute_force"

    def test_brute_force_unsigned(self, instance):
        uspec = JoinSpec(s=0.85, c=0.5, signed=False)
        legacy = brute_force_join(instance.P, instance.Q, uspec)
        result = engine.join(instance.P, instance.Q, uspec, backend="brute_force")
        assert result.matches == legacy.matches

    def test_norm_pruned(self, instance, spec):
        legacy = norm_pruned_join(instance.P, instance.Q, spec)
        result = engine.join(instance.P, instance.Q, spec, backend="norm_pruned")
        assert result.matches == legacy.matches
        assert result.inner_products_evaluated == legacy.inner_products_evaluated
        # Norm pruning is exact: it must reproduce brute force too.
        assert result.matches == brute_force_join(instance.P, instance.Q, spec).matches

    @pytest.mark.parametrize("signed", [True, False])
    def test_lsh_prebuilt_index(self, instance, signed):
        jspec = JoinSpec(s=0.85, c=0.5, signed=signed)
        index = BatchSignIndex.for_datadep(
            32, n_tables=10, bits_per_table=8, seed=3
        ).build(instance.P)
        legacy = lsh_join(instance.P, instance.Q, jspec, family=None, index=index)
        result = engine.join(
            instance.P, instance.Q, jspec, backend="lsh", index=index
        )
        assert result.matches == legacy.matches
        assert result.candidates_generated == legacy.candidates_generated

    def test_lsh_family_seeded(self, instance, spec):
        family = DataDepALSH(32)
        legacy = lsh_join(
            instance.P, instance.Q, spec, family,
            n_tables=10, hashes_per_table=5, seed=11,
        )
        result = engine.join(
            instance.P, instance.Q, spec, backend="lsh", family=family,
            n_tables=10, hashes_per_table=5, seed=11,
        )
        assert result.matches == legacy.matches

    def test_lsh_matches_direct_index_construction(self, instance, spec):
        """Same seed ⇒ the engine builds the same LSHIndex the legacy path did."""
        family = DataDepALSH(32)
        index = LSHIndex(
            family, n_tables=10, hashes_per_table=5, seed=11
        ).build(instance.P)
        from repro.core.lsh_join import lsh_filter_verify_chunk

        matches, _, _, _ = lsh_filter_verify_chunk(
            index, instance.P, instance.Q, spec.signed, spec.cs, 0, 1024
        )
        result = engine.join(
            instance.P, instance.Q, spec, backend="lsh", family=family,
            n_tables=10, hashes_per_table=5, seed=11,
        )
        assert result.matches == matches

    def test_sketch(self, instance):
        legacy = sketch_unsigned_join(
            instance.P, instance.Q, s=0.85, kappa=3.0, copies=5, seed=5
        )
        result = engine.join(
            instance.P, instance.Q, JoinSpec(s=0.85, signed=False),
            backend="sketch", kappa=3.0, copies=5, seed=5,
        )
        assert result.matches == legacy.matches
        assert result.spec.c == legacy.spec.c  # the structure's n^{-1/kappa}

    def test_topk_exact(self, instance):
        tspec = JoinSpec(s=0.3, c=0.9, signed=True)
        legacy = join_topk(instance.P, instance.Q, tspec, k=4)
        result = engine.join(
            instance.P, instance.Q,
            JoinSpec(s=0.3, c=0.9, signed=True, k=4),
            backend="brute_force", block=1024,
        )
        assert result.topk == legacy
        assert result.matches == [lst[0] if lst else None for lst in legacy]

    def test_topk_lsh(self, instance):
        tspec = JoinSpec(s=0.3, c=0.9, signed=True)
        index = BatchSignIndex.for_datadep(
            32, n_tables=10, bits_per_table=8, seed=3
        ).build(instance.P)
        legacy = lsh_join_topk(instance.P, instance.Q, tspec, k=4, index=index)
        result = engine.join(
            instance.P, instance.Q,
            JoinSpec(s=0.3, c=0.9, signed=True, k=4),
            backend="lsh", index=index,
        )
        assert result.topk == legacy

    @pytest.mark.parametrize("match_duplicates", [True, False])
    def test_self_exact(self, instance, spec, match_duplicates):
        legacy = self_join(instance.P, spec, match_duplicates=match_duplicates)
        result = engine.join(
            instance.P, None,
            JoinSpec(s=0.85, c=0.5, self_join=True,
                     match_duplicates=match_duplicates),
            backend="brute_force", block=512,
        )
        assert result.matches == legacy.matches
        assert result.inner_products_evaluated == legacy.inner_products_evaluated
        assert result.candidates_generated == legacy.candidates_generated

    def test_self_lsh(self, instance, spec):
        index = BatchSignIndex.for_hyperplane(
            32, n_tables=10, bits_per_table=8, seed=3
        ).build(instance.P)
        legacy = lsh_self_join(instance.P, spec, index, block=256)
        result = engine.join(
            instance.P, None, JoinSpec(s=0.85, c=0.5, self_join=True),
            backend="lsh", index=index, block=256,
        )
        assert result.matches == legacy.matches

    def test_signed_join_shim_routes_through_engine(self, instance):
        result = signed_join(instance.P, instance.Q, s=0.85)
        assert result.backend == "brute_force"
        assert result.stats is not None and result.stats.queries == 24

    def test_unsigned_join_shim_routes_through_engine(self, instance):
        result = unsigned_join(instance.P, instance.Q, s=0.85)
        assert result.backend == "brute_force"


class TestAutoDispatch:
    """backend="auto": valid results, exact on small inputs."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("signed", [True, False])
    def test_auto_matches_brute_force_on_small_inputs(self, seed, signed):
        rng = np.random.default_rng(seed)
        P = rng.standard_normal((200, 16))
        P /= np.linalg.norm(P, axis=1, keepdims=True)
        Q = rng.standard_normal((50, 16))
        Q /= np.linalg.norm(Q, axis=1, keepdims=True)
        jspec = JoinSpec(s=0.6, c=0.7, signed=signed)
        reference = brute_force_join(P, Q, jspec)
        result = engine.join(P, Q, jspec, backend="auto")
        # On instances this small the planner's fixed build charges make
        # probabilistic backends uncompetitive: the winner is exact.
        assert result.backend in ("brute_force", "norm_pruned")
        assert result.matches == reference.matches

    def test_auto_self_join_small(self):
        rng = np.random.default_rng(3)
        P = rng.standard_normal((120, 12))
        reference = self_join(P, JoinSpec(s=0.5, c=0.8))
        result = engine.join(
            P, None, JoinSpec(s=0.5, c=0.8, self_join=True), backend="auto"
        )
        assert result.matches == reference.matches

    def test_auto_result_is_valid(self, instance, spec):
        """Every reported match really clears cs (Definition 1)."""
        result = engine.join(instance.P, instance.Q, spec, backend="auto")
        for i, match in enumerate(result.matches):
            if match is not None:
                assert float(instance.P[match] @ instance.Q[i]) >= spec.cs


class TestPlanner:
    def test_small_instances_prefer_exact(self):
        plan = plan_join(100, 20, 16, JoinSpec(s=0.8, c=0.5))
        assert plan.backend in ("brute_force", "norm_pruned")

    def test_large_gap_instances_prefer_lsh(self):
        plan = plan_join(2_000_000, 2_000_000, 32, JoinSpec(s=0.9, c=0.3))
        assert plan.backend == "lsh"

    def test_sketch_feasible_only_unsigned(self):
        ranked = {
            e.backend: e
            for e in plan_join(1000, 100, 16, JoinSpec(s=0.8, c=0.5)).estimates
        }
        assert not ranked["sketch"].feasible
        ranked_u = {
            e.backend: e
            for e in plan_join(
                1000, 100, 16, JoinSpec(s=0.8, c=0.5, signed=False)
            ).estimates
        }
        assert ranked_u["sketch"].feasible

    def test_exact_demand_rules_out_probabilistic(self):
        ranked = {
            e.backend: e
            for e in plan_join(1000, 100, 16, JoinSpec(s=0.8, c=1.0)).estimates
        }
        assert not ranked["lsh"].feasible
        assert not ranked["sketch"].feasible
        assert ranked["brute_force"].feasible

    def test_topk_variant_feasibility(self):
        ranked = {
            e.backend: e
            for e in plan_join(
                1000, 100, 16, JoinSpec(s=0.8, c=0.5, k=3)
            ).estimates
        }
        assert ranked["brute_force"].feasible
        assert ranked["norm_pruned"].feasible
        assert not ranked["sketch"].feasible

    def test_estimates_sorted_feasible_then_cheapest(self):
        plan = plan_join(5000, 500, 32, JoinSpec(s=0.8, c=0.5, signed=False))
        feasible = [e for e in plan.estimates if e.feasible]
        assert feasible == sorted(feasible, key=lambda e: e.total_ops)
        assert plan.estimates[: len(feasible)] == feasible

    def test_engine_plan_entry_point(self, instance, spec):
        plan = engine.plan(instance.P, instance.Q, spec)
        assert plan.n == 600 and plan.m == 24 and plan.d == 32
        assert plan.backend == engine.join(
            instance.P, instance.Q, spec, backend="auto"
        ).backend

    def test_calibration_from_bench_dict(self):
        base = CostModel()
        calibrated = CostModel.from_bench(
            {
                "timings": {"verify_blocked_s": 0.5},
                "work": {"inner_products_verified": 1_000_000},
                "meta": {},
            }
        )
        # gemm_op renormalizes to 1; other weights stay relative.
        assert calibrated.gemm_op == 1.0
        assert calibrated.hash_op == base.hash_op
        plan = plan_join(100, 20, 16, JoinSpec(s=0.8, c=0.5), model=calibrated)
        assert plan.backend in ("brute_force", "norm_pruned")

    def test_calibration_rejects_garbage(self):
        with pytest.raises(ParameterError):
            CostModel.from_bench(42)


class TestRegistry:
    def test_builtins_registered_in_order(self):
        assert available_backends()[:4] == [
            "brute_force", "norm_pruned", "lsh", "sketch",
        ]

    def test_unknown_backend_is_loud(self, instance, spec):
        with pytest.raises(ParameterError, match="unknown backend"):
            engine.join(instance.P, instance.Q, spec, backend="quantum")

    def test_duplicate_registration_is_loud(self):
        with pytest.raises(ParameterError, match="already registered"):
            register(get_backend("brute_force"))
        # Explicit replacement is allowed (and restores the original).
        register(get_backend("brute_force"), replace=True)

    def test_unnamed_backend_rejected(self):
        class Nameless(type(get_backend("brute_force"))):
            name = ""

        with pytest.raises(ParameterError, match="non-empty name"):
            register(Nameless())


class TestOptionValidation:
    def test_unknown_options_rejected(self, instance, spec):
        with pytest.raises(ParameterError, match="no extra options"):
            engine.join(
                instance.P, instance.Q, spec,
                backend="brute_force", warp_speed=True,
            )

    def test_sketch_rejects_signed(self, instance, spec):
        with pytest.raises(ParameterError, match="unsigned-only"):
            engine.join(instance.P, instance.Q, spec, backend="sketch")

    def test_norm_pruned_rejects_self(self, instance):
        with pytest.raises(ParameterError, match="does not answer"):
            engine.join(
                instance.P, None, JoinSpec(s=0.8, c=0.5),
                backend="norm_pruned",
            )

    def test_norm_pruned_topk_matches_brute(self, instance):
        spec = JoinSpec(s=0.8, c=0.5, k=2)
        exact = engine.join(instance.P, instance.Q, spec, backend="brute_force")
        pruned = engine.join(instance.P, instance.Q, spec, backend="norm_pruned")
        assert pruned.topk == exact.topk
        assert pruned.matches == exact.matches
        assert pruned.inner_products_evaluated <= exact.inner_products_evaluated

    def test_self_spec_requires_q_none(self, instance):
        with pytest.raises(ParameterError, match="pass Q=None"):
            engine.join(
                instance.P, instance.Q,
                JoinSpec(s=0.8, c=0.5, self_join=True),
            )

    def test_parallel_family_requires_concrete_seed(self, instance, spec):
        with pytest.raises(ParameterError, match="concrete integer seed"):
            engine.join(
                instance.P, instance.Q, spec, backend="lsh",
                family=DataDepALSH(32), n_workers=2, seed=None,
            )


class TestQueryStatsMerge:
    def test_merge_is_fieldwise_sum(self):
        a = QueryStats(queries=2, candidates=10, unique_candidates=7,
                       probe_candidates=3, probed_buckets=1)
        b = QueryStats(queries=5, candidates=1, unique_candidates=1)
        merged = a.merge(b)
        assert merged == QueryStats(
            queries=7, candidates=11, unique_candidates=8,
            probe_candidates=3, probed_buckets=1,
        )
        # Monoid laws: commutative, identity.
        assert b.merge(a) == merged
        assert a.merge(QueryStats()) == a
        # Operands unchanged.
        assert a.queries == 2 and b.queries == 5

    def test_merge_all_skips_none(self):
        parts = [QueryStats(queries=1), None, QueryStats(candidates=4)]
        assert QueryStats.merge_all(parts) == QueryStats(queries=1, candidates=4)

    def test_diff_inverts_merge(self):
        a = QueryStats(queries=2, candidates=10)
        b = QueryStats(queries=5, candidates=3, probed_buckets=2)
        assert a.merge(b).diff(a) == b

    @pytest.mark.parametrize("n_workers", [2, 3])
    def test_engine_stats_identical_serial_vs_parallel(self, instance, spec, n_workers):
        index_spec = BatchIndexSpec(
            d=32, scheme="datadep", n_tables=10, bits_per_table=8, seed=3
        )
        serial = engine.join(
            instance.P, instance.Q, spec, backend="lsh",
            index_spec=index_spec, n_workers=1,
        )
        parallel = engine.join(
            instance.P, instance.Q, spec, backend="lsh",
            index_spec=index_spec, n_workers=n_workers,
        )
        assert parallel.matches == serial.matches
        assert parallel.stats == serial.stats
        assert parallel.inner_products_evaluated == serial.inner_products_evaluated
        assert parallel.candidates_generated == serial.candidates_generated

    def test_brute_force_stats_identical_serial_vs_parallel(self, instance, spec):
        serial = engine.join(
            instance.P, instance.Q, spec, backend="brute_force", n_workers=1
        )
        parallel = engine.join(
            instance.P, instance.Q, spec, backend="brute_force", n_workers=3
        )
        assert parallel.matches == serial.matches
        assert parallel.stats == serial.stats

    def test_sketch_stats_identical_serial_vs_parallel(self, instance):
        uspec = JoinSpec(s=0.85, signed=False)
        serial = engine.join(
            instance.P, instance.Q, uspec, backend="sketch",
            seed=9, n_workers=1,
        )
        parallel = engine.join(
            instance.P, instance.Q, uspec, backend="sketch",
            seed=9, n_workers=2,
        )
        assert parallel.matches == serial.matches
        assert parallel.stats == serial.stats


class TestMIPSEngineJoins:
    def test_lsh_mips_join_delegates(self, instance, spec):
        from repro.mips.lsh_engine import LSHMIPS

        mips = LSHMIPS(instance.P, n_tables=10, hashes_per_table=5, seed=11)
        result = mips.join(instance.Q, spec)
        assert result.backend == "lsh"
        direct = engine.join(
            instance.P, instance.Q, spec, backend="lsh", index=mips.index
        )
        assert result.matches == direct.matches

    def test_sketch_mips_join_delegates(self, instance):
        from repro.mips.sketch_engine import SketchMIPS

        mips = SketchMIPS(instance.P, kappa=3.0, copies=5, seed=5)
        result = mips.join(instance.Q, s=0.85)
        assert result.backend == "sketch"
        assert result.spec.c == pytest.approx(mips.approximation_factor)


class TestPlanIR:
    """Plan construction, one-stage equality, and hybrid execution."""

    def test_stage_validation(self):
        from repro.engine import Plan, Stage

        with pytest.raises(ParameterError, match="query rule"):
            Stage(backend="lsh", queries="leftover")
        with pytest.raises(ParameterError, match="point rule"):
            Stage(backend="lsh", points="low_norm")
        with pytest.raises(ParameterError, match="fraction"):
            Stage(backend="lsh", points="norm_top")
        with pytest.raises(ParameterError, match="fraction only applies"):
            Stage(backend="lsh", fraction=0.5)
        with pytest.raises(ParameterError, match="at least one stage"):
            Plan(stages=())

    def test_norm_partition_is_deterministic_and_sorted(self):
        from repro.engine.plan import norm_partition, norm_split_size

        rng = np.random.default_rng(3)
        P = rng.normal(size=(50, 8))
        top, tail = norm_partition(P, 0.2)
        assert top.size == norm_split_size(50, 0.2) == 10
        assert np.all(np.diff(top) > 0) and np.all(np.diff(tail) > 0)
        norms = np.linalg.norm(P, axis=1)
        assert norms[top].min() >= norms[tail].max()
        top2, tail2 = norm_partition(P, 0.2)
        assert np.array_equal(top, top2) and np.array_equal(tail, tail2)

    def test_one_stage_plan_bit_equality(self, instance, spec):
        from repro.engine import Plan

        by_name = engine.join(instance.P, instance.Q, spec, backend="norm_pruned")
        by_plan = engine.join(
            instance.P, instance.Q, spec, backend=Plan.single("norm_pruned")
        )
        assert by_plan.matches == by_name.matches
        assert by_plan.backend == by_name.backend == "norm_pruned"
        assert (
            by_plan.inner_products_evaluated == by_name.inner_products_evaluated
        )
        assert by_plan.stats == by_name.stats
        assert by_plan.spec == by_name.spec

    def test_norm_prefix_lsh_hybrid_properties(self, instance, spec):
        from repro.engine import norm_prefix_lsh_plan
        from repro.engine.plan import norm_partition

        plan = norm_prefix_lsh_plan(prefix_fraction=0.25)
        result = engine.join(instance.P, instance.Q, spec, backend=plan, seed=9)
        assert result.backend == "norm_pruned+lsh"
        assert result.spec == spec
        cs = spec.cs
        for qi, mi in enumerate(result.matches):
            if mi is not None:
                assert float(instance.P[mi] @ instance.Q[qi]) >= cs - 1e-9
        # Stage 1 is exact over the high-norm prefix: any query answerable
        # from the prefix must be answered.
        top, _ = norm_partition(instance.P, 0.25)
        prefix_best = (instance.Q @ instance.P[top].T).max(axis=1)
        for qi in np.flatnonzero(prefix_best >= cs):
            assert result.matches[qi] is not None

    def test_norm_prefix_lsh_hybrid_parallel_stitching(self, instance, spec):
        from repro.engine import norm_prefix_lsh_plan

        plan = norm_prefix_lsh_plan(prefix_fraction=0.25)
        serial = engine.join(
            instance.P, instance.Q, spec, backend=plan, seed=9, block=32
        )
        for workers in (2, 3):
            parallel = engine.join(
                instance.P, instance.Q, spec, backend=plan, seed=9,
                block=32, n_workers=workers,
            )
            assert parallel.matches == serial.matches
            assert (
                parallel.inner_products_evaluated
                == serial.inner_products_evaluated
            )
            assert parallel.stats == serial.stats

    def test_sketch_fallback_hybrid_matches_brute_matched_set(self, instance):
        from repro.engine import sketch_fallback_plan

        spec = JoinSpec(s=0.85, c=0.5, signed=False)
        plan = sketch_fallback_plan(sketch_options={"kappa": 3.0})
        hybrid = engine.join(instance.P, instance.Q, spec, backend=plan, seed=3)
        exact = engine.join(instance.P, instance.Q, spec, backend="brute_force")
        assert hybrid.backend == "sketch+brute_force"
        mine = {i for i, v in enumerate(hybrid.matches) if v is not None}
        ref = {i for i, v in enumerate(exact.matches) if v is not None}
        # The exact fallback re-answers every query the (re-verified)
        # sketch stage missed, so the matched-query sets coincide.
        assert mine == ref
        for qi, mi in enumerate(hybrid.matches):
            if mi is not None:
                assert abs(float(instance.P[mi] @ instance.Q[qi])) >= spec.cs - 1e-9

    def test_sketch_fallback_hybrid_parallel_stitching(self, instance):
        from repro.engine import sketch_fallback_plan

        spec = JoinSpec(s=0.85, c=0.5, signed=False)
        plan = sketch_fallback_plan(sketch_options={"kappa": 3.0})
        serial = engine.join(
            instance.P, instance.Q, spec, backend=plan, seed=3, block=32
        )
        for workers in (2, 3):
            parallel = engine.join(
                instance.P, instance.Q, spec, backend=plan, seed=3,
                block=32, n_workers=workers,
            )
            assert parallel.matches == serial.matches
            assert (
                parallel.inner_products_evaluated
                == serial.inner_products_evaluated
            )

    def test_topk_hybrid_entries_clear_threshold(self, instance):
        from repro.engine import norm_prefix_lsh_plan

        spec = JoinSpec(s=0.85, c=0.5, k=2)
        plan = norm_prefix_lsh_plan(prefix_fraction=0.25)
        result = engine.join(instance.P, instance.Q, spec, backend=plan, seed=9)
        assert result.backend == "norm_pruned+lsh"
        for qi, lst in enumerate(result.topk):
            for mi in lst:
                assert float(instance.P[mi] @ instance.Q[qi]) >= spec.cs - 1e-9
            assert result.matches[qi] == (lst[0] if lst else None)

    def test_multi_stage_rejects_self_variant(self, instance):
        from repro.engine import sketch_fallback_plan

        with pytest.raises(ParameterError, match="multi-stage plans answer"):
            engine.join(
                instance.P, None, JoinSpec(s=0.85, c=0.5, signed=False),
                backend=sketch_fallback_plan(),
            )

    def test_plan_rejects_engine_level_options(self, instance, spec):
        from repro.engine import norm_prefix_lsh_plan

        with pytest.raises(ParameterError, match="per-stage options"):
            engine.join(
                instance.P, instance.Q, spec,
                backend=norm_prefix_lsh_plan(), scan_block=64,
            )


class TestAutoHybrids:
    """backend="auto" can pick — and correctly execute — hybrid plans."""

    def test_auto_picks_and_runs_norm_lsh_hybrid(self):
        model = CostModel(
            hybrid_prefix_fraction=0.1, hybrid_tail_query_fraction=0.1
        )
        spec = JoinSpec(s=0.9, c=0.7)
        ranked = plan_join(4000, 1000, 32, spec, model=model)
        assert ranked.backend == "norm_pruned+lsh"
        assert ranked.best_plan.plan.is_multi_stage
        rng = np.random.default_rng(1)
        P, Q = rng.normal(size=(4000, 32)), rng.normal(size=(1000, 32))
        result = engine.join(P, Q, spec, backend="auto", model=model, seed=5)
        assert result.backend == "norm_pruned+lsh"
        for qi, mi in enumerate(result.matches):
            if mi is not None:
                assert float(P[mi] @ Q[qi]) >= spec.cs - 1e-9

    def test_auto_picks_and_runs_sketch_fallback_hybrid(self):
        model = CostModel(
            max_kappa=2.5, sketch_fixed_build=0.0, lsh_fixed_build=1e9,
            norm_prefix_fraction=0.9, sketch_fallback_query_fraction=0.3,
        )
        spec = JoinSpec(s=0.8, c=0.5, signed=False)
        ranked = plan_join(2000, 400, 16, spec, model=model)
        assert ranked.backend == "sketch+brute_force"
        rng = np.random.default_rng(2)
        P, Q = rng.normal(size=(2000, 16)), rng.normal(size=(400, 16))
        result = engine.join(P, Q, spec, backend="auto", model=model, seed=5)
        assert result.backend == "sketch+brute_force"
        exact = engine.join(P, Q, spec, backend="brute_force")
        mine = {i for i, v in enumerate(result.matches) if v is not None}
        ref = {i for i, v in enumerate(exact.matches) if v is not None}
        assert mine == ref

    def test_auto_with_options_stays_single_stage(self):
        model = CostModel(
            hybrid_prefix_fraction=0.1, hybrid_tail_query_fraction=0.1
        )
        spec = JoinSpec(s=0.9, c=0.7)
        rng = np.random.default_rng(1)
        P, Q = rng.normal(size=(4000, 32)), rng.normal(size=(1000, 32))
        ranked = plan_join(4000, 1000, 32, spec, model=model,
                           include_hybrids=False)
        assert all(not pe.plan.is_multi_stage for pe in ranked.plans)
        result = engine.join(
            P, Q, spec, backend="auto", model=model, seed=5, n_tables=8
        )
        # Engine-level options bind to one backend's prepare, so hybrids
        # are excluded from the ranking and a plain single backend runs.
        assert "+" not in result.backend

    def test_hybrid_auto_parallel_identical(self):
        model = CostModel(
            hybrid_prefix_fraction=0.1, hybrid_tail_query_fraction=0.1
        )
        spec = JoinSpec(s=0.9, c=0.7)
        rng = np.random.default_rng(1)
        P, Q = rng.normal(size=(2000, 24)), rng.normal(size=(500, 24))
        serial = engine.join(P, Q, spec, backend="auto", model=model, seed=5)
        parallel = engine.join(
            P, Q, spec, backend="auto", model=model, seed=5, n_workers=2
        )
        assert serial.backend == parallel.backend
        assert serial.matches == parallel.matches

    def test_no_feasible_plan_error_lists_every_reason(self):
        from repro.engine.planner import JoinPlan

        ranked = JoinPlan(
            n=10, m=10, d=4, spec=JoinSpec(s=0.8, c=0.5, signed=False),
            estimates=[
                CostEstimate(backend="lsh", feasible=False, reason="no gap"),
                CostEstimate(
                    backend="sketch", feasible=False, reason="unsigned only"
                ),
            ],
        )
        with pytest.raises(ParameterError) as err:
            ranked.best_plan
        message = str(err.value)
        assert "lsh: no gap" in message
        assert "sketch: unsigned only" in message
        assert "n=10" in message


class TestSketchSelfJoin:
    """The sketch backend's self variant: identity masked in the descent."""

    def test_self_never_matches_identity(self, instance):
        spec = JoinSpec(s=0.85, c=0.4, signed=False)
        result = engine.join(instance.P, None, spec, backend="sketch", seed=3)
        assert result.backend == "sketch"
        for qi, mi in enumerate(result.matches):
            assert mi != qi
            if mi is not None:
                assert abs(float(instance.P[mi] @ instance.P[qi])) >= \
                    result.spec.cs - 1e-9

    def test_self_parallel_identical(self, instance):
        spec = JoinSpec(s=0.85, c=0.4, signed=False)
        serial = engine.join(
            instance.P, None, spec, backend="sketch", seed=3, block=64
        )
        parallel = engine.join(
            instance.P, None, spec, backend="sketch", seed=3, block=64,
            n_workers=2,
        )
        assert serial.matches == parallel.matches

    def test_self_rejects_duplicate_exclusion(self, instance):
        spec = JoinSpec(
            s=0.85, c=0.4, signed=False, self_join=True, match_duplicates=False
        )
        with pytest.raises(ParameterError, match="match_duplicates"):
            engine.join(instance.P, None, spec, backend="sketch", seed=3)

    def test_exclude_none_descent_unchanged(self, instance):
        from repro.sketches.recovery import PrefixRecoveryIndex

        index = PrefixRecoveryIndex(instance.P, kappa=3.0, seed=11)
        plain = index.query_batch(instance.Q)
        with_kw = index.query_batch(instance.Q, exclude=None)
        assert np.array_equal(plain[0], with_kw[0])
        assert np.array_equal(plain[1], with_kw[1])

    def test_exclude_masks_identity_in_descent(self, instance):
        from repro.sketches.recovery import PrefixRecoveryIndex

        index = PrefixRecoveryIndex(instance.P, kappa=3.0, seed=11)
        n = instance.P.shape[0]
        exclude = np.arange(n, dtype=np.int64)
        indices, values = index.query_batch(instance.P, exclude=exclude)
        assert np.all(indices != exclude)
        # returned values are the exact |ip| of the returned index
        valid = indices >= 0
        picked = np.einsum(
            "ij,ij->i", instance.P[indices[valid]], instance.P[valid]
        )
        assert np.allclose(np.abs(picked), values[valid])
