"""The measure layer end to end: ``measure="jaccard"`` through the engine.

Covers the tentpole contract of the pluggable-measure refactor:

* ``set_scan`` answers the threshold / top-k / self variants exactly
  (checked against a naive all-pairs Jaccard reference);
* ``minhash_lsh`` is filter-then-verify — sound by construction, and its
  recall on the planted workload clears the CI floor;
* serial == parallel bit-identical, sessions / streams / save-reload /
  sharding compose with the new measure unchanged;
* the capability matrix and the deprecated ``backends_for_variant``
  shim report consistent cells;
* the ``ip`` measure is regression-gated: the default spec still means
  inner product and validation errors are unchanged.
"""

import warnings

import numpy as np
import pytest

from repro import engine
from repro.core.problems import JoinSpec
from repro.datasets import (
    SetCollection,
    jaccard_pair,
    planted_jaccard_sets,
    planted_mips,
)
from repro.engine import (
    available_measures,
    backends_for,
    backends_for_variant,
    capability_matrix,
    get_measure,
    plan_join,
    sharded_join,
)
from repro.errors import ParameterError, ReproError

N, M, UNIVERSE, MEAN_SIZE = 120, 40, 160, 12
THRESHOLD = 0.6


@pytest.fixture(scope="module")
def workload():
    P, Q = planted_jaccard_sets(
        N, M, universe=UNIVERSE, mean_size=MEAN_SIZE,
        threshold=THRESHOLD, seed=11,
    )
    return P, Q


def naive_best(P, Q, cs):
    """Per query: lowest-index Jaccard maximizer, None below ``cs``."""
    out = []
    for j in range(len(Q)):
        scores = np.array(
            [jaccard_pair(P.row(i), Q.row(j)) for i in range(len(P))]
        )
        best = int(np.argmax(scores))
        out.append(best if scores[best] >= cs else None)
    return out


def naive_topk(P, Q, cs, k):
    """Per query: indices >= cs ranked by score desc, ties to lower index."""
    out = []
    for j in range(len(Q)):
        scores = np.array(
            [jaccard_pair(P.row(i), Q.row(j)) for i in range(len(P))]
        )
        keep = np.flatnonzero(scores >= cs)
        order = keep[np.argsort(-scores[keep], kind="stable")][:k]
        out.append(order.tolist())
    return out


class TestSetScanCorrectness:
    def test_threshold_join_matches_naive(self, workload):
        P, Q = workload
        spec = JoinSpec(s=0.5, measure="jaccard")
        result = engine.join(P, Q, spec, backend="set_scan")
        assert result.matches == naive_best(P, Q, spec.cs)
        assert result.matched_count > 0

    def test_approximate_threshold_uses_cs(self, workload):
        P, Q = workload
        spec = JoinSpec(s=0.6, c=0.5, measure="jaccard")
        result = engine.join(P, Q, spec, backend="set_scan")
        assert result.matches == naive_best(P, Q, spec.cs)

    def test_topk_matches_naive(self, workload):
        P, Q = workload
        spec = JoinSpec(s=0.3, k=3, measure="jaccard")
        result = engine.join(P, Q, spec, backend="set_scan")
        assert result.topk == naive_topk(P, Q, spec.cs, 3)

    def test_self_join_excludes_identity(self, workload):
        P, _ = workload
        spec = JoinSpec(s=0.2, self_join=True, measure="jaccard")
        result = engine.join(P, None, spec, backend="set_scan")
        assert len(result.matches) == len(P)
        for i, match in enumerate(result.matches):
            if match is not None:
                assert match != i
                assert jaccard_pair(P.row(i), P.row(match)) >= spec.cs

    def test_self_join_match_duplicates_off_masks_twins(self):
        rows = [[0, 1, 2], [0, 1, 2], [4, 5], [7]]
        P = SetCollection.from_lists(rows, universe=8)
        spec = JoinSpec(s=0.9, self_join=True, match_duplicates=False,
                        measure="jaccard")
        result = engine.join(P, None, spec, backend="set_scan")
        # Rows 0 and 1 are twins (Jaccard exactly 1): masked.
        assert result.matches[0] is None
        assert result.matches[1] is None

    def test_auto_picks_a_jaccard_backend(self, workload):
        P, Q = workload
        spec = JoinSpec(s=0.5, measure="jaccard")
        result = engine.join(P, Q, spec, backend="auto")
        assert result.backend in ("set_scan", "minhash_lsh")
        exact = engine.join(P, Q, spec, backend="set_scan")
        if result.backend == "set_scan":
            assert result.matches == exact.matches


class TestMinHashLSH:
    def test_matches_are_sound_and_recall_clears_floor(self, workload):
        P, Q = workload
        spec = JoinSpec(s=THRESHOLD, measure="jaccard")
        exact = engine.join(P, Q, spec, backend="set_scan")
        approx = engine.join(P, Q, spec, backend="minhash_lsh", seed=0)
        for j, match in enumerate(approx.matches):
            if match is not None:
                assert jaccard_pair(P.row(match), Q.row(j)) >= spec.cs
        answered = sum(m is not None for m in exact.matches)
        hit = sum(
            a is not None and e is not None
            for a, e in zip(approx.matches, exact.matches)
        )
        assert answered > 0
        assert hit / answered >= 0.95

    def test_topk_lists_verified_exactly(self, workload):
        P, Q = workload
        spec = JoinSpec(s=0.5, k=2, measure="jaccard")
        result = engine.join(P, Q, spec, backend="minhash_lsh", seed=0)
        for j, lst in enumerate(result.topk):
            for i in lst:
                assert jaccard_pair(P.row(i), Q.row(j)) >= spec.cs

    def test_option_validation(self, workload):
        P, Q = workload
        spec = JoinSpec(s=0.5, measure="jaccard")
        with pytest.raises(ParameterError, match="minhash_lsh options"):
            engine.join(P, Q, spec, backend="minhash_lsh", bogus=1)

    def test_seeded_runs_identical(self, workload):
        P, Q = workload
        spec = JoinSpec(s=0.5, measure="jaccard")
        a = engine.join(P, Q, spec, backend="minhash_lsh", seed=7)
        b = engine.join(P, Q, spec, backend="minhash_lsh", seed=7)
        assert a.matches == b.matches
        assert a.inner_products_evaluated == b.inner_products_evaluated


class TestParallelAndComposition:
    @pytest.mark.parametrize("backend", ["set_scan", "minhash_lsh"])
    def test_serial_equals_parallel(self, workload, backend):
        P, Q = workload
        spec = JoinSpec(s=0.5, measure="jaccard")
        serial = engine.join(P, Q, spec, backend=backend, seed=0)
        for pool in ("process", "thread"):
            par = engine.join(P, Q, spec, backend=backend, seed=0,
                              n_workers=2, pool=pool, block=16)
            assert par.matches == serial.matches
            assert (par.inner_products_evaluated
                    == serial.inner_products_evaluated)
            assert par.candidates_generated == serial.candidates_generated

    def test_session_query_equals_one_shot(self, workload):
        P, Q = workload
        spec = JoinSpec(s=0.5, measure="jaccard")
        one_shot = engine.join(P, Q, spec, backend="set_scan")
        with engine.open(P, spec, backend="set_scan") as session:
            assert session.query(Q).matches == one_shot.matches
            assert session.query(Q).matches == one_shot.matches

    def test_query_stream_bit_identical(self, workload):
        P, Q = workload
        spec = JoinSpec(s=0.5, measure="jaccard")
        with engine.open(P, spec, backend="set_scan", block=16) as session:
            whole = session.query(Q)
            streamed = session.query_stream(Q, chunk_rows=16)
        assert streamed.matches == whole.matches
        assert (streamed.inner_products_evaluated
                == whole.inner_products_evaluated)

    def test_save_and_reload(self, workload, tmp_path):
        P, Q = workload
        spec = JoinSpec(s=0.5, measure="jaccard")
        with engine.open(P, spec, backend="set_scan") as session:
            baseline = session.query(Q)
            session.save(tmp_path / "jaccard_index")
        with engine.open_path(tmp_path / "jaccard_index") as reloaded:
            assert reloaded.query(Q).matches == baseline.matches

    def test_sharded_join_equals_serial(self, workload):
        P, Q = workload
        spec = JoinSpec(s=0.5, measure="jaccard")
        serial = engine.join(P, Q, spec, backend="set_scan")
        sharded = sharded_join(P, Q, spec, n_shards=3, backend="set_scan")
        assert sharded.matches == serial.matches


class TestCapabilityMatrixAndShim:
    def test_matrix_has_both_measure_rows(self):
        matrix = capability_matrix()
        for variant in ("join", "topk", "self"):
            assert "brute_force" in matrix[("ip", variant)]
            assert matrix[("jaccard", variant)] == [
                "set_scan", "minhash_lsh"
            ]

    def test_backends_for_filters_by_measure(self):
        assert "set_scan" not in backends_for("ip", "join")
        assert "brute_force" not in backends_for("jaccard", "join")

    def test_deprecated_shim_warns_and_aliases_ip(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(DeprecationWarning):
                backends_for_variant("join")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for variant in ("join", "topk", "self"):
                assert backends_for_variant(variant) == \
                    backends_for("ip", variant)

    def test_measure_registry(self):
        assert available_measures()[:2] == ["ip", "jaccard"]
        assert get_measure("jaccard").supports_hybrids is False
        with pytest.raises(ParameterError, match="unknown measure"):
            get_measure("cosine")

    def test_planner_prices_foreign_measures_infeasible(self):
        plan = plan_join(1000, 100, 64, JoinSpec(s=0.5, measure="jaccard"))
        by_name = {e.backend: e for e in plan.estimates}
        assert by_name["set_scan"].feasible
        assert not by_name["brute_force"].feasible
        assert "measure" in by_name["brute_force"].reason
        ip_plan = plan_join(1000, 100, 64, JoinSpec(s=0.75, c=0.8))
        ip_names = {e.backend for e in ip_plan.estimates if e.feasible}
        assert "set_scan" not in ip_names and "minhash_lsh" not in ip_names

    def test_explicit_foreign_backend_rejected_cleanly(self, workload):
        P, Q = workload
        spec = JoinSpec(s=0.5, measure="jaccard")
        with pytest.raises(ParameterError, match="does not answer measure"):
            engine.join(P, Q, spec, backend="brute_force")
        dense = planted_mips(50, 10, 16, s=0.8, c=0.5, seed=0)
        with pytest.raises(ParameterError, match="does not answer measure"):
            engine.join(dense.P, dense.Q, JoinSpec(s=0.8, c=0.5),
                        backend="set_scan")


class TestValidationAndIpRegression:
    def test_mismatched_universes_rejected(self):
        P = SetCollection.from_lists([[0, 1]], universe=4)
        Q = SetCollection.from_lists([[0, 1]], universe=5)
        spec = JoinSpec(s=0.5, measure="jaccard")
        with pytest.raises(ParameterError, match="share a universe"):
            engine.join(P, Q, spec, backend="set_scan")

    def test_dense_non_binary_rejected_for_jaccard(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(10, 8))
        spec = JoinSpec(s=0.5, measure="jaccard")
        with pytest.raises(ReproError):
            engine.join(X, X[:4], spec, backend="set_scan")

    def test_jaccard_spec_validation(self):
        with pytest.raises(ParameterError, match="in \\(0, 1\\]"):
            JoinSpec(s=1.5, measure="jaccard")
        with pytest.raises(ParameterError, match="signed"):
            JoinSpec(s=0.5, signed=False, measure="jaccard")

    def test_default_measure_is_ip_and_results_unchanged(self):
        inst = planted_mips(200, 16, 24, s=0.85, c=0.4, seed=5)
        spec = JoinSpec(s=inst.s, c=0.4)
        assert spec.measure == "ip"
        result = engine.join(inst.P, inst.Q, spec, backend="brute_force")
        # The pre-refactor reference: naive numpy argmax over P @ Q.T.
        scores = inst.P @ inst.Q.T
        expected = []
        for j in range(inst.Q.shape[0]):
            best = int(np.argmax(scores[:, j]))
            expected.append(best if scores[best, j] >= spec.cs else None)
        assert result.matches == expected
        auto = engine.join(inst.P, inst.Q, spec, backend="auto", seed=1)
        assert len(auto.matches) == inst.Q.shape[0]

    def test_ip_error_messages_unchanged(self):
        spec = JoinSpec(s=0.5)
        a = np.zeros((4, 3))
        with pytest.raises(ParameterError, match="share a dimension"):
            engine.join(a, np.zeros((2, 5)), spec)
        with pytest.raises(ReproError):
            engine.join(a, SetCollection.from_lists([[0]], universe=3), spec)
