import numpy as np
import pytest

from repro.core import JoinSpec, brute_force_join, norm_pruned_join
from repro.datasets import planted_mips
from repro.errors import ParameterError
from repro.evaluation import EvaluationRecord, evaluate_joins, evaluation_table


@pytest.fixture(scope="module")
def instance():
    return planted_mips(200, 12, 24, s=0.85, c=0.4, seed=0)


class TestEvaluateJoins:
    def test_exact_algorithms_score_perfectly(self, instance):
        spec = JoinSpec(s=instance.s, c=0.4)
        records = evaluate_joins(
            instance.P, instance.Q, spec,
            {
                "brute force": brute_force_join,
                "norm pruned": norm_pruned_join,
            },
        )
        for record in records:
            assert record.recall == 1.0
            assert record.sound
            assert record.wall_seconds >= 0

    def test_false_matches_flagged(self, instance):
        spec = JoinSpec(s=instance.s, c=0.4)

        def broken(P, Q, spec_):
            # Claims index 0 for every query regardless of the values.
            from repro.core.problems import JoinResult
            return JoinResult(matches=[0] * Q.shape[0], spec=spec_)

        records = evaluate_joins(instance.P, instance.Q, spec, {"broken": broken})
        assert not records[0].sound
        assert records[0].false_matches > 0

    def test_wrong_answer_count_rejected(self, instance):
        spec = JoinSpec(s=instance.s)

        def truncated(P, Q, spec_):
            from repro.core.problems import JoinResult
            return JoinResult(matches=[None], spec=spec_)

        with pytest.raises(ParameterError, match="answered"):
            evaluate_joins(instance.P, instance.Q, spec, {"bad": truncated})

    def test_empty_algorithms_rejected(self, instance):
        with pytest.raises(ParameterError):
            evaluate_joins(instance.P, instance.Q, JoinSpec(s=1.0), {})

    def test_explicit_reference_used(self, instance):
        spec = JoinSpec(s=instance.s, c=0.4)
        reference = brute_force_join(instance.P, instance.Q, spec)
        records = evaluate_joins(
            instance.P, instance.Q, spec,
            {"exact": brute_force_join},
            reference=reference,
        )
        assert records[0].recall == 1.0

    def test_table_rendering(self, instance):
        spec = JoinSpec(s=instance.s, c=0.4)
        records = evaluate_joins(
            instance.P, instance.Q, spec, {"exact": brute_force_join}
        )
        text = evaluation_table(records)
        assert "exact" in text and "recall" in text


class TestNaNRejection:
    def test_join_rejects_nan_data(self, instance):
        P = instance.P.copy()
        P[0, 0] = np.nan
        with pytest.raises(Exception, match="NaN|finite"):
            brute_force_join(P, instance.Q, JoinSpec(s=1.0))

    def test_join_rejects_inf_query(self, instance):
        Q = instance.Q.copy()
        Q[0, 0] = np.inf
        with pytest.raises(Exception, match="NaN|finite"):
            brute_force_join(instance.P, Q, JoinSpec(s=1.0))

    def test_vector_check_rejects_nan(self):
        from repro.errors import ValidationError
        from repro.utils.validation import check_vector
        with pytest.raises(ValidationError, match="NaN"):
            check_vector([1.0, np.nan])

    def test_integer_matrices_unaffected(self):
        from repro.utils.validation import check_matrix
        out = check_matrix(np.ones((2, 2), dtype=np.int64), dtype=np.int64)
        assert out.dtype == np.int64


class TestConeTreeTopK:
    def test_matches_exact_topk(self, rng):
        from repro.mips import ConeTreeMIPS, ExactMIPS
        P = rng.normal(size=(150, 8))
        tree = ConeTreeMIPS(P, leaf_size=8, seed=0)
        exact = ExactMIPS(P)
        q = rng.normal(size=8)
        mine = tree.top_k(q, 5)
        theirs = exact.top_k(q, 5)
        assert [a.index for a in mine] == [a.index for a in theirs]
        for a, b in zip(mine, theirs):
            assert abs(a.value - b.value) < 1e-12

    def test_sorted_descending(self, rng):
        from repro.mips import ConeTreeMIPS
        P = rng.normal(size=(60, 5))
        answers = ConeTreeMIPS(P, seed=1).top_k(rng.normal(size=5), 7)
        values = [a.value for a in answers]
        assert values == sorted(values, reverse=True)

    def test_k_larger_than_n(self, rng):
        from repro.mips import ConeTreeMIPS
        P = rng.normal(size=(6, 4))
        assert len(ConeTreeMIPS(P, seed=2).top_k(rng.normal(size=4), 50)) == 6

    def test_prunes_versus_scan(self, rng):
        from repro.datasets import latent_factor_model
        from repro.mips import ConeTreeMIPS
        model = latent_factor_model(4, 600, rank=8, popularity_skew=1.0, seed=3)
        tree = ConeTreeMIPS(model.items, leaf_size=16, seed=4)
        answers = tree.top_k(model.users[0], 3)
        assert answers[0].work < model.n_items

    def test_bad_k(self, rng):
        from repro.errors import ParameterError
        from repro.mips import ConeTreeMIPS
        tree = ConeTreeMIPS(rng.normal(size=(5, 3)), seed=5)
        with pytest.raises(ParameterError):
            tree.top_k(np.ones(3), 0)
