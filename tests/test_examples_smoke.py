"""Smoke tests: every example script runs to completion.

Examples are executable documentation; a refactor that breaks one should
fail the suite.  Each runs in-process via runpy with stdout captured.
The slower scripts (recommender, lsh_limitations) exercise real index
builds and take a few seconds each.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "index_planning.py",
    "ovp_reduction_demo.py",
    "correlation_mining.py",
    "set_similarity.py",
]
SLOW_EXAMPLES = [
    "recommender.py",
    "lsh_limitations.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_fast_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


@pytest.mark.parametrize("script", SLOW_EXAMPLES)
def test_slow_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)
