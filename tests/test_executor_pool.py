"""Zero-copy executor tests: arena, worker pools, sharding, BLAS control.

The load-bearing guarantees under test:

* the shared-memory arena never leaks ``/dev/shm`` segments — not after
  a clean ``close()``, not after a worker crash;
* chunk results come back in query order no matter the completion order;
* ``n_workers=k`` is bit-identical to serial for every backend, pool
  kind, and multi-stage Plan (matches, counters, stats, metrics);
* ``n_workers="auto"`` and the planner's parallel re-pricing behave
  deterministically under pinned knobs.

The CI parallel leg sets ``REPRO_TEST_WORKERS`` to run the equivalence
matrix at a different worker count; the default is 2.
"""

import os
import time

import numpy as np
import pytest

from repro.core import (
    JoinSpec,
    WorkerPool,
    close_pools,
    get_pool,
    map_query_chunks,
    parallel_lsh_join,
    resolve_workers,
)
from repro.core.arena import (
    ARENA_MIN_BYTES,
    SharedArena,
    clone_shell,
    freeze,
    repro_segments,
    thaw,
)
from repro.core.executor import BatchIndexSpec, _chunk_bounds
from repro.engine import (
    CostModel,
    join,
    norm_prefix_lsh_plan,
    plan_join,
    shard_bounds,
    sharded_join,
)
from repro.errors import ParameterError
from repro.utils import blasctl

#: Worker count of the equivalence matrix; the CI parallel leg overrides.
TEST_WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="POSIX shared memory mount required",
)


def _result_key(result):
    """Everything that must be bit-identical across execution modes."""
    s = result.stats
    return (
        result.matches,
        result.topk,
        result.inner_products_evaluated,
        result.candidates_generated,
        s.queries,
        s.candidates,
        s.unique_candidates,
        s.probed_buckets,
        s.probe_candidates,
    )


# -- module-level chunk runners (pickled by reference into workers) -----


def _sum_runner(structure, P, Q_chunk, start, args):
    """Deterministic payload echo: (start, chunk row-sum)."""
    return (start, float(Q_chunk.sum()))


def _slow_first_runner(structure, P, Q_chunk, start, args):
    """Make chunk 0 finish LAST: later chunks complete out of order."""
    if start == 0:
        time.sleep(0.25)
    return (start, float(Q_chunk.sum()))


def _crash_runner(structure, P, Q_chunk, start, args):
    os._exit(17)


class TestSharedArena:
    def test_place_resolve_roundtrip(self):
        arr = np.arange(4096, dtype=np.float64).reshape(64, 64)
        with SharedArena() as arena:
            ref = arena.place(arr)
            view = ref.resolve()
            np.testing.assert_array_equal(view, arr)
            assert not view.flags.writeable
            assert view.dtype == arr.dtype and view.shape == arr.shape

    def test_dedup_by_identity(self):
        arr = np.ones((128, 16))
        with SharedArena() as arena:
            ref1 = arena.place(arr)
            ref2 = arena.place(arr)
            assert ref1 is ref2
            # A distinct equal array is a distinct placement.
            ref3 = arena.place(arr.copy())
            assert ref3 != ref1

    def test_many_small_arrays_share_one_slab(self):
        with SharedArena() as arena:
            refs = [arena.place(np.full((100, 8), i)) for i in range(10)]
            assert len(arena.segments()) == 1
            assert len({r.segment for r in refs}) == 1
            for i, ref in enumerate(refs):
                assert float(ref.resolve()[0, 0]) == float(i)

    def test_oversized_array_grows_slab(self):
        big = np.zeros(3 * 1024 * 1024, dtype=np.float64)  # 24 MB > slab
        with SharedArena() as arena:
            ref = arena.place(big)
            assert arena.nbytes >= big.nbytes
            assert ref.resolve().shape == big.shape

    def test_close_unlinks_segments(self):
        arena = SharedArena()
        arena.place(np.zeros((256, 64)))
        names = arena.segments()
        assert names and all(n in repro_segments() for n in names)
        arena.close()
        live = repro_segments()
        assert all(n not in live for n in names)
        arena.close()  # idempotent
        with pytest.raises(ParameterError, match="closed"):
            arena.place(np.zeros(1024))

    def test_non_contiguous_and_bad_inputs(self):
        with SharedArena() as arena:
            strided = np.arange(8192, dtype=np.float64).reshape(64, 128)[:, ::2]
            np.testing.assert_array_equal(arena.place(strided).resolve(), strided)
            with pytest.raises(ParameterError, match="ndarray"):
                arena.place([1, 2, 3])
            with pytest.raises(ParameterError, match="object array"):
                arena.place(np.array([object()]))


class TestFreezeThaw:
    def test_shell_bytes_stay_small(self):
        """The frozen payload must not scale with the array sizes."""
        big = np.random.default_rng(0).normal(size=(512, 64))
        with SharedArena() as arena:
            blob = freeze({"P": big, "tag": "x"}, arena)
            assert len(blob) < ARENA_MIN_BYTES
            out = thaw(blob)
            np.testing.assert_array_equal(out["P"], big)
            assert out["tag"] == "x"

    def test_small_arrays_pickle_inline(self):
        small = np.arange(8, dtype=np.float64)  # 64 bytes < threshold
        with SharedArena() as arena:
            blob = freeze(small, arena)
            assert arena.segments() == []  # nothing placed
            np.testing.assert_array_equal(thaw(blob), small)

    def test_lookup_arena_reuses_placement(self):
        """Arrays pre-placed in a persistent arena are referenced, not
        re-copied into the per-call scratch (the ``share()`` path)."""
        arr = np.zeros((256, 64))
        with SharedArena() as persistent, SharedArena() as scratch:
            ref = persistent.place(arr)
            blob = freeze(arr, scratch, lookup=(persistent,))
            assert scratch.segments() == []  # no scratch copy
            out = thaw(blob)
            np.testing.assert_array_equal(out, arr)
            assert ref.segment in repro_segments()

    def test_frozen_index_runs_identically(self):
        """A thawed BatchSignIndex answers exactly like the original."""
        rng = np.random.default_rng(3)
        P = rng.normal(size=(400, 16))
        Q = rng.normal(size=(20, 16))
        index = BatchIndexSpec(d=16, scheme="hyperplane", seed=7).build(P)
        with SharedArena() as arena:
            other = thaw(freeze(index, arena))
            for a, b in zip(
                index.candidates_batch(Q), other.candidates_batch(Q)
            ):
                np.testing.assert_array_equal(a, b)


class TestCloneShell:
    def test_arrays_shared_small_state_copied(self):
        rng = np.random.default_rng(4)
        P = rng.normal(size=(300, 16))
        index = BatchIndexSpec(d=16, scheme="hyperplane", seed=1).build(P)
        clone = clone_shell(index)
        assert clone is not index
        assert clone.stats is not index.stats  # own mutable stats
        clone.candidates_batch(rng.normal(size=(5, 16)))
        assert clone.stats.queries == 5
        assert index.stats.queries == 0  # original untouched

    def test_large_arrays_by_reference(self):
        payload = {"big": np.zeros((256, 64)), "small": np.arange(4)}
        clone = clone_shell(payload)
        assert clone["big"] is payload["big"]  # shared, zero copy
        assert clone["small"] is not payload["small"]  # copied inline


class TestResolveWorkers:
    def test_integers_pass_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_auto_uses_cpu_count(self):
        assert resolve_workers("auto") == (os.cpu_count() or 1)

    def test_auto_capped_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "1")
        assert resolve_workers("auto") == 1
        monkeypatch.setenv("REPRO_MAX_WORKERS", "junk")
        with pytest.raises(ParameterError, match="REPRO_MAX_WORKERS"):
            resolve_workers("auto")
        monkeypatch.setenv("REPRO_MAX_WORKERS", "0")
        with pytest.raises(ParameterError, match=">= 1"):
            resolve_workers("auto")

    def test_invalid_requests(self):
        with pytest.raises(ParameterError, match=">= 1"):
            resolve_workers(0)
        with pytest.raises(ParameterError, match="integer or 'auto'"):
            resolve_workers("many")


class TestWorkerPoolLifecycle:
    def test_close_unlinks_arena(self):
        with WorkerPool(2, kind="process") as pool:
            ref = pool.share(np.zeros((256, 64)))
            assert ref.segment in repro_segments()
        assert ref.segment not in repro_segments()
        assert pool.closed
        with pytest.raises(ParameterError, match="closed"):
            pool.arena

    def test_share_is_process_only(self):
        with WorkerPool(2, kind="thread") as pool:
            with pytest.raises(ParameterError, match="process pools"):
                pool.share(np.zeros((256, 64)))

    def test_registry_reuses_and_recreates(self):
        pool = get_pool(2, kind="thread")
        assert get_pool(2, kind="thread") is pool
        pool.close()
        fresh = get_pool(2, kind="thread")
        assert fresh is not pool and not fresh.closed
        close_pools()
        assert fresh.closed

    def test_bad_kind_rejected(self):
        with pytest.raises(ParameterError, match="pool kind"):
            WorkerPool(2, kind="fibers")

    def test_segments_freed_after_worker_crash(self):
        """A dying worker must not leave /dev/shm segments behind."""
        from concurrent.futures.process import BrokenProcessPool

        P = np.zeros((256, 64))
        Q = np.zeros((8, 64))
        before = repro_segments()
        pool = WorkerPool(2, kind="process")
        with pytest.raises(BrokenProcessPool):
            map_query_chunks(
                None, P, Q, _crash_runner, (), n_workers=2, block=4,
                executor=pool,
            )
        assert pool.closed  # abandoned, not left half-dead
        assert repro_segments() == before

    def test_segments_freed_after_clean_calls(self):
        P = np.random.default_rng(0).normal(size=(256, 64))
        Q = np.random.default_rng(1).normal(size=(16, 64))
        before = repro_segments()
        with WorkerPool(2, kind="process") as pool:
            chunks = map_query_chunks(
                None, P, Q, _sum_runner, (), n_workers=2, block=8,
                executor=pool,
            )
            assert [c[0] for c in chunks] == [0, 8]
        assert repro_segments() == before


class TestChunkOrdering:
    def test_chunk_bounds_align_to_block(self):
        assert _chunk_bounds(10, 4, 3) == [(0, 4), (4, 8), (8, 10)]
        assert _chunk_bounds(8, 8, 4) == [(0, 8)]

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_out_of_order_completion_returns_in_order(self, kind):
        """Chunk 0 finishes last; results still come back query-ordered."""
        P = np.zeros((8, 4))
        Q = np.arange(48, dtype=np.float64).reshape(12, 4)
        with WorkerPool(3, kind=kind) as pool:
            chunks = map_query_chunks(
                None, P, Q, _slow_first_runner, (), n_workers=3, block=4,
                executor=pool,
            )
        assert [c[0] for c in chunks] == [0, 4, 8]
        expected = [float(Q[s:s + 4].sum()) for s in (0, 4, 8)]
        assert [c[1] for c in chunks] == expected


@pytest.fixture(scope="module")
def instance():
    rng = np.random.default_rng(11)
    P = rng.standard_normal((400, 24))
    P /= np.linalg.norm(P, axis=1, keepdims=True)
    Q = rng.standard_normal((90, 24))
    Q /= np.linalg.norm(Q, axis=1, keepdims=True)
    return P, Q


class TestExecutionModeEquivalence:
    """serial == process == thread, bit for bit, for every backend."""

    BACKENDS = [
        ("brute_force", JoinSpec(s=0.5, c=0.8, signed=True)),
        ("norm_pruned", JoinSpec(s=0.5, c=0.8, signed=True)),
        ("lsh", JoinSpec(s=0.5, c=0.8, signed=True)),
        ("sketch", JoinSpec(s=0.5, c=0.3, signed=False)),
    ]

    @pytest.mark.parametrize("backend,spec", BACKENDS)
    def test_backend_matrix(self, instance, backend, spec):
        P, Q = instance
        serial = join(P, Q, spec, backend=backend, seed=5, n_workers=1)
        process = join(
            P, Q, spec, backend=backend, seed=5,
            n_workers=TEST_WORKERS, pool="process",
        )
        threaded = join(
            P, Q, spec, backend=backend, seed=5,
            n_workers=TEST_WORKERS, pool="thread",
        )
        assert _result_key(serial) == _result_key(process)
        assert _result_key(serial) == _result_key(threaded)

    def test_hybrid_plan_matrix(self, instance):
        P, Q = instance
        spec = JoinSpec(s=0.5, c=0.8, signed=True)
        plan = norm_prefix_lsh_plan()
        serial = join(P, Q, spec, backend=plan, seed=5, n_workers=1)
        process = join(
            P, Q, spec, backend=plan, seed=5,
            n_workers=TEST_WORKERS, pool="process",
        )
        threaded = join(
            P, Q, spec, backend=plan, seed=5,
            n_workers=TEST_WORKERS, pool="thread",
        )
        assert _result_key(serial) == _result_key(process)
        assert _result_key(serial) == _result_key(threaded)

    def test_topk_equivalence(self, instance):
        P, Q = instance
        spec = JoinSpec(s=0.5, c=0.8, signed=True, k=3)
        serial = join(P, Q, spec, backend="brute_force", n_workers=1)
        threaded = join(
            P, Q, spec, backend="brute_force",
            n_workers=TEST_WORKERS, pool="thread",
        )
        assert serial.topk == threaded.topk
        assert serial.matches == threaded.matches

    def test_spawn_context_pool(self, instance):
        """Spawn workers (no inherited memory) see the same arena views."""
        P, Q = instance
        spec = JoinSpec(s=0.6, c=0.8)
        index_spec = BatchIndexSpec(
            d=24, scheme="hyperplane", n_tables=6, bits_per_table=7, seed=2
        )
        serial = parallel_lsh_join(P, Q, spec, index_spec=index_spec)
        with WorkerPool(2, kind="process", mp_context="spawn") as pool:
            spawned = parallel_lsh_join(
                P, Q, spec, index_spec=index_spec, n_workers=2, executor=pool
            )
        assert _result_key(serial) == _result_key(spawned)

    def test_traced_parallel_stitches_chunks(self, instance):
        """Parallel traces carry one run_chunk tree per chunk and merge
        to the exact metrics of the serial run."""
        P, Q = instance
        spec = JoinSpec(s=0.5, c=0.8, signed=True)
        serial = join(
            P, Q, spec, backend="lsh", seed=5, n_workers=1, trace=True,
            block=32,
        )
        threaded = join(
            P, Q, spec, backend="lsh", seed=5,
            n_workers=2, pool="thread", trace=True, block=32,
        )
        assert len(serial.trace.find("run_chunk")) == 1
        assert len(threaded.trace.find("run_chunk")) == 2
        assert (
            serial.metrics.snapshot()["counters"]
            == threaded.metrics.snapshot()["counters"]
        )

    def test_auto_backend_with_workers(self, instance):
        P, Q = instance
        spec = JoinSpec(s=0.5, c=0.8, signed=True)
        serial = join(P, Q, spec, backend="auto", seed=5, n_workers=1)
        parallel = join(P, Q, spec, backend="auto", seed=5, n_workers=2)
        assert serial.matches == parallel.matches


class TestPlannerParallelPricing:
    MODEL = CostModel(parallel_cores=8)

    def test_speedup_math(self):
        m = self.MODEL
        assert m.parallel_speedup(1) == 1.0
        assert m.parallel_speedup(4) == pytest.approx(1 + 3 * 0.75)
        # Workers beyond the pinned core count add nothing.
        assert m.parallel_speedup(64) == m.parallel_speedup(8)

    def test_parallelize_divides_query_ops_not_build(self):
        from repro.engine.protocol import CostEstimate

        est = CostEstimate(
            backend="x", build_ops=1e9, query_ops=8e9, feasible=True
        )
        out = self.MODEL.parallelize(est, 4)
        assert out.build_ops == est.build_ops  # build stays serial
        expected = 8e9 / self.MODEL.parallel_speedup(4) + 4 * 5e5
        assert out.query_ops == pytest.approx(expected)
        # n_workers=1 and infeasible estimates pass through untouched.
        assert self.MODEL.parallelize(est, 1) is est

    def test_small_join_prices_higher_parallel(self):
        spec = JoinSpec(s=0.5, c=0.8)
        serial = plan_join(500, 260, 32, spec, self.MODEL, n_workers=1)
        parallel = plan_join(500, 260, 32, spec, self.MODEL, n_workers=4)
        # Per-worker dispatch overhead dominates a tiny join.
        assert parallel.best_plan.total_ops > serial.best_plan.total_ops

    def test_large_join_prices_lower_parallel(self):
        spec = JoinSpec(s=0.5, c=0.8)
        serial = plan_join(200_000, 50_000, 64, spec, self.MODEL, n_workers=1)
        parallel = plan_join(
            200_000, 50_000, 64, spec, self.MODEL, n_workers=4
        )
        assert parallel.best_plan.total_ops < serial.best_plan.total_ops


class TestShardedJoin:
    def test_shard_bounds(self):
        assert shard_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert shard_bounds(2, 5) == [(0, 1), (1, 2)]  # capped at n
        with pytest.raises(ParameterError, match="n_shards"):
            shard_bounds(10, 0)
        with pytest.raises(ParameterError, match="empty"):
            shard_bounds(0, 2)

    @pytest.mark.parametrize("backend", ["brute_force", "norm_pruned"])
    @pytest.mark.parametrize("n_shards", [1, 2, 3])
    def test_exact_backends_identical_to_unsharded(
        self, instance, backend, n_shards
    ):
        P, Q = instance
        spec = JoinSpec(s=0.5, c=0.8, signed=True)
        unsharded = join(P, Q, spec, backend=backend, n_workers=1)
        sharded = sharded_join(P, Q, spec, n_shards=n_shards, backend=backend)
        assert sharded.matches == unsharded.matches
        assert sharded.backend == f"{backend}@{n_shards}shards"

    def test_topk_merge(self, instance):
        P, Q = instance
        spec = JoinSpec(s=0.5, c=0.8, signed=True, k=3)
        unsharded = join(P, Q, spec, backend="brute_force", n_workers=1)
        sharded = sharded_join(P, Q, spec, n_shards=4, backend="brute_force")
        assert sharded.topk == unsharded.topk

    def test_lsh_deterministic_given_seed_and_shards(self, instance):
        P, Q = instance
        spec = JoinSpec(s=0.5, c=0.8, signed=True)
        first = sharded_join(P, Q, spec, n_shards=2, backend="lsh", seed=9)
        again = sharded_join(
            P, Q, spec, n_shards=2, backend="lsh", seed=9,
            n_workers=2, pool="thread",
        )
        assert first.matches == again.matches

    def test_self_join_rejected(self, instance):
        P, _ = instance
        spec = JoinSpec(s=0.5, c=0.8, self_join=True)
        with pytest.raises(ParameterError, match="variant"):
            sharded_join(P, P, spec, n_shards=2)

    @pytest.mark.parametrize(
        "bad_options, match",
        [
            ({"backend": "no_such_backend"}, "unknown backend"),
            ({"backend": "quantized", "accumulate": "bogus"}, "accumulate"),
            ({"backend": "brute_force", "kappa": 3}, "options"),
            ({"pool": "fiber"}, "pool"),
            ({"n_workers": 0}, "n_workers"),
        ],
    )
    def test_invalid_options_fail_before_any_shard(
        self, instance, monkeypatch, bad_options, match
    ):
        """Option validation is hoisted: no shard may run before it.

        A mid-loop failure would leave a partial run (some shards
        joined, work billed, pools warmed) for an error that was knowable
        up front.  The inner engine join is replaced with a counter to
        prove it is never reached.
        """
        import repro.engine.api as engine_api

        P, Q = instance
        spec = JoinSpec(s=0.5, c=0.8, signed=True)
        calls = []
        real_join = engine_api.join
        monkeypatch.setattr(
            engine_api, "join",
            lambda *a, **kw: calls.append(1) or real_join(*a, **kw),
        )
        with pytest.raises(ParameterError, match=match):
            sharded_join(P, Q, spec, n_shards=3, **bad_options)
        assert calls == []


class TestBlasControl:
    def test_worker_share_policy(self):
        cores = os.cpu_count() or 1
        assert blasctl.worker_blas_threads(1) == max(1, cores)
        assert blasctl.worker_blas_threads(2 * cores) == 1
        assert blasctl.worker_blas_threads(2, requested=3) == 3
        with pytest.raises(ParameterError, match=">= 1"):
            blasctl.worker_blas_threads(2, requested=0)

    def test_blas_env_mapping(self):
        env = blasctl.blas_env(3)
        assert set(env) == set(blasctl.BLAS_ENV_VARS)
        assert all(v == "3" for v in env.values())
        with pytest.raises(ParameterError, match=">= 1"):
            blasctl.blas_env(0)

    def test_set_get_roundtrip(self):
        if not blasctl.blas_available() or blasctl.get_blas_threads() == 0:
            pytest.skip("no runtime BLAS thread control on this build")
        before = blasctl.get_blas_threads()
        try:
            assert blasctl.set_blas_threads(1)
            assert blasctl.get_blas_threads() == 1
        finally:
            blasctl.set_blas_threads(before)
        assert blasctl.get_blas_threads() == before

    def test_context_manager_restores(self):
        if not blasctl.blas_available() or blasctl.get_blas_threads() == 0:
            pytest.skip("no runtime BLAS thread control on this build")
        before = blasctl.get_blas_threads()
        with blasctl.blas_threads(1) as applied:
            assert applied
            assert blasctl.get_blas_threads() == 1
        assert blasctl.get_blas_threads() == before

    def test_set_rejects_nonpositive(self):
        with pytest.raises(ParameterError, match=">= 1"):
            blasctl.set_blas_threads(0)

    def test_serial_path_honors_blas_threads(self, instance, monkeypatch):
        """Regression: ``blas_threads=`` used to be dropped when
        ``n_workers=1`` — the pin only reached the pool paths.  The
        context manager is replaced with a recorder so the check holds
        on any core count (on one core the fair share is already 1 and a
        behavioral check would be vacuous).
        """
        from contextlib import contextmanager

        P, Q = instance
        spec = JoinSpec(s=0.5, c=0.8, signed=True)
        pins = []

        @contextmanager
        def recording(n):
            pins.append(n)
            yield True

        monkeypatch.setattr(blasctl, "blas_threads", recording)
        expected = join(P, Q, spec, backend="brute_force", n_workers=1)
        assert pins == []  # no request, no pin: default stays untouched
        pinned = join(
            P, Q, spec, backend="brute_force", n_workers=1, blas_threads=2
        )
        assert pins == [2]
        assert pinned.matches == expected.matches


@pytest.fixture(scope="module", autouse=True)
def _sweep_pools():
    """Leave no persistent pools or segments behind for other modules."""
    yield
    close_pools()
    assert repro_segments() == []
