"""Exhaustive verification on small domains.

For small ``d`` / universes the guarantees can be checked on *every*
input, not a sample: all 2^d x 2^d binary pairs for the gap embeddings,
all permutations of a tiny universe for minwise hashing (so collision
probabilities are computed exactly, not estimated), and all P1-nodes of
small grids for the partition.
"""

import itertools
import math

import numpy as np
import pytest

from repro.embeddings import (
    ChebyshevSignEmbedding,
    ChoppedBinaryEmbedding,
    SignedCoordinateEmbedding,
)
from repro.lsh.minhash import EMPTY_SET, AsymmetricMinHash, MinHash


def all_binary_vectors(d):
    return [np.array(bits, dtype=np.int64) for bits in itertools.product((0, 1), repeat=d)]


class TestEmbeddingsExhaustive:
    def test_signed_embedding_all_pairs_d5(self):
        emb = SignedCoordinateEmbedding(5)
        vectors = all_binary_vectors(5)
        lefts = {tuple(v): emb.embed_left(v) for v in vectors}
        rights = {tuple(v): emb.embed_right(v) for v in vectors}
        for x in vectors:
            for y in vectors:
                value = float(lefts[tuple(x)] @ rights[tuple(y)])
                assert value == emb.embedded_inner_product(int(x @ y))
                if int(x @ y) == 0:
                    assert value >= emb.s
                else:
                    assert value <= emb.cs

    def test_chebyshev_embedding_all_pairs_d4(self):
        emb = ChebyshevSignEmbedding(4, q=2)
        vectors = all_binary_vectors(4)
        lefts = {tuple(v): emb.embed_left(v) for v in vectors}
        rights = {tuple(v): emb.embed_right(v) for v in vectors}
        for x in vectors:
            for y in vectors:
                value = float(lefts[tuple(x)] @ rights[tuple(y)])
                assert abs(value - emb.embedded_inner_product(int(x @ y))) < 1e-6
                if int(x @ y) == 0:
                    assert abs(value) >= emb.s - 1e-6
                else:
                    assert abs(value) <= emb.cs + 1e-6

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_chopped_embedding_all_pairs_d5(self, k):
        emb = ChoppedBinaryEmbedding(5, k=k)
        vectors = all_binary_vectors(5)
        for x in vectors:
            for y in vectors:
                value = float(emb.embed_left(x) @ emb.embed_right(y))
                assert value == emb.embedded_inner_product(x, y)
                if int(x @ y) == 0:
                    assert value == emb.s
                else:
                    assert value <= emb.cs


class _PermutationMinHash:
    """Evaluate minwise collision probabilities exactly over all orders."""

    @staticmethod
    def exact_collision(universe, set_a, set_b):
        hits = 0
        total = 0
        for perm in itertools.permutations(range(universe)):
            priorities = np.array(perm)
            def h(members):
                if not members:
                    return EMPTY_SET
                arr = np.array(sorted(members))
                return int(arr[np.argmin(priorities[arr])])
            hits += h(set_a) == h(set_b)
            total += 1
        return hits / total


class TestMinHashExact:
    @pytest.mark.parametrize(
        "set_a,set_b",
        [
            ({0, 1}, {1, 2}),
            ({0, 1, 2}, {2, 3}),
            ({0}, {0, 1, 2, 3}),
            ({0, 1}, {2, 3}),
        ],
    )
    def test_collision_probability_is_exactly_jaccard(self, set_a, set_b):
        universe = 5
        exact = _PermutationMinHash.exact_collision(universe, set_a, set_b)
        union = len(set_a | set_b)
        inter = len(set_a & set_b)
        assert abs(exact - inter / union) < 1e-12

    def test_library_minhash_matches_exhaustive(self, rng):
        # Statistical check that the library's permutation sampling
        # realizes the exhaustively-computed probability.
        universe = 5
        set_a, set_b = {0, 1, 2}, {2, 3}
        exact = _PermutationMinHash.exact_collision(universe, set_a, set_b)
        a = np.zeros(universe, dtype=np.int64); a[list(set_a)] = 1
        b = np.zeros(universe, dtype=np.int64); b[list(set_b)] = 1
        fam = MinHash(universe)
        hits = sum(
            1 for _ in range(4000)
            if (lambda h: h(a) == h(b))(fam.sample_function(rng))
        )
        assert abs(hits / 4000 - exact) < 0.03

    def test_asymmetric_closed_form_exact_small_case(self):
        # Exhaustive verification of a/(M + |q| - a) on a tiny universe:
        # enumerate all priority orders over universe + dummies.
        universe, M = 3, 2
        x_support = [0]          # weight 1, padded with 1 dummy (index 3)
        q_support = [0, 1]       # weight 2, unpadded
        a = 1
        total_items = universe + M
        hits = 0
        count = 0
        for perm in itertools.permutations(range(total_items)):
            priorities = np.array(perm)
            data_members = np.array(x_support + [universe])  # + first dummy
            query_members = np.array(q_support)
            h_data = int(data_members[np.argmin(priorities[data_members])])
            h_query = int(query_members[np.argmin(priorities[query_members])])
            hits += h_data == h_query
            count += 1
        exact = hits / count
        closed = AsymmetricMinHash.collision_probability(a, len(q_support), M)
        assert abs(exact - closed) < 1e-12


class TestBitsExhaustive:
    def test_pack_roundtrip_orthogonality_all_pairs_d4(self):
        from repro.utils.bits import pack_binary_rows, packed_dot_is_zero
        vectors = all_binary_vectors(4)
        X = np.stack(vectors)
        packed = pack_binary_rows(X)
        for i, x in enumerate(vectors):
            for j, y in enumerate(vectors):
                assert packed_dot_is_zero(packed[i], packed[j]) == (int(x @ y) == 0)
