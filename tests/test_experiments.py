"""Tests for the reproduction-report builders and the CLI."""

import os

import pytest

from repro.experiments import ALL_EXPERIMENTS, format_table
from repro.experiments.__main__ import main as cli_main
from repro.experiments.figure1 import build_gap_decay_report, build_partition_census
from repro.experiments.figure2 import build_curves_report
from repro.experiments.hard_instances import build_landscape_report
from repro.experiments.table1 import build_table1_reports, measured_embedding_gap


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["xxx", "y"]])
        lines = text.splitlines()
        assert lines[0].startswith("a  ")
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].startswith("xxx")

    def test_row_count(self):
        text = format_table(["h"], [[1], [2], [3]])
        assert len(text.splitlines()) == 5


class TestReportBuilders:
    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "figure1", "figure2", "hard-instances"
        }

    def test_table1_reports(self):
        reports = build_table1_reports(d=12, sketch_n=128)
        assert set(reports) == {"table1", "table1_permissible"}
        assert "signed {-1,1}" in reports["table1"]
        assert "kappa=2.0" in reports["table1_permissible"]

    def test_measured_gap_respects_closed_form(self):
        from repro.embeddings import SignedCoordinateEmbedding
        emb = SignedCoordinateEmbedding(12)
        lo, hi = measured_embedding_gap(emb, 12, trials=40)
        assert lo >= emb.s - 1e-9
        assert hi <= emb.cs + 1e-9

    def test_partition_census_content(self):
        text = build_partition_census(max_ell=4)
        assert "2^4-1 = 15" in text
        assert "8x(side 1)" in text

    def test_gap_decay_within_bound(self):
        text = build_gap_decay_report(ells=(2, 3), trials=20)
        assert "False" not in text

    def test_figure2_curves_structure(self):
        text = build_curves_report(c_values=(0.5,), step=0.25)
        assert "c = 0.5" in text
        assert "DATA-DEP" in text

    def test_hard_instance_landscape(self):
        text = build_landscape_report(exponents=(10, 12))
        signed_rows = [
            line for line in text.splitlines() if line.startswith("signed {-1,1}")
        ]
        assert len(signed_rows) == 2


class TestCLI:
    def test_single_experiment(self, capsys):
        assert cli_main(["hard-instances"]) == 0
        out = capsys.readouterr().out
        assert "hard_instances" in out

    def test_writes_artifacts(self, tmp_path, capsys):
        assert cli_main(["hard-instances", "--out", str(tmp_path)]) == 0
        files = os.listdir(tmp_path)
        assert "hard_instances.txt" in files
        assert "hard_instances_limits.txt" in files

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["nonsense"])
