import numpy as np
import pytest

from repro.errors import ConstructionError, ParameterError
from repro.incoherent import coherence, random_quasi_orthogonal
from repro.incoherent.random_family import jl_dimension


class TestCoherence:
    def test_orthonormal_is_zero(self):
        assert coherence(np.eye(4)) == 0.0

    def test_single_vector_zero(self):
        assert coherence(np.ones((1, 3))) == 0.0

    def test_duplicate_rows_give_one(self):
        Z = np.vstack([np.eye(3)[0], np.eye(3)[0]])
        assert abs(coherence(Z) - 1.0) < 1e-12

    def test_uses_absolute_value(self):
        Z = np.vstack([np.eye(3)[0], -np.eye(3)[0]])
        assert abs(coherence(Z) - 1.0) < 1e-12


class TestJLDimension:
    def test_scales_inverse_eps_squared(self):
        assert jl_dimension(100, 0.1) > jl_dimension(100, 0.3)

    def test_scales_log_count(self):
        assert jl_dimension(10**6, 0.2) > jl_dimension(10, 0.2)

    def test_bad_inputs(self):
        with pytest.raises(ParameterError):
            jl_dimension(1, 0.1)
        with pytest.raises(ParameterError):
            jl_dimension(10, 0.0)


class TestRandomQuasiOrthogonal:
    def test_certified_coherence(self):
        Z = random_quasi_orthogonal(30, 0.35, seed=0)
        assert coherence(Z) <= 0.35

    def test_unit_norms(self):
        Z = random_quasi_orthogonal(20, 0.4, seed=1)
        np.testing.assert_allclose(np.linalg.norm(Z, axis=1), 1.0, atol=1e-12)

    def test_explicit_dimension(self):
        Z = random_quasi_orthogonal(10, 0.5, dimension=64, seed=2)
        assert Z.shape == (10, 64)

    def test_reproducible(self):
        a = random_quasi_orthogonal(10, 0.4, seed=3)
        b = random_quasi_orthogonal(10, 0.4, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_infeasible_dimension_raises(self):
        # 50 vectors cannot be 0.01-incoherent in 2 dimensions.
        with pytest.raises(ConstructionError):
            random_quasi_orthogonal(50, 0.01, dimension=2, seed=4, max_attempts=3)

    def test_single_vector(self):
        Z = random_quasi_orthogonal(1, 0.1, seed=5)
        assert Z.shape[0] == 1

    def test_bad_inputs(self):
        with pytest.raises(ParameterError):
            random_quasi_orthogonal(0, 0.1)
        with pytest.raises(ParameterError):
            random_quasi_orthogonal(5, 1.2)
