import numpy as np
import pytest

from repro.errors import ConstructionError, ParameterError
from repro.incoherent import ReedSolomonIncoherent, next_prime
from repro.incoherent.reed_solomon import choose_parameters, is_prime


class TestPrimes:
    @pytest.mark.parametrize("n,expected", [(2, True), (3, True), (4, False), (17, True), (91, False), (97, True)])
    def test_is_prime(self, n, expected):
        assert is_prime(n) == expected

    def test_non_positive(self):
        assert not is_prime(0) and not is_prime(1) and not is_prime(-5)

    @pytest.mark.parametrize("n,expected", [(1, 2), (8, 11), (14, 17), (17, 17)])
    def test_next_prime(self, n, expected):
        assert next_prime(n) == expected


class TestChooseParameters:
    def test_capacity_satisfied(self):
        q, k = choose_parameters(1000, 0.2)
        assert q ** k >= 1000

    def test_coherence_satisfied(self):
        q, k = choose_parameters(1000, 0.2)
        assert (k - 1) / q <= 0.2

    def test_huge_size_handled(self):
        # Must not attempt primality checks at astronomically large q.
        q, k = choose_parameters(2 ** 64, 0.1)
        assert q ** k >= 2 ** 64 and (k - 1) / q <= 0.1

    def test_bad_inputs(self):
        with pytest.raises(ParameterError):
            choose_parameters(0, 0.1)
        with pytest.raises(ParameterError):
            choose_parameters(10, 1.5)


class TestReedSolomonCollection:
    @pytest.fixture(scope="class")
    def collection(self):
        return ReedSolomonIncoherent(500, 0.25)

    def test_unit_norms(self, collection):
        V = collection.vectors(range(40))
        np.testing.assert_allclose(np.linalg.norm(V, axis=1), 1.0, atol=1e-12)

    def test_pairwise_coherence(self, collection):
        V = collection.vectors(range(40))
        gram = np.abs(V @ V.T)
        np.fill_diagonal(gram, 0.0)
        assert gram.max() <= collection.coherence + 1e-12

    def test_coherence_below_requested(self, collection):
        assert collection.coherence <= 0.25

    def test_dimension_is_q_squared(self, collection):
        assert collection.dimension == collection.q ** 2
        assert collection.vector(0).size == collection.dimension

    def test_vectors_are_deterministic(self, collection):
        np.testing.assert_array_equal(collection.vector(7), collection.vector(7))

    def test_distinct_indices_distinct_vectors(self, collection):
        assert not np.array_equal(collection.vector(1), collection.vector(2))

    def test_dot_without_materializing(self, collection):
        for a, b in ((0, 1), (3, 17), (5, 5)):
            direct = float(collection.vector(a) @ collection.vector(b))
            assert abs(collection.dot(a, b) - direct) < 1e-12

    def test_one_nonzero_per_block(self, collection):
        v = collection.vector(11).reshape(collection.q, collection.q)
        assert ((v != 0).sum(axis=1) == 1).all()

    def test_index_out_of_range(self, collection):
        with pytest.raises(ParameterError):
            collection.vector(collection.capacity)

    def test_capacity(self, collection):
        assert collection.capacity == collection.q ** collection.k >= 500
