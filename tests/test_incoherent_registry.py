import numpy as np
import pytest

from repro.errors import ParameterError
from repro.incoherent import IncoherentRegistry


@pytest.fixture(scope="module")
def registry():
    return IncoherentRegistry(eps=0.1, precision_bits=12)


class TestIncoherentRegistry:
    def test_companion_is_unit(self, registry):
        v = registry.companion(np.array([0.5, -0.25, 0.75]))
        assert abs(np.linalg.norm(v) - 1.0) < 1e-12

    def test_deterministic(self, registry):
        x = np.array([0.1, 0.2])
        np.testing.assert_array_equal(registry.companion(x), registry.companion(x))

    def test_distinct_vectors_incoherent(self, registry, rng):
        vs = [registry.companion(rng.normal(size=3)) for _ in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                assert abs(vs[i] @ vs[j]) <= registry.coherence + 1e-12

    def test_quantization_rounds(self, registry):
        scale = 1 << registry.precision_bits
        q = registry.quantize(np.array([0.5, -0.25]))
        np.testing.assert_array_equal(q, [scale // 2, -scale // 4])

    def test_nearby_vectors_same_key(self):
        coarse = IncoherentRegistry(eps=0.2, precision_bits=3)
        a = coarse.index_for(np.array([0.5]))
        b = coarse.index_for(np.array([0.51]))
        assert a == b

    def test_salt_changes_assignment(self):
        base = IncoherentRegistry(eps=0.2, precision_bits=8)
        salted = IncoherentRegistry(eps=0.2, precision_bits=8, salt=b"other")
        x = np.array([0.25, 0.75])
        assert base.index_for(x) != salted.index_for(x)

    def test_coherence_property(self, registry):
        assert registry.coherence <= 0.1

    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            IncoherentRegistry(eps=0.0)
        with pytest.raises(ParameterError):
            IncoherentRegistry(eps=0.1, precision_bits=0)
