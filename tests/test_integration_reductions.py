"""End-to-end reductions: OVP solved through gap embeddings and joins.

These are the executable form of Theorem 1's proof: embed an OVP instance
with each of Lemma 3's gap embeddings, run a ``(cs, s)`` join on the
embedded vectors, and confirm the join answers the OVP question exactly
as the direct solvers do.
"""

import numpy as np
import pytest

from repro.core import JoinSpec, brute_force_join
from repro.datasets import planted_ovp
from repro.embeddings import (
    ChebyshevSignEmbedding,
    ChoppedBinaryEmbedding,
    SignedCoordinateEmbedding,
)
from repro.ovp import solve_ovp_bitpacked


def solve_ovp_via_embedding(instance, embedding, signed):
    """The Lemma 2 pipeline: embed, join, map answers back."""
    embedded_p = embedding.embed_left_many(instance.P)
    embedded_q = embedding.embed_right_many(instance.Q)
    # Any c in (cs/s, 1) separates; use the midpoint.
    c = (embedding.cs / embedding.s + 1.0) / 2.0 if embedding.cs > 0 else 0.5
    spec = JoinSpec(s=embedding.s, c=c, signed=signed)
    result = brute_force_join(embedded_p, embedded_q, spec)
    for qi, match in enumerate(result.matches):
        if match is not None and int(instance.P[match] @ instance.Q[qi]) == 0:
            return (match, qi)
    return None


@pytest.mark.parametrize("planted", [True, False])
class TestSignedEmbeddingReduction:
    def test_matches_direct_solver(self, planted):
        inst = planted_ovp(24, 16, planted=planted, seed=10 + planted)
        emb = SignedCoordinateEmbedding(inst.d)
        via_join = solve_ovp_via_embedding(inst, emb, signed=True)
        direct = solve_ovp_bitpacked(inst)
        assert (via_join is None) == (direct is None)
        if via_join is not None:
            i, j = via_join
            assert inst.is_orthogonal(i, j)


@pytest.mark.parametrize("planted", [True, False])
class TestChebyshevEmbeddingReduction:
    def test_matches_direct_solver(self, planted):
        # density 0.75 so the unplanted instance has no accidental
        # orthogonal pair at this small dimension.
        inst = planted_ovp(16, 16, planted=planted, density=0.75, seed=20 + planted)
        emb = ChebyshevSignEmbedding(d=inst.d, q=2)
        via_join = solve_ovp_via_embedding(inst, emb, signed=False)
        direct = solve_ovp_bitpacked(inst)
        assert (via_join is None) == (direct is None)
        if via_join is not None:
            assert inst.is_orthogonal(*via_join)


@pytest.mark.parametrize("planted", [True, False])
class TestChoppedEmbeddingReduction:
    def test_matches_direct_solver(self, planted):
        inst = planted_ovp(20, 16, planted=planted, density=0.75, seed=30 + planted)
        emb = ChoppedBinaryEmbedding(d=inst.d, k=4)
        via_join = solve_ovp_via_embedding(inst, emb, signed=False)
        direct = solve_ovp_bitpacked(inst)
        assert (via_join is None) == (direct is None)
        if via_join is not None:
            assert inst.is_orthogonal(*via_join)


class TestEmbeddingJoinFindsPlantedPair:
    def test_signed_pipeline_recovers_pair(self):
        inst = planted_ovp(24, 16, planted=True, seed=40)
        emb = SignedCoordinateEmbedding(inst.d)
        found = solve_ovp_via_embedding(inst, emb, signed=True)
        assert found is not None
        assert inst.is_orthogonal(*found)

    def test_gap_separation_on_embedded_instance(self):
        # Every orthogonal pair lands at >= s, all others at <= cs.
        inst = planted_ovp(16, 12, planted=True, seed=41)
        emb = ChoppedBinaryEmbedding(d=inst.d, k=4)
        EP = emb.embed_left_many(inst.P)
        EQ = emb.embed_right_many(inst.Q)
        raw = inst.P @ inst.Q.T
        embedded = EP @ EQ.T
        assert (np.abs(embedded[raw == 0]) >= emb.s).all()
        assert (np.abs(embedded[raw != 0]) <= emb.cs).all()


class TestSymmetricLSHSolvesSearch:
    def test_search_with_self_match_pre_step(self):
        # Section 4.2's full recipe: check query membership first, then
        # use the symmetric hash for distinct vectors.
        from repro.lsh import LSHIndex, SymmetricIPSHash
        from repro.lsh.symmetric import query_is_self_match

        rng = np.random.default_rng(42)
        P = rng.normal(size=(60, 6))
        P *= 0.9 / np.linalg.norm(P, axis=1, keepdims=True)
        family = SymmetricIPSHash(6, eps=0.05)
        index = LSHIndex(family, n_tables=10, hashes_per_table=2, seed=0).build(P)

        # A query equal to a stored vector: the pre-step answers it.
        q_self = P[7]
        assert query_is_self_match(P, q_self, s=0.5)

        # A distinct query near a stored vector: the index answers it.
        q_near = P[7] * 0.99
        found = index.query(q_near, threshold=0.5)
        assert found is not None
        assert float(P[found] @ q_near) >= 0.5
