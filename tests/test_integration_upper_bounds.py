"""End-to-end integration of the Section 4 upper bounds on one workload.

One planted instance; all three upper-bound structures answer it through
the standardized evaluation harness; the symmetric family also goes
through the Lemma 4 mass accounting — every layer of the library in one
test file.
"""

import numpy as np
import pytest

from repro.core import JoinSpec, brute_force_join, lsh_join, sketch_unsigned_join
from repro.datasets import planted_mips
from repro.evaluation import evaluate_joins
from repro.lsh import (
    BatchSignIndex,
    SymmetricIPSHash,
    plan_datadep,
)
from repro.lsh.collision_curves import measure_collision_curve
from repro.lsh.hyperplane import HyperplaneLSH
from repro.lsh.rho import collision_prob_hyperplane


@pytest.fixture(scope="module")
def instance():
    return planted_mips(600, 24, 32, s=0.85, c=0.4, seed=0)


class TestAllUpperBoundsOnOneWorkload:
    def test_three_structures_through_evaluation_harness(self, instance):
        spec = JoinSpec(s=instance.s, c=0.4)
        config = plan_datadep(n=instance.n, s=instance.s, c=0.4, delta=0.15)

        def datadep(P, Q, spec_):
            idx = BatchSignIndex.for_datadep(
                32, n_tables=config.n_tables,
                bits_per_table=config.k, seed=1,
            ).build(P)
            return lsh_join(P, Q, spec_, family=None, index=idx)

        def symmetric(P, Q, spec_):
            idx = BatchSignIndex.for_symmetric(
                32, eps=0.05, n_tables=config.n_tables,
                bits_per_table=config.k, seed=2,
            ).build(P)
            return lsh_join(P, Q, spec_, family=None, index=idx)

        def sketch(P, Q, spec_):
            return sketch_unsigned_join(P, Q, s=spec_.s, kappa=3.0, seed=3)

        records = evaluate_joins(
            instance.P, instance.Q, spec,
            {"DATA-DEP (4.1)": datadep, "symmetric (4.2)": symmetric,
             "sketch (4.3)": sketch},
        )
        by_name = {r.name: r for r in records}
        # All structures sound; approximate ones reach the planned recall.
        for record in records:
            assert record.sound, record
        assert by_name["DATA-DEP (4.1)"].recall >= 0.7
        assert by_name["symmetric (4.2)"].recall >= 0.7
        assert by_name["sketch (4.3)"].recall >= 0.9
        # Filter-based structures verify far fewer pairs than the scan.
        scan_pairs = instance.n * instance.Q.shape[0]
        assert by_name["DATA-DEP (4.1)"].inner_products < scan_pairs / 4

    def test_symmetric_family_through_mass_accounting(self):
        # The 4.2 family, audited by the Lemma 4 machinery end to end.
        from repro.lowerbounds import FiniteHashFamily, MassAccounting, geometric_sequences
        seqs = geometric_sequences(s=0.005, c=0.7, U=4.0, d=2)
        n = 7  # 2^3 - 1 grid
        # Scale data/queries into the unit ball for the symmetric family.
        P = seqs.P[:n]
        Q = seqs.Q[:n] / seqs.U
        rng = np.random.default_rng(0)
        family = SymmetricIPSHash(2, eps=0.05)
        pairs = [family.sample(rng) for _ in range(40)]
        finite = FiniteHashFamily.from_hash_pairs(pairs, Q, P)
        report = MassAccounting(finite).verify()
        assert report["gap_within_bound"]
        assert report["total_proper_mass"] <= 2 * n


class TestCollisionCurves:
    def test_hyperplane_curve_matches_closed_form(self):
        curve = measure_collision_curve(
            HyperplaneLSH(32),
            similarities=[-0.5, 0.0, 0.4, 0.8],
            d=32, trials=1200, pairs=4,
            closed_form=collision_prob_hyperplane,
            seed=1,
        )
        assert curve.max_deviation < 0.05
        assert curve.is_monotone_increasing(slack=0.03)

    def test_standard_errors_positive(self):
        curve = measure_collision_curve(
            HyperplaneLSH(8), similarities=[0.2, 0.6], trials=200, pairs=2,
            d=8, seed=2,
        )
        assert (curve.standard_errors > 0).all()

    def test_no_reference_gives_nan_deviation(self):
        curve = measure_collision_curve(
            HyperplaneLSH(8), similarities=[0.5], trials=100, pairs=2, d=8, seed=3,
        )
        assert np.isnan(curve.max_deviation)

    def test_empty_grid_rejected(self):
        from repro.errors import ParameterError
        with pytest.raises(ParameterError):
            measure_collision_curve(HyperplaneLSH(8), similarities=[])
