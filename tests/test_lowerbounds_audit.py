import numpy as np
import pytest

from repro.errors import ParameterError
from repro.lowerbounds import audit_gap, geometric_sequences, shifted_affine_sequences
from repro.lsh import DataDepALSH, HyperplaneLSH
from repro.lsh.base import AsymmetricLSHFamily, HashFunctionPair


class ConstantFamily(AsymmetricLSHFamily):
    """Everything collides: P1 = P2 = 1."""

    def sample(self, rng):
        return HashFunctionPair(hash_data=lambda x: 0, hash_query=lambda x: 0)


class TestAuditGap:
    @pytest.fixture(scope="class")
    def sequences(self):
        return geometric_sequences(s=0.02, c=0.5, U=2.0, d=1)

    def test_constant_family_gap_zero(self, sequences):
        audit = audit_gap(ConstantFamily(), sequences, trials=20, seed=0)
        assert audit.p1 == 1.0 and audit.p2 == 1.0
        assert audit.gap == 0.0
        assert audit.within_bound

    def test_real_alsh_within_bound(self, sequences):
        fam = DataDepALSH(1, query_radius=2.0, sphere="hyperplane")
        audit = audit_gap(fam, sequences, trials=300, seed=1)
        assert audit.within_bound
        assert 0.0 <= audit.p1 <= 1.0 and 0.0 <= audit.p2 <= 1.0

    def test_audit_on_affine_sequences(self):
        seqs = shifted_affine_sequences(s=0.02, c=0.5, U=2.0, d=2)
        fam = DataDepALSH(2, query_radius=2.0, sphere="hyperplane")
        audit = audit_gap(fam, seqs, trials=200, seed=2)
        assert audit.within_bound

    def test_pair_budget_respected(self, sequences):
        audit = audit_gap(
            ConstantFamily(), sequences, trials=5, max_pairs_per_side=10, seed=3
        )
        assert audit.pairs_checked <= 20

    def test_gap_bound_reported(self, sequences):
        audit = audit_gap(ConstantFamily(), sequences, trials=5, seed=4)
        assert audit.n == sequences.n
        assert audit.gap_bound > 0

    def test_bad_trials(self, sequences):
        with pytest.raises(ParameterError):
            audit_gap(ConstantFamily(), sequences, trials=0)
