import math

import pytest

from repro.errors import ParameterError
from repro.lowerbounds import (
    gap_bound_case1,
    gap_bound_case2,
    gap_bound_case3,
    lemma4_gap_bound,
)
from repro.lowerbounds.gap_bounds import (
    required_dimension_case3,
    sequence_length_case1,
    sequence_length_case2,
    sequence_length_case3,
)


class TestLemma4Bound:
    def test_formula(self):
        assert lemma4_gap_bound(256) == 1.0
        assert lemma4_gap_bound(2 ** 16) == 0.5

    def test_decreasing_in_n(self):
        values = [lemma4_gap_bound(n) for n in (4, 64, 4096, 2 ** 20)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_bad_n(self):
        with pytest.raises(ParameterError):
            lemma4_gap_bound(1)


class TestCase1:
    def test_length_matches_construction(self):
        from repro.lowerbounds import geometric_sequences
        s, c, U = 0.05, 0.5, 2.0
        assert sequence_length_case1(s, c, U, d=1) == geometric_sequences(s, c, U, 1).n

    def test_bound_decreases_with_u(self):
        assert gap_bound_case1(0.01, 0.5, 1000.0) < gap_bound_case1(0.01, 0.5, 1.0)

    def test_bound_decreases_with_d(self):
        assert gap_bound_case1(0.01, 0.5, 8.0, d=64) < gap_bound_case1(0.01, 0.5, 8.0, d=2)

    def test_precondition(self):
        with pytest.raises(ParameterError):
            sequence_length_case1(1.0, 0.5, 1.0)


class TestCase2:
    def test_scales_sqrt_u_over_s(self):
        n1 = sequence_length_case2(0.01, 0.5, 1.0)
        n2 = sequence_length_case2(0.01, 0.5, 100.0)
        assert 8 <= n2 / n1 <= 12  # ~ sqrt(100) = 10

    def test_bound_decreases_as_c_approaches_one(self):
        # m = Theta(sqrt(U / (s (1-c)))): c -> 1 lengthens the sequence,
        # hence shrinks the gap bound.
        assert gap_bound_case2(0.01, 0.9, 4.0) <= gap_bound_case2(0.01, 0.1, 4.0)

    def test_precondition(self):
        with pytest.raises(ParameterError):
            sequence_length_case2(2.0, 0.5, 1.0)


class TestCase3:
    def test_length_is_exponential(self):
        assert sequence_length_case3(0.01, 8.0) == (1 << int(math.sqrt(100))) - 1

    def test_bound_scales_sqrt_s_over_u(self):
        # 8 / log2(n) with log2 n = sqrt(U/8s) gives ~ 8 sqrt(8 s/U).
        bound = gap_bound_case3(0.01, 80.0)
        predicted = 8.0 / math.floor(math.sqrt(80.0 / 0.08))
        assert abs(bound - predicted) < 1e-9

    def test_decreasing_in_u(self):
        assert gap_bound_case3(0.01, 1000.0) < gap_bound_case3(0.01, 10.0)

    def test_trivial_instance_rejected(self):
        with pytest.raises(ParameterError):
            gap_bound_case3(1.0, 2.0)

    def test_required_dimension_grows(self):
        assert required_dimension_case3(0.001, 0.5, 8.0) > required_dimension_case3(0.1, 0.5, 8.0)


class TestUnboundedDomainConsequence:
    def test_gap_vanishes_as_u_grows(self):
        # "there cannot exist an asymmetric LSH when the query domain is
        # unbounded": every case's bound tends to 0 with U.
        for U in (10.0, 100.0, 1000.0, 10000.0):
            pass
        series1 = [gap_bound_case1(0.001, 0.5, U) for U in (10, 100, 1000, 10000)]
        series3 = [gap_bound_case3(0.001, U) for U in (10, 100, 1000, 10000)]
        assert all(a > b for a, b in zip(series1, series1[1:]))
        assert all(a > b for a, b in zip(series3, series3[1:]))
        assert series3[-1] < 0.1
