import numpy as np
import pytest

from repro.errors import ParameterError
from repro.lowerbounds import Square, lower_triangle_partition, square_containing
from repro.lowerbounds.grid import grid_side, left_squares, top_squares


class TestGridSide:
    @pytest.mark.parametrize("ell,n", [(1, 1), (2, 3), (4, 15), (8, 255)])
    def test_values(self, ell, n):
        assert grid_side(ell) == n

    def test_bad_ell(self):
        with pytest.raises(ParameterError):
            grid_side(0)


class TestSquare:
    def test_figure1_example(self):
        # G_{2,0} of the 15x15 grid: rows 0..3, cols 3..6.
        sq = Square(r=2, s=0)
        assert sq.row_start == 0 and sq.row_end == 3
        assert sq.col_start == 3 and sq.col_end == 6
        assert sq.side == 4

    def test_diagonal_touch(self):
        # The corner (row_end, col_start) sits on the diagonal.
        for r in range(4):
            for s in range(4):
                sq = Square(r=r, s=s)
                assert sq.row_end == sq.col_start

    def test_contains(self):
        sq = Square(r=1, s=1)
        assert sq.contains(sq.row_start, sq.col_start)
        assert not sq.contains(sq.row_start - 1, sq.col_start)

    def test_node_count(self):
        assert len(list(Square(r=3, s=0).nodes())) == 64

    def test_negative_params(self):
        with pytest.raises(ParameterError):
            Square(r=-1, s=0)


class TestPartition:
    @pytest.mark.parametrize("ell", range(1, 9))
    def test_exact_tiling(self, ell):
        n = grid_side(ell)
        seen = set()
        for sq in lower_triangle_partition(ell):
            for node in sq.nodes():
                assert node not in seen
                i, j = node
                assert 0 <= i <= j < n
                seen.add(node)
        assert len(seen) == n * (n + 1) // 2

    @pytest.mark.parametrize("ell", range(1, 7))
    def test_square_census(self, ell):
        # 2^{ell-r-1} squares of side 2^r at each level r.
        squares = lower_triangle_partition(ell)
        for r in range(ell):
            count = sum(1 for sq in squares if sq.r == r)
            assert count == 2 ** (ell - r - 1)

    @pytest.mark.parametrize("ell", [2, 3, 5])
    def test_square_containing_agrees(self, ell):
        n = grid_side(ell)
        for i in range(n):
            for j in range(i, n):
                assert square_containing(ell, i, j).contains(i, j)

    def test_square_containing_rejects_p2_nodes(self):
        with pytest.raises(ParameterError):
            square_containing(3, 5, 2)


class TestNeighborRegions:
    def test_figure1_left_and_top_of_g20(self):
        # The paper's Figure 1 (right) zooms G_{2,0}: left blocks are
        # G_{0,0}, G_{0,1}, G_{1,0}; top blocks are G_{0,2}, G_{0,3}, G_{1,1}.
        ls = {(sq.r, sq.s) for sq in left_squares(4, Square(2, 0))}
        ts = {(sq.r, sq.s) for sq in top_squares(4, Square(2, 0))}
        assert ls == {(0, 0), (0, 1), (1, 0)}
        assert ts == {(0, 2), (0, 3), (1, 1)}

    @pytest.mark.parametrize("ell", [3, 4, 5])
    def test_left_square_size_census(self, ell):
        # Left squares contain 2^{r-i-1} squares of side 2^i for 0 <= i < r.
        for sq in lower_triangle_partition(ell):
            if sq.r == 0:
                continue
            ls = left_squares(ell, sq)
            for i in range(sq.r):
                count = sum(1 for other in ls if other.r == i)
                assert count == 2 ** (sq.r - i - 1)

    @pytest.mark.parametrize("ell", [3, 4])
    def test_left_region_bounds(self, ell):
        for sq in lower_triangle_partition(ell):
            lo, hi = sq.left_region()
            for other in left_squares(ell, sq):
                assert other.row_start >= lo and other.col_end < hi

    @pytest.mark.parametrize("ell", [3, 4])
    def test_top_region_bounds(self, ell):
        for sq in lower_triangle_partition(ell):
            lo, hi = sq.top_region()
            for other in top_squares(ell, sq):
                assert other.row_start >= lo and other.col_end <= hi
