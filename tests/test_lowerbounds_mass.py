import numpy as np
import pytest

from repro.errors import ParameterError
from repro.lowerbounds import FiniteHashFamily, MassAccounting
from repro.lowerbounds.grid import grid_side
from repro.lsh import HyperplaneLSH
from repro.lowerbounds.sequences import geometric_sequences


def random_family(rng, n, m_funcs=20, alphabet=4):
    qv = rng.integers(0, alphabet, size=(m_funcs, n))
    dv = rng.integers(0, alphabet, size=(m_funcs, n))
    return FiniteHashFamily(np.full(m_funcs, 1.0 / m_funcs), qv, dv)


class TestFiniteHashFamily:
    def test_collision_matrix_values(self):
        qv = np.array([[0, 1], [0, 0]])
        dv = np.array([[0, 0], [1, 0]])
        fam = FiniteHashFamily(np.array([0.5, 0.5]), qv, dv)
        C = fam.collision_matrix()
        # (i=0, j=0): f0 collides (0==0), f1 doesn't (0 vs 1) -> 0.5
        assert C[0, 0] == 0.5
        # (i=1, j=1): f0: 1 vs 0 no; f1: 0 vs 0 yes -> 0.5
        assert C[1, 1] == 0.5

    def test_p1_p2(self):
        qv = np.array([[0, 0]])
        dv = np.array([[0, 0]])
        fam = FiniteHashFamily(np.array([1.0]), qv, dv)
        p1, p2 = fam.p1_p2()
        assert p1 == 1.0 and p2 == 1.0

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ParameterError):
            FiniteHashFamily(np.array([0.5, 0.6]), np.zeros((2, 3), int), np.zeros((2, 3), int))

    def test_shape_mismatch(self):
        with pytest.raises(ParameterError):
            FiniteHashFamily(np.array([1.0]), np.zeros((1, 3), int), np.zeros((1, 4), int))

    def test_from_hash_pairs(self, rng):
        fam_src = HyperplaneLSH(4)
        pairs = [fam_src.sample(rng) for _ in range(10)]
        X = rng.normal(size=(7, 4))
        fam = FiniteHashFamily.from_hash_pairs(pairs, X, X)
        assert fam.n == 7 and fam.n_functions == 10
        # Symmetric family on identical sequences: diagonal collides always.
        C = fam.collision_matrix()
        np.testing.assert_allclose(np.diag(C), 1.0)


class TestMassAccounting:
    def test_requires_grid_length(self, rng):
        fam = random_family(rng, 6)
        with pytest.raises(ParameterError):
            MassAccounting(fam)

    @pytest.mark.parametrize("seed", range(4))
    def test_decomposition_and_counting_facts(self, seed):
        rng = np.random.default_rng(seed)
        fam = random_family(rng, grid_side(3))
        report = MassAccounting(fam).verify()
        assert report["total_proper_mass"] <= 2 * report["n"] + 1e-9
        # ell = 3 gives 4 + 2 + 1 partition squares.
        assert report["squares"] == 7

    @pytest.mark.parametrize("seed", range(4))
    def test_random_family_within_gap_bound(self, seed):
        # Random families have P1 ~ P2, trivially within the bound.
        rng = np.random.default_rng(seed)
        fam = random_family(rng, grid_side(3))
        report = MassAccounting(fam).verify()
        assert report["gap_within_bound"]

    def test_masses_nonnegative(self, rng):
        fam = random_family(rng, grid_side(3))
        for record in MassAccounting(fam).masses():
            assert record.total >= 0
            assert record.shared >= 0
            assert record.partially_shared >= 0
            assert record.proper >= 0

    def test_perfect_family_saturates_p1(self):
        # One function, everything collides: P1 = P2 = 1, all inequalities hold.
        n = grid_side(2)
        fam = FiniteHashFamily(np.array([1.0]), np.zeros((1, n), int), np.zeros((1, n), int))
        report = MassAccounting(fam).verify()
        assert report["p1"] == 1.0 and report["p2"] == 1.0
        assert report["gap"] == 0.0
        assert not report["violations"]

    def test_hyperplane_family_on_hard_sequences(self, rng):
        # End-to-end: real LSH on a real Theorem-3 instance, certified.
        seqs = geometric_sequences(s=0.02, c=0.5, U=2.0, d=1).truncate_to_grid()
        fam_src = HyperplaneLSH(1)
        pairs = [fam_src.sample(rng) for _ in range(40)]
        fam = FiniteHashFamily.from_hash_pairs(pairs, seqs.Q, seqs.P)
        report = MassAccounting(fam).verify()
        assert report["gap_within_bound"]
