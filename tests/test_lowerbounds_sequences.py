import numpy as np
import pytest

from repro.errors import ConstructionError, ParameterError
from repro.lowerbounds import (
    geometric_sequences,
    prefix_tree_sequences,
    shifted_affine_sequences,
    verify_lemma4_hypothesis,
)


def ordering_holds(seqs, unsigned):
    ips = seqs.inner_products()
    n = seqs.n
    for i in range(n):
        for j in range(n):
            value = ips[i, j]
            if j >= i:
                if value < seqs.s - 1e-9:
                    return False
            else:
                check = abs(value) if unsigned else value
                if check > seqs.cs + 1e-9:
                    return False
    return True


class TestGeometricSequences:
    def test_one_dimensional(self):
        seqs = geometric_sequences(s=0.05, c=0.5, U=2.0, d=1)
        assert seqs.d == 1 and seqs.case == 1
        assert ordering_holds(seqs, unsigned=True)

    def test_inner_products_are_powers_of_c(self):
        seqs = geometric_sequences(s=0.05, c=0.5, U=2.0, d=1)
        ips = seqs.inner_products()
        # q_i . p_j = s c^{i-j}.
        for i in range(seqs.n):
            for j in range(seqs.n):
                assert abs(ips[i, j] - seqs.s * 0.5 ** (i - j)) < 1e-9

    def test_multidimensional(self):
        seqs = geometric_sequences(s=0.05, c=0.5, U=2.0, d=6)
        assert seqs.d == 6
        assert ordering_holds(seqs, unsigned=True)

    def test_length_grows_with_dimension(self):
        n1 = geometric_sequences(s=0.05, c=0.5, U=2.0, d=2).n
        n3 = geometric_sequences(s=0.05, c=0.5, U=2.0, d=6).n
        assert n3 == 3 * n1

    def test_length_grows_with_u(self):
        small = geometric_sequences(s=0.05, c=0.5, U=2.0, d=1).n
        large = geometric_sequences(s=0.05, c=0.5, U=64.0, d=1).n
        assert large > small

    def test_ball_constraints_verified(self):
        seqs = geometric_sequences(s=0.02, c=0.6, U=4.0, d=4)
        assert np.linalg.norm(seqs.P, axis=1).max() <= 1 + 1e-9
        assert np.linalg.norm(seqs.Q, axis=1).max() <= seqs.U + 1e-9

    def test_unsigned_safe(self):
        assert geometric_sequences(s=0.05, c=0.5, U=2.0, d=1).unsigned_safe

    def test_requires_s_below_cu(self):
        with pytest.raises(ParameterError):
            geometric_sequences(s=1.5, c=0.5, U=2.0, d=1)

    def test_odd_d_rejected(self):
        with pytest.raises(ParameterError):
            geometric_sequences(s=0.05, c=0.5, U=2.0, d=3)

    def test_large_s_with_large_d_rejected(self):
        with pytest.raises(ParameterError):
            geometric_sequences(s=0.4, c=0.5, U=1.0, d=32)


class TestShiftedAffineSequences:
    def test_two_dimensional(self):
        seqs = shifted_affine_sequences(s=0.05, c=0.5, U=2.0, d=2)
        assert seqs.case == 2 and not seqs.unsigned_safe
        assert ordering_holds(seqs, unsigned=False)

    def test_inner_products_affine(self):
        seqs = shifted_affine_sequences(s=0.05, c=0.5, U=2.0, d=2)
        ips = seqs.inner_products()
        # q_i . p_j = s (1-c)(j-i) + s within one block.
        for i in range(seqs.n):
            for j in range(seqs.n):
                expected = seqs.s * 0.5 * (j - i) + seqs.s
                assert abs(ips[i, j] - expected) < 1e-9

    def test_multiblock(self):
        seqs = shifted_affine_sequences(s=0.02, c=0.5, U=2.0, d=6)
        assert ordering_holds(seqs, unsigned=False)

    def test_longer_than_case1(self):
        # Theta(sqrt(U/s)) beats Theta(log(U/s)).
        s, c, U = 0.0005, 0.5, 2.0
        n_affine = shifted_affine_sequences(s=s, c=c, U=U, d=2).n
        n_geo = geometric_sequences(s=s, c=c, U=U, d=2).n
        assert n_affine > n_geo

    def test_negative_products_below_diagonal(self):
        seqs = shifted_affine_sequences(s=0.05, c=0.5, U=2.0, d=2)
        ips = seqs.inner_products()
        assert ips[seqs.n - 1, 0] < 0  # why it is signed-only

    def test_odd_d_rejected(self):
        with pytest.raises(ParameterError):
            shifted_affine_sequences(s=0.05, c=0.5, U=2.0, d=3)

    def test_s_must_be_below_u(self):
        with pytest.raises(ParameterError):
            shifted_affine_sequences(s=3.0, c=0.5, U=2.0, d=2)


class TestPrefixTreeSequences:
    def test_basic_construction(self):
        seqs = prefix_tree_sequences(s=0.02, c=0.5, U=2.0)
        assert seqs.case == 3 and seqs.unsigned_safe
        assert ordering_holds(seqs, unsigned=True)

    def test_explicit_bits(self):
        seqs = prefix_tree_sequences(s=0.05, c=0.5, U=1.0, n_bits=4)
        assert seqs.n == 15  # 2^4 - 1 after the shift
        assert ordering_holds(seqs, unsigned=True)

    def test_exponential_length_in_sqrt_u_over_s(self):
        # Halving s (at fixed U) increases n_bits ~ sqrt(U/8s).
        short = prefix_tree_sequences(s=0.05, c=0.5, U=4.0)
        long = prefix_tree_sequences(s=0.05, c=0.5, U=16.0)
        assert long.n > short.n

    def test_ball_constraints(self):
        seqs = prefix_tree_sequences(s=0.05, c=0.5, U=1.0, n_bits=3)
        assert np.linalg.norm(seqs.P, axis=1).max() <= 1 + 1e-9
        assert np.linalg.norm(seqs.Q, axis=1).max() <= seqs.U + 1e-9

    def test_too_small_ratio_rejected(self):
        with pytest.raises(ParameterError):
            prefix_tree_sequences(s=1.0, c=0.5, U=1.0)


class TestVerifier:
    def test_accepts_valid_instance(self):
        seqs = geometric_sequences(s=0.05, c=0.5, U=2.0, d=1)
        verify_lemma4_hypothesis(seqs.P, seqs.Q, seqs.s, seqs.cs, seqs.U, unsigned=True)

    def test_rejects_broken_ordering(self):
        seqs = geometric_sequences(s=0.05, c=0.5, U=2.0, d=1)
        P = seqs.P[::-1].copy()  # reversing breaks the triangle structure
        with pytest.raises(ConstructionError):
            verify_lemma4_hypothesis(P, seqs.Q, seqs.s, seqs.cs, seqs.U, unsigned=True)

    def test_rejects_escaped_ball(self):
        seqs = geometric_sequences(s=0.05, c=0.5, U=2.0, d=1)
        with pytest.raises(ConstructionError):
            verify_lemma4_hypothesis(seqs.P * 3.0, seqs.Q, seqs.s, seqs.cs, seqs.U)

    def test_truncate_to_grid(self):
        seqs = geometric_sequences(s=0.001, c=0.6, U=8.0, d=1)
        grid = seqs.truncate_to_grid()
        assert grid.n == (1 << int(np.log2(seqs.n + 1))) - 1
        assert grid.n <= seqs.n


class TestPrefixTreeFamilySources:
    def test_random_family_source_valid(self):
        seqs = prefix_tree_sequences(
            s=0.05, c=0.5, U=1.0, n_bits=3, family_source="random", seed=0
        )
        assert ordering_holds(seqs, unsigned=True)

    def test_random_source_reproducible(self):
        import numpy as np
        a = prefix_tree_sequences(
            s=0.05, c=0.5, U=1.0, n_bits=3, family_source="random", seed=1
        )
        b = prefix_tree_sequences(
            s=0.05, c=0.5, U=1.0, n_bits=3, family_source="random", seed=1
        )
        np.testing.assert_array_equal(a.P, b.P)

    def test_unknown_source_rejected(self):
        with pytest.raises(ParameterError):
            prefix_tree_sequences(
                s=0.05, c=0.5, U=1.0, n_bits=3, family_source="quantum"
            )
