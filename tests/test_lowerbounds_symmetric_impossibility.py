import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.lowerbounds import (
    audit_symmetric_chain,
    chain_length,
    great_circle_chain,
    symmetric_gap_bound,
    verify_chain,
)
from repro.lsh import DataDepALSH, HyperplaneLSH


class TestChainConstruction:
    def test_chain_length_formula(self):
        # arccos(cs)/arccos(s), rounded up.
        s, c = 0.9, 0.5
        expected = math.ceil(math.acos(0.45) / math.acos(0.9))
        assert chain_length(s, c) == expected

    def test_chain_length_explodes_as_s_to_one(self):
        assert chain_length(0.999, 0.5) > chain_length(0.9, 0.5) > chain_length(0.5, 0.5)

    def test_chain_links_and_endpoints(self):
        chain = great_circle_chain(0.9, 0.5)
        verify_chain(chain, 0.9, 0.5)

    def test_chain_vectors_unit_norm(self):
        chain = great_circle_chain(0.8, 0.6, d=5)
        np.testing.assert_allclose(np.linalg.norm(chain, axis=1), 1.0, atol=1e-12)

    def test_endpoint_exactly_cs(self):
        chain = great_circle_chain(0.9, 0.5)
        assert abs(float(chain[0] @ chain[-1]) - 0.45) < 1e-9

    def test_verify_rejects_broken_chain(self):
        chain = great_circle_chain(0.9, 0.5)
        with pytest.raises(ParameterError):
            verify_chain(chain[::2], 0.9, 0.5)  # doubling the step breaks links

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            chain_length(1.5, 0.5)
        with pytest.raises(ParameterError):
            great_circle_chain(0.9, 0.5, d=1)


class TestSymmetricGapBound:
    def test_bound_in_unit_interval(self):
        for s in (0.5, 0.9, 0.99):
            assert 0.0 <= symmetric_gap_bound(s, 0.5) < 1.0

    def test_bound_monotone_in_chain_length(self):
        # Larger k gives (k-1)/k closer to 1 — the ceiling itself grows,
        # but the *link inequality* P1 <= 1 - (1-P2)/k is what bites.
        assert symmetric_gap_bound(0.99, 0.5) >= symmetric_gap_bound(0.6, 0.5)


class TestChainAudits:
    def test_hyperplane_satisfies_triangle(self):
        chain = great_circle_chain(0.9, 0.5, d=4)
        audit = audit_symmetric_chain(HyperplaneLSH(4), chain, trials=400, seed=0)
        assert audit.satisfies_triangle

    def test_link_inequality_forces_p1_down(self):
        # Measured: hyperplane's per-link collision 1 - theta/pi; with k
        # links the endpoint separation caps achievable P1 at
        # 1 - (1 - P2)/k, and the measured link collisions obey it.
        chain = great_circle_chain(0.95, 0.3, d=4)
        audit = audit_symmetric_chain(HyperplaneLSH(4), chain, trials=600, seed=1)
        worst_link_p1 = 1.0 - float(audit.link_distances.max())
        assert worst_link_p1 <= audit.implied_p1_ceiling + 0.05  # sampling slack

    def test_exact_hyperplane_distances(self):
        # d(z_i, z_{i+1}) = theta/pi exactly for hyperplane LSH.
        chain = great_circle_chain(0.9, 0.5, d=3)
        theta = math.acos(float(chain[0] @ chain[1]))
        audit = audit_symmetric_chain(HyperplaneLSH(3), chain, trials=3000, seed=2)
        np.testing.assert_allclose(audit.link_distances, theta / math.pi, atol=0.03)

    def test_asymmetric_family_rejected(self):
        chain = great_circle_chain(0.9, 0.5, d=4)
        with pytest.raises(ParameterError):
            audit_symmetric_chain(DataDepALSH(4), chain, trials=10)

    def test_bad_trials(self):
        chain = great_circle_chain(0.9, 0.5)
        with pytest.raises(ParameterError):
            audit_symmetric_chain(HyperplaneLSH(2), chain, trials=0)
