"""Tests for the composed ALSH schemes: L2-ALSH, SIMPLE, DATA-DEP, symmetric."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.lsh import DataDepALSH, L2ALSH, SimpleALSH, SymmetricIPSHash
from repro.lsh.base import estimate_collision_probability
from repro.lsh.rho import collision_prob_hyperplane
from repro.lsh.symmetric import query_is_self_match


def planted_pair(rng, d, target):
    """A (data, query) pair of unit vectors with inner product ``target``."""
    q = rng.normal(size=d); q /= np.linalg.norm(q)
    r = rng.normal(size=d); r -= (r @ q) * q; r /= np.linalg.norm(r)
    p = target * q + np.sqrt(1 - target ** 2) * r
    return p, q


class TestSimpleALSH:
    def test_collision_follows_hyperplane_form(self, rng):
        fam = SimpleALSH(16)
        p, q = planted_pair(rng, 16, 0.7)
        p *= 0.9  # data strictly inside the ball
        est = estimate_collision_probability(fam, p, q, trials=3000, seed=0)
        assert abs(est - collision_prob_hyperplane(0.7 * 0.9)) < 0.05

    def test_monotone_in_inner_product(self, rng):
        fam = SimpleALSH(16)
        p_hi, q = planted_pair(rng, 16, 0.9)
        p_lo = rng.normal(size=16)
        p_lo -= (p_lo @ q) * q
        p_lo /= np.linalg.norm(p_lo) * 2
        hi = estimate_collision_probability(fam, p_hi * 0.99, q, trials=1500, seed=1)
        lo = estimate_collision_probability(fam, p_lo, q, trials=1500, seed=1)
        assert hi > lo


class TestDataDepALSH:
    def test_collision_scaled_by_query_radius(self, rng):
        fam = DataDepALSH(16, query_radius=2.0, sphere="hyperplane")
        p, q = planted_pair(rng, 16, 0.8)
        q *= 2.0  # query in the radius-2 ball
        # Embedded inner product is p.q / U = 0.8.
        est = estimate_collision_probability(fam, p * 0.99, q, trials=3000, seed=2)
        assert abs(est - collision_prob_hyperplane(0.8 * 0.99)) < 0.05

    def test_crosspolytope_variant_runs(self, rng):
        fam = DataDepALSH(8, sphere="crosspolytope")
        p, q = planted_pair(rng, 8, 0.9)
        est = estimate_collision_probability(fam, p * 0.9, q, trials=300, seed=3)
        assert 0.0 <= est <= 1.0

    def test_bad_sphere_name(self):
        with pytest.raises(ParameterError):
            DataDepALSH(8, sphere="cube")

    def test_is_asymmetric(self):
        assert not DataDepALSH(8).is_symmetric


class TestL2ALSH:
    def test_fit_constructor(self, rng):
        P = rng.normal(size=(30, 8))
        fam = L2ALSH.fit(P)
        assert fam.d == 8 and fam.scale > 0

    def test_high_ip_pairs_collide_more(self, rng):
        P = rng.normal(size=(30, 12))
        P /= np.linalg.norm(P, axis=1, keepdims=True)
        fam = L2ALSH.fit(P, w=2.5)
        p, q = planted_pair(rng, 12, 0.95)
        p_far, _ = planted_pair(rng, 12, 0.0)
        hi = estimate_collision_probability(fam, p, q, trials=1200, seed=4)
        lo = estimate_collision_probability(fam, -p, q, trials=1200, seed=4)
        assert hi > lo

    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            L2ALSH(d=0, scale=1.0)
        with pytest.raises(ParameterError):
            L2ALSH(d=4, scale=-1.0)
        with pytest.raises(ParameterError):
            L2ALSH(d=4, scale=1.0, w=0.0)


class TestSymmetricIPSHash:
    @pytest.fixture(scope="class")
    def family(self):
        return SymmetricIPSHash(4, eps=0.1)

    def test_is_symmetric(self, family):
        assert family.is_symmetric

    def test_distinct_vectors_collision_tracks_inner_product(self, family, rng):
        p = np.array([0.8, 0.0, 0.0, 0.0])
        near = np.array([0.79, 0.05, 0.0, 0.0])
        far = np.array([0.0, 0.0, 0.79, 0.05])
        hi = estimate_collision_probability(family, p, near, trials=1200, seed=5)
        lo = estimate_collision_probability(family, p, far, trials=1200, seed=5)
        assert hi > lo

    def test_identical_vectors_always_collide(self, family):
        x = np.array([0.3, 0.1, 0.0, 0.0])
        assert estimate_collision_probability(family, x, x, trials=60, seed=6) == 1.0

    def test_eps_property(self, family):
        assert family.eps == 0.1

    def test_bad_sphere(self):
        with pytest.raises(ParameterError):
            SymmetricIPSHash(4, sphere="torus")


class TestQueryIsSelfMatch:
    def test_detects_membership_above_threshold(self):
        P = np.array([[0.9, 0.0], [0.1, 0.2]])
        assert query_is_self_match(P, np.array([0.9, 0.0]), s=0.5)

    def test_below_threshold_not_a_match(self):
        P = np.array([[0.1, 0.2]])
        assert not query_is_self_match(P, np.array([0.1, 0.2]), s=0.5)

    def test_absent_query(self):
        P = np.array([[0.9, 0.0]])
        assert not query_is_self_match(P, np.array([0.0, 0.9]), s=0.5)
