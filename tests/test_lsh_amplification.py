import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.lsh import AndConstruction, HyperplaneLSH, amplify_gap
from repro.lsh.amplification import rho, standard_table_count
from repro.lsh.base import estimate_collision_probability
from repro.lsh.rho import collision_prob_hyperplane


class TestAndConstruction:
    def test_hash_is_tuple_of_k(self, rng):
        amp = AndConstruction(HyperplaneLSH(4), k=3)
        pair = amp.sample(rng)
        value = pair.hash_data(rng.normal(size=4))
        assert isinstance(value, tuple) and len(value) == 3

    def test_collision_probability_is_power(self, rng):
        fam = HyperplaneLSH(16)
        amp = AndConstruction(fam, k=2)
        x = rng.normal(size=16); x /= np.linalg.norm(x)
        y = rng.normal(size=16); y /= np.linalg.norm(y)
        p = collision_prob_hyperplane(float(x @ y))
        est = estimate_collision_probability(amp, x, y, trials=3000, seed=0)
        assert abs(est - p ** 2) < 0.05

    def test_symmetry_propagates(self):
        assert AndConstruction(HyperplaneLSH(4), k=2).is_symmetric

    def test_bad_k(self):
        with pytest.raises(ParameterError):
            AndConstruction(HyperplaneLSH(4), k=0)


class TestGapAlgebra:
    def test_amplify_gap(self):
        assert amplify_gap(0.9, 0.5, 3) == (0.9 ** 3, 0.5 ** 3)

    def test_amplify_rejects_disorder(self):
        with pytest.raises(ParameterError):
            amplify_gap(0.4, 0.5, 2)

    def test_rho_invariant_under_and(self):
        p1, p2 = 0.8, 0.3
        for k in (1, 2, 5):
            a1, a2 = amplify_gap(p1, p2, k)
            assert abs(rho(a1, a2) - rho(p1, p2)) < 1e-12

    def test_rho_values(self):
        assert abs(rho(0.25, 0.5) - 2.0) < 1e-12
        assert rho(0.5, 0.25) == 0.5

    def test_rho_domain(self):
        with pytest.raises(ParameterError):
            rho(1.0, 0.5)
        with pytest.raises(ParameterError):
            rho(0.5, 0.0)

    def test_standard_table_count(self):
        assert standard_table_count(1.0, 10) >= 1
        assert standard_table_count(0.01, 1000) > standard_table_count(0.5, 1000)

    def test_table_count_domain(self):
        with pytest.raises(ParameterError):
            standard_table_count(0.0, 10)
        with pytest.raises(ParameterError):
            standard_table_count(0.5, 0)
