import numpy as np
import pytest

from repro.lsh import HyperplaneLSH
from repro.lsh.base import (
    HashFunctionPair,
    empirical_gap,
    estimate_collision_probability,
)
from repro.lsh.rho import collision_prob_hyperplane


class TestHashFunctionPair:
    def test_collides(self):
        pair = HashFunctionPair(hash_data=lambda x: 1, hash_query=lambda x: 1)
        assert pair.collides(np.zeros(2), np.zeros(2))

    def test_no_collision(self):
        pair = HashFunctionPair(hash_data=lambda x: 1, hash_query=lambda x: 2)
        assert not pair.collides(np.zeros(2), np.zeros(2))


class TestSymmetricWiring:
    def test_symmetric_family_uses_one_function(self, rng):
        fam = HyperplaneLSH(4)
        pair = fam.sample(rng)
        x = rng.normal(size=4)
        assert pair.hash_data(x) == pair.hash_query(x)
        assert fam.is_symmetric


class TestEstimateCollisionProbability:
    def test_identical_vectors_always_collide(self, rng):
        fam = HyperplaneLSH(8)
        x = rng.normal(size=8)
        assert estimate_collision_probability(fam, x, x, trials=50, seed=0) == 1.0

    def test_opposite_vectors_never_collide(self, rng):
        fam = HyperplaneLSH(8)
        x = rng.normal(size=8)
        assert estimate_collision_probability(fam, x, -x, trials=50, seed=0) == 0.0

    def test_matches_closed_form(self, rng):
        fam = HyperplaneLSH(16)
        x = rng.normal(size=16); x /= np.linalg.norm(x)
        y = rng.normal(size=16); y /= np.linalg.norm(y)
        est = estimate_collision_probability(fam, x, y, trials=3000, seed=1)
        assert abs(est - collision_prob_hyperplane(float(x @ y))) < 0.05

    def test_bad_trials(self):
        with pytest.raises(ValueError):
            estimate_collision_probability(HyperplaneLSH(2), [1, 0], [0, 1], trials=0)


class TestEmpiricalGap:
    def test_gap_orders_pairs_correctly(self, rng):
        fam = HyperplaneLSH(8)
        # Data/queries designed so above-pairs are nearly parallel and
        # below-pairs nearly orthogonal.
        base = rng.normal(size=8); base /= np.linalg.norm(base)
        ortho = rng.normal(size=8)
        ortho -= (ortho @ base) * base
        ortho /= np.linalg.norm(ortho)
        data = np.stack([base, ortho])
        queries = np.stack([base, base])
        p1, p2 = empirical_gap(
            fam, data, queries,
            above_pairs=[(0, 0)], below_pairs=[(1, 1)],
            trials=400, seed=2,
        )
        assert p1 > p2
        assert p1 > 0.95  # identical vectors collide always under SimHash
