import numpy as np
import pytest

from repro.datasets import planted_mips
from repro.errors import ParameterError
from repro.lsh import BatchSignIndex


@pytest.fixture(scope="module")
def instance():
    return planted_mips(600, 16, 32, s=0.85, c=0.4, seed=0)


class TestBatchSignIndex:
    def test_recall_on_planted(self, instance):
        idx = BatchSignIndex.for_datadep(
            32, n_tables=16, bits_per_table=10, seed=1
        ).build(instance.P)
        hits = 0
        for qi in range(16):
            found = idx.query(instance.Q[qi], threshold=instance.cs)
            if found is not None:
                assert float(instance.P[found] @ instance.Q[qi]) >= instance.cs
                hits += 1
        assert hits >= 13

    def test_candidates_match_single_and_batch(self, instance):
        idx = BatchSignIndex.for_datadep(
            32, n_tables=6, bits_per_table=8, seed=2
        ).build(instance.P)
        batch = idx.candidates_batch(instance.Q[:4])
        for qi in range(4):
            single = idx.candidates(instance.Q[qi])
            np.testing.assert_array_equal(np.sort(single), np.sort(batch[qi]))

    def test_candidates_deduplicated_and_valid(self, instance):
        idx = BatchSignIndex.for_datadep(
            32, n_tables=10, bits_per_table=6, seed=3
        ).build(instance.P)
        cands = idx.candidates(instance.Q[0])
        assert len(np.unique(cands)) == cands.size
        assert ((cands >= 0) & (cands < instance.n)).all()

    def test_more_bits_fewer_candidates(self, instance):
        coarse = BatchSignIndex.for_datadep(
            32, n_tables=8, bits_per_table=4, seed=4
        ).build(instance.P)
        fine = BatchSignIndex.for_datadep(
            32, n_tables=8, bits_per_table=14, seed=4
        ).build(instance.P)
        q = instance.Q[0]
        assert fine.candidates(q).size <= coarse.candidates(q).size

    def test_query_before_build_raises(self):
        idx = BatchSignIndex.for_hyperplane(8, n_tables=2, bits_per_table=4)
        with pytest.raises(ParameterError):
            idx.candidates(np.zeros(8))
        assert not idx.is_built

    def test_hyperplane_variant_identical_vector_always_candidate(self, rng):
        P = rng.normal(size=(100, 8))
        idx = BatchSignIndex.for_hyperplane(
            8, n_tables=4, bits_per_table=8, seed=5
        ).build(P)
        # A vector always collides with itself under sign projections.
        assert 17 in idx.candidates(P[17]).tolist()

    def test_simple_lsh_variant(self, rng):
        P = rng.normal(size=(100, 8))
        P *= 0.9 / np.linalg.norm(P, axis=1, keepdims=True)
        idx = BatchSignIndex.for_simple_lsh(
            8, n_tables=8, bits_per_table=6, seed=6
        ).build(P)
        q = P[3] / np.linalg.norm(P[3])
        found = idx.query(q, threshold=0.5)
        assert found is not None

    def test_symmetric_variant(self, rng):
        P = rng.normal(size=(80, 6))
        P *= 0.8 / np.linalg.norm(P, axis=1, keepdims=True)
        idx = BatchSignIndex.for_symmetric(
            6, eps=0.1, n_tables=10, bits_per_table=5, seed=7
        ).build(P)
        q = P[11] * 0.99
        found = idx.query(q, threshold=0.4)
        assert found is not None
        assert float(P[found] @ q) >= 0.4

    def test_unsigned_query(self, instance):
        idx = BatchSignIndex.for_datadep(
            32, n_tables=12, bits_per_table=8, seed=8
        ).build(instance.P)
        found = idx.query(-instance.Q[0], threshold=instance.cs, signed=False)
        if found is not None:
            assert abs(float(instance.P[found] @ instance.Q[0])) >= instance.cs

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            BatchSignIndex(dim=0)
        with pytest.raises(ParameterError):
            BatchSignIndex(dim=4, n_tables=0)
        with pytest.raises(ParameterError):
            BatchSignIndex(dim=4, bits_per_table=63)

    def test_wrong_query_dimension(self, instance):
        idx = BatchSignIndex.for_hyperplane(
            32, n_tables=2, bits_per_table=4, seed=9
        ).build(instance.P)
        with pytest.raises(ParameterError):
            idx.candidates(np.zeros(7))
