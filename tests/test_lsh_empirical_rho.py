import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.lsh import SimpleALSH, estimate_rho
from repro.lsh.empirical_rho import RhoEstimate, empirical_rho_curve, planted_pair_at
from repro.lsh.hyperplane import HyperplaneLSH
from repro.lsh.rho import rho_simple_lsh


class TestPlantedPair:
    def test_exact_similarity(self, rng):
        for target in (-0.5, 0.0, 0.3, 0.9):
            p, q = planted_pair_at(target, 16, rng)
            assert abs(float(p @ q) - target) < 1e-12

    def test_norms(self, rng):
        p, q = planted_pair_at(0.4, 16, rng, data_norm=0.7)
        assert abs(np.linalg.norm(q) - 1.0) < 1e-12
        assert abs(np.linalg.norm(p) - 0.7) < 1e-12

    def test_infeasible_similarity(self, rng):
        with pytest.raises(ParameterError):
            planted_pair_at(0.9, 16, rng, data_norm=0.5)

    def test_dimension_floor(self, rng):
        with pytest.raises(ParameterError):
            planted_pair_at(0.5, 1, rng)


class TestRhoEstimate:
    def test_rho_value(self):
        est = RhoEstimate(p1=0.25, p2=0.5, trials=100)
        assert abs(est.rho - 2.0) < 1e-12

    def test_nan_on_degenerate(self):
        assert math.isnan(RhoEstimate(p1=1.0, p2=0.5, trials=10).rho)

    def test_standard_error_shrinks_with_trials(self):
        small = RhoEstimate(p1=0.8, p2=0.4, trials=100).standard_error
        large = RhoEstimate(p1=0.8, p2=0.4, trials=10000).standard_error
        assert large < small


class TestEstimateRho:
    def test_hyperplane_matches_closed_form(self):
        # For unit vectors the hyperplane family's rho at (s, cs) equals
        # the SIMPLE-LSH formula.
        s, c = 0.7, 0.5
        est = estimate_rho(HyperplaneLSH(32), s, c, d=32, trials=3000, seed=0)
        exact = rho_simple_lsh(s, c)
        assert abs(est.rho - exact) <= 3 * est.standard_error + 0.02

    def test_simple_alsh_matches_closed_form(self):
        s, c = 0.6, 0.5
        est = estimate_rho(
            SimpleALSH(32), s, c, d=32, trials=3000, data_norm=0.999, seed=1
        )
        exact = rho_simple_lsh(s * 0.999, c)
        assert abs(est.rho - exact) <= 3 * est.standard_error + 0.03

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            estimate_rho(HyperplaneLSH(8), 1.5, 0.5)
        with pytest.raises(ParameterError):
            estimate_rho(HyperplaneLSH(8), 0.5, 0.5, trials=0)


class TestCurve:
    def test_curve_shape_and_monotonicity(self):
        curve = empirical_rho_curve(
            lambda d: HyperplaneLSH(d), [0.3, 0.6, 0.9], c=0.5,
            d=24, trials=1500, seed=2,
        )
        assert len(curve) == 3
        rhos = [est.rho for _, est in curve]
        # rho decreases in s for hyperplane-type schemes.
        assert rhos[0] > rhos[-1]
