import numpy as np
import pytest

from repro.errors import ParameterError
from repro.lsh import CrossPolytopeLSH, HyperplaneLSH
from repro.lsh.base import estimate_collision_probability
from repro.lsh.rho import collision_prob_hyperplane


class TestHyperplane:
    def test_hash_is_boolean(self, rng):
        h = HyperplaneLSH(8).sample_function(rng)
        assert isinstance(h(rng.normal(size=8)), bool)

    def test_scale_invariant(self, rng):
        h = HyperplaneLSH(8).sample_function(rng)
        x = rng.normal(size=8)
        assert h(x) == h(3.0 * x)

    def test_collision_monotone_in_angle(self, rng):
        fam = HyperplaneLSH(16)
        base = rng.normal(size=16); base /= np.linalg.norm(base)
        probs = []
        for target in (0.9, 0.5, 0.0):
            other = rng.normal(size=16)
            other -= (other @ base) * base
            other /= np.linalg.norm(other)
            v = target * base + np.sqrt(1 - target ** 2) * other
            probs.append(
                estimate_collision_probability(fam, base, v, trials=2000, seed=1)
            )
        assert probs[0] > probs[1] > probs[2]

    def test_closed_form_accuracy(self, rng):
        fam = HyperplaneLSH(32)
        for target in (0.8, 0.2, -0.5):
            x = rng.normal(size=32); x /= np.linalg.norm(x)
            r = rng.normal(size=32); r -= (r @ x) * x; r /= np.linalg.norm(r)
            y = target * x + np.sqrt(1 - target ** 2) * r
            est = estimate_collision_probability(fam, x, y, trials=3000, seed=2)
            assert abs(est - collision_prob_hyperplane(target)) < 0.05

    def test_bad_dimension(self):
        with pytest.raises(ParameterError):
            HyperplaneLSH(0)


class TestCrossPolytope:
    def test_hash_range(self, rng):
        fam = CrossPolytopeLSH(6)
        h = fam.sample_function(rng)
        for _ in range(20):
            value = h(rng.normal(size=6))
            assert 0 <= value < 12

    def test_identical_vectors_collide(self, rng):
        fam = CrossPolytopeLSH(8)
        x = rng.normal(size=8)
        assert estimate_collision_probability(fam, x, x, trials=50, seed=0) == 1.0

    def test_antipodal_never_collide(self, rng):
        fam = CrossPolytopeLSH(8)
        x = rng.normal(size=8)
        assert estimate_collision_probability(fam, x, -x, trials=50, seed=0) == 0.0

    def test_closer_pairs_collide_more(self, rng):
        fam = CrossPolytopeLSH(8)
        x = rng.normal(size=8); x /= np.linalg.norm(x)
        r = rng.normal(size=8); r -= (r @ x) * x; r /= np.linalg.norm(r)
        near = 0.95 * x + np.sqrt(1 - 0.95 ** 2) * r
        far = 0.2 * x + np.sqrt(1 - 0.2 ** 2) * r
        p_near = estimate_collision_probability(fam, x, near, trials=800, seed=3)
        p_far = estimate_collision_probability(fam, x, far, trials=800, seed=3)
        assert p_near > p_far

    def test_more_selective_than_hyperplane(self, rng):
        # 2d hash values vs 2: random pairs collide much less often.
        cp = CrossPolytopeLSH(8)
        hp = HyperplaneLSH(8)
        x = rng.normal(size=8); y = rng.normal(size=8)
        p_cp = estimate_collision_probability(cp, x, y, trials=600, seed=4)
        p_hp = estimate_collision_probability(hp, x, y, trials=600, seed=4)
        assert p_cp < p_hp

    def test_rotation_is_orthogonal(self, rng):
        fam = CrossPolytopeLSH(5)
        # Sampling uses QR; the function must be well-defined on any input.
        h = fam.sample_function(rng)
        assert h(np.ones(5)) == h(np.ones(5))

    def test_bad_dimension(self):
        with pytest.raises(ParameterError):
            CrossPolytopeLSH(0)
