import numpy as np
import pytest

from repro.datasets import planted_mips
from repro.errors import ParameterError
from repro.lsh import DataDepALSH, HyperplaneLSH, LSHIndex


@pytest.fixture(scope="module")
def instance():
    return planted_mips(250, 12, 24, s=0.85, c=0.4, seed=0)


@pytest.fixture(scope="module")
def index(instance):
    fam = DataDepALSH(24, sphere="hyperplane")
    return LSHIndex(fam, n_tables=14, hashes_per_table=6, seed=1).build(instance.P)


class TestBuildAndQuery:
    def test_build_required_before_query(self):
        idx = LSHIndex(HyperplaneLSH(4), seed=0)
        with pytest.raises(ParameterError):
            idx.candidates(np.zeros(4))
        assert not idx.is_built

    def test_candidates_are_valid_indices(self, index, instance):
        cands = index.candidates(instance.Q[0])
        assert ((cands >= 0) & (cands < instance.n)).all()
        assert len(set(cands.tolist())) == cands.size

    def test_recall_on_planted_instance(self, index, instance):
        hits = 0
        for qi in range(12):
            found = index.query(instance.Q[qi], threshold=instance.cs)
            if found is not None:
                value = float(instance.P[found] @ instance.Q[qi])
                assert value >= instance.cs
                hits += 1
        assert hits >= 10  # high recall at these index parameters

    def test_candidates_subquadratic(self, index, instance):
        # Filtering must inspect far fewer pairs than brute force would.
        assert index.stats.candidates_per_query < instance.n / 2

    def test_query_returns_none_for_impossible_threshold(self, index, instance):
        assert index.query(instance.Q[0], threshold=10.0) is None

    def test_query_all_above(self, index, instance):
        hits = index.query_all_above(instance.Q[0], threshold=instance.cs)
        for h in hits:
            assert abs(float(instance.P[h] @ instance.Q[0])) >= instance.cs

    def test_unsigned_query(self, index, instance):
        found = index.query(-instance.Q[0], threshold=instance.cs, signed=False)
        if found is not None:
            assert abs(float(instance.P[found] @ -instance.Q[0])) >= instance.cs


class TestStats:
    def test_stats_accumulate(self, instance):
        fam = DataDepALSH(24, sphere="hyperplane")
        idx = LSHIndex(fam, n_tables=4, hashes_per_table=4, seed=2).build(instance.P)
        idx.candidates(instance.Q[0])
        idx.candidates(instance.Q[1])
        assert idx.stats.queries == 2
        assert idx.stats.candidates >= idx.stats.unique_candidates

    def test_n_property(self, index, instance):
        assert index.n == instance.n


class TestValidation:
    def test_bad_table_count(self):
        with pytest.raises(ParameterError):
            LSHIndex(HyperplaneLSH(4), n_tables=0)

    def test_bad_hash_count(self):
        with pytest.raises(ParameterError):
            LSHIndex(HyperplaneLSH(4), hashes_per_table=0)

    def test_more_tables_more_candidates(self, instance):
        fam = DataDepALSH(24, sphere="hyperplane")
        small = LSHIndex(fam, n_tables=2, hashes_per_table=6, seed=3).build(instance.P)
        large = LSHIndex(fam, n_tables=20, hashes_per_table=6, seed=3).build(instance.P)
        q = instance.Q[0]
        assert large.candidates(q).size >= small.candidates(q).size
