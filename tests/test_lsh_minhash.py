import numpy as np
import pytest

from repro.errors import DomainError, ParameterError
from repro.lsh import AsymmetricMinHash, MinHash
from repro.lsh.base import estimate_collision_probability
from repro.lsh.minhash import EMPTY_SET


def make_set(universe, members):
    x = np.zeros(universe, dtype=np.int64)
    x[list(members)] = 1
    return x


class TestMinHash:
    def test_collision_probability_is_jaccard(self, rng):
        u = 50
        a = make_set(u, range(0, 20))
        b = make_set(u, range(10, 30))
        jaccard = 10 / 30
        est = estimate_collision_probability(MinHash(u), a, b, trials=3000, seed=0)
        assert abs(est - jaccard) < 0.04

    def test_identical_sets_always_collide(self):
        u = 30
        a = make_set(u, [1, 5, 9])
        assert estimate_collision_probability(MinHash(u), a, a, trials=50, seed=1) == 1.0

    def test_disjoint_sets_never_collide(self):
        u = 30
        a = make_set(u, range(10))
        b = make_set(u, range(15, 25))
        assert estimate_collision_probability(MinHash(u), a, b, trials=100, seed=2) == 0.0

    def test_empty_sets_collide(self, rng):
        u = 10
        h = MinHash(u).sample_function(rng)
        assert h(np.zeros(u, dtype=int)) == EMPTY_SET

    def test_hash_value_is_member(self, rng):
        u = 20
        members = {3, 7, 11}
        h = MinHash(u).sample_function(rng)
        assert h(make_set(u, members)) in members

    def test_non_binary_rejected(self, rng):
        h = MinHash(5).sample_function(rng)
        with pytest.raises(DomainError):
            h(np.array([0, 2, 0, 0, 0]))

    def test_bad_universe(self):
        with pytest.raises(ParameterError):
            MinHash(0)


class TestAsymmetricMinHash:
    def test_closed_form(self):
        # a / (M + |q| - a)
        assert AsymmetricMinHash.collision_probability(5, 10, 15) == 5 / 20
        assert AsymmetricMinHash.collision_probability(0, 10, 15) == 0.0

    def test_estimate_matches_closed_form(self):
        u, M = 40, 12
        x = make_set(u, range(10))
        q = make_set(u, range(5, 13))
        a = 5
        fam = AsymmetricMinHash(u, M)
        exact = AsymmetricMinHash.collision_probability(a, 8, M)
        est = estimate_collision_probability(fam, x, q, trials=4000, seed=3)
        assert abs(est - exact) < 0.04

    def test_padding_lowers_collision_of_small_sets(self):
        # Plain MinHash collides identical small sets w.p. 1; MH-ALSH's
        # padding makes the probability depend on the weight instead.
        u, M = 30, 10
        x = make_set(u, [2, 4])
        fam = AsymmetricMinHash(u, M)
        est = estimate_collision_probability(fam, x, x, trials=3000, seed=4)
        exact = AsymmetricMinHash.collision_probability(2, 2, M)
        assert abs(est - exact) < 0.04
        assert est < 0.5

    def test_monotone_in_inner_product(self):
        u, M = 40, 12
        q = make_set(u, range(0, 10))
        fam = AsymmetricMinHash(u, M)
        big = make_set(u, range(0, 10))       # a = 10
        small = make_set(u, range(8, 18))     # a = 2
        p_big = estimate_collision_probability(fam, big, q, trials=2000, seed=5)
        p_small = estimate_collision_probability(fam, small, q, trials=2000, seed=5)
        assert p_big > p_small

    def test_overweight_data_rejected(self, rng):
        fam = AsymmetricMinHash(20, 5)
        pair = fam.sample(rng)
        with pytest.raises(DomainError):
            pair.hash_data(make_set(20, range(10)))

    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            AsymmetricMinHash(10, 0)
        with pytest.raises(ParameterError):
            AsymmetricMinHash(10, 11)
        with pytest.raises(ParameterError):
            AsymmetricMinHash.collision_probability(-1, 5, 10)
