import math

import numpy as np
import pytest

from repro.datasets import planted_mips
from repro.errors import ParameterError
from repro.lsh import BatchSignIndex, plan, plan_datadep
from repro.lsh.rho import collision_prob_hyperplane


class TestPlan:
    def test_k_controls_false_candidates(self):
        config = plan(n=10000, p1=0.9, p2=0.5, delta=0.1)
        # n * P2^k <= 1 by the choice of k.
        assert 10000 * config.p2 ** config.k <= 1.0 + 1e-9

    def test_success_probability_meets_delta(self):
        config = plan(n=10000, p1=0.9, p2=0.5, delta=0.1)
        assert config.success_probability >= 0.9 - 1e-9

    def test_rho_matches_definition(self):
        config = plan(n=1000, p1=0.8, p2=0.4, delta=0.2)
        assert abs(config.rho - math.log(0.8) / math.log(0.4)) < 1e-12

    def test_tables_scale_like_n_to_rho(self):
        small = plan(n=10 ** 3, p1=0.9, p2=0.5)
        large = plan(n=10 ** 6, p1=0.9, p2=0.5)
        ratio = large.n_tables / small.n_tables
        predicted = (10 ** 6 / 10 ** 3) ** small.rho
        assert 0.2 * predicted <= ratio <= 5 * predicted

    def test_expected_false_candidates_bounded(self):
        config = plan(n=10 ** 4, p1=0.9, p2=0.5)
        assert config.expected_false_candidates <= config.n_tables + 1e-9

    def test_no_gap_rejected(self):
        with pytest.raises(ParameterError):
            plan(n=100, p1=0.5, p2=0.5)
        with pytest.raises(ParameterError):
            plan(n=100, p1=0.4, p2=0.5)

    def test_guards(self):
        with pytest.raises(ParameterError, match="max_k"):
            plan(n=10 ** 9, p1=0.9999, p2=0.999, max_k=10)
        with pytest.raises(ParameterError, match="max_tables"):
            plan(n=10 ** 6, p1=0.51, p2=0.5, max_tables=4)


class TestPlanDataDep:
    def test_uses_hyperplane_form(self):
        config = plan_datadep(n=1000, s=0.8, c=0.5)
        assert abs(config.p1 - collision_prob_hyperplane(0.8)) < 1e-12
        assert abs(config.p2 - collision_prob_hyperplane(0.4)) < 1e-12

    def test_query_radius_scales_similarities(self):
        a = plan_datadep(n=1000, s=0.8, c=0.5, query_radius=1.0)
        b = plan_datadep(n=1000, s=1.6, c=0.5, query_radius=2.0)
        assert a.k == b.k and a.n_tables == b.n_tables

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            plan_datadep(n=100, s=2.0, c=0.5)       # s/U > 1
        with pytest.raises(ParameterError):
            plan_datadep(n=100, s=0.5, c=1.5)

    def test_planned_index_achieves_recall(self):
        # End-to-end: build the planned index and check the recall target.
        inst = planted_mips(800, 24, 32, s=0.85, c=0.4, seed=0)
        config = plan_datadep(n=inst.n, s=inst.s, c=0.4, delta=0.2)
        idx = BatchSignIndex.for_datadep(
            32, n_tables=config.n_tables, bits_per_table=min(config.k, 62), seed=1
        ).build(inst.P)
        hits = 0
        for qi in range(24):
            cand = idx.candidates(inst.Q[qi])
            if cand.size and (inst.P[cand] @ inst.Q[qi]).max() >= inst.cs:
                hits += 1
        assert hits / 24 >= 1.0 - 0.2 - 0.15  # delta plus sampling slack
