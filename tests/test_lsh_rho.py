import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.lsh.rho import (
    collision_prob_e2lsh,
    collision_prob_hyperplane,
    collision_prob_mh_alsh,
    figure2_series,
    rho_datadep,
    rho_l2alsh,
    rho_l2alsh_tuned,
    rho_mh_alsh,
    rho_simple_lsh,
    rho_sphere_optimal,
)


class TestCollisionForms:
    def test_hyperplane_extremes(self):
        assert collision_prob_hyperplane(1.0) == 1.0
        assert collision_prob_hyperplane(-1.0) == 0.0
        assert abs(collision_prob_hyperplane(0.0) - 0.5) < 1e-12

    def test_hyperplane_domain(self):
        with pytest.raises(ParameterError):
            collision_prob_hyperplane(1.5)

    def test_mh_alsh_extremes(self):
        assert collision_prob_mh_alsh(0.0) == 0.0
        assert collision_prob_mh_alsh(1.0) == 1.0

    def test_e2lsh_monotone_decreasing(self):
        probs = [collision_prob_e2lsh(r, w=2.0) for r in (0.1, 0.5, 1.0, 3.0)]
        assert all(a > b for a, b in zip(probs, probs[1:]))

    def test_e2lsh_at_zero(self):
        assert collision_prob_e2lsh(0.0, w=1.0) == 1.0

    def test_e2lsh_domain(self):
        with pytest.raises(ParameterError):
            collision_prob_e2lsh(1.0, w=0.0)


class TestRhoFormulas:
    def test_datadep_equation3(self):
        # rho = (1 - s/U) / (1 + (1-2c)s/U)
        assert abs(rho_datadep(0.5, 0.5) - (0.5 / 1.0)) < 1e-12
        assert abs(rho_datadep(0.8, 0.25, query_radius=2.0)
                   - (1 - 0.4) / (1 + 0.5 * 0.4)) < 1e-12

    def test_datadep_approaches_zero_at_high_s(self):
        assert rho_datadep(0.99, 0.5) < 0.02

    def test_all_rhos_in_unit_interval(self):
        for s in (0.1, 0.5, 0.9):
            for c in (0.2, 0.5, 0.8):
                for fn in (rho_datadep, rho_simple_lsh, rho_mh_alsh):
                    assert 0.0 < fn(s, c) <= 1.0 + 1e-9

    def test_paper_claim_datadep_beats_simp(self):
        # "our bound is always stronger than the one from [39]".
        for s in np.linspace(0.05, 0.95, 19):
            for c in (0.2, 0.5, 0.8):
                assert rho_datadep(s, c) <= rho_simple_lsh(s, c) + 1e-9

    def test_paper_claim_sometimes_beats_mh_alsh(self):
        # "sometimes stronger than [46] despite it being tailored for
        # binary vectors" (e.g. s >= 1/3-ish and moderate c).
        wins = sum(
            rho_datadep(s, 0.83) < rho_mh_alsh(s, 0.83)
            for s in np.linspace(0.35, 0.95, 13)
        )
        losses = sum(
            rho_datadep(s, 0.2) > rho_mh_alsh(s, 0.2)
            for s in np.linspace(0.05, 0.3, 6)
        )
        assert wins > 0 and losses > 0

    def test_rho_decreasing_in_s_for_datadep(self):
        values = [rho_datadep(s, 0.5) for s in (0.1, 0.4, 0.7, 0.9)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_l2alsh_worse_than_datadep(self):
        # The original ALSH is dominated at the defaults.
        for s in (0.3, 0.6, 0.9):
            assert rho_l2alsh(s, 0.5) > rho_datadep(s, 0.5)

    def test_l2alsh_tuned_no_worse_than_defaults(self):
        for s in (0.3, 0.6):
            assert rho_l2alsh_tuned(s, 0.5) <= rho_l2alsh(s, 0.5) + 1e-12

    def test_sphere_optimal(self):
        assert abs(rho_sphere_optimal(1.0, 1.0) - 1.0) < 1e-12
        assert rho_sphere_optimal(1.0, 2.0) == 1.0 / 7.0
        with pytest.raises(ParameterError):
            rho_sphere_optimal(1.0, 0.5)

    def test_domain_checks(self):
        with pytest.raises(ParameterError):
            rho_datadep(0.0, 0.5)
        with pytest.raises(ParameterError):
            rho_simple_lsh(0.5, 1.0)
        with pytest.raises(ParameterError):
            rho_mh_alsh(1.5, 0.5)


class TestFigure2Series:
    def test_structure(self):
        series = figure2_series(0.5, [0.2, 0.5, 0.8])
        assert set(series) == {"s", "DATA-DEP", "SIMP", "MH-ALSH"}
        assert len(series["DATA-DEP"]) == 3

    def test_datadep_lowest_at_high_s(self):
        series = figure2_series(0.5, [0.9])
        assert series["DATA-DEP"][0] <= series["SIMP"][0]
        assert series["DATA-DEP"][0] <= series["MH-ALSH"][0]
