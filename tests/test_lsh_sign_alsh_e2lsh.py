import numpy as np
import pytest

from repro.errors import DomainError, ParameterError
from repro.lsh import E2LSH, SignALSH, rho_sign_alsh
from repro.lsh.base import estimate_collision_probability
from repro.lsh.rho import collision_prob_e2lsh, rho_datadep, rho_simple_lsh
from repro.lsh.sign_alsh import SignALSHTransform


class TestSignALSHTransform:
    def test_inner_product_exactness(self, rng):
        # P(x) . Q(q) = scale * x.q / |q| exactly (completion coords hit 0).
        t = SignALSHTransform(m=3)
        x = rng.normal(size=6); x *= 0.7 / np.linalg.norm(x)
        q = rng.normal(size=6)
        lhs = t.embed_data(x, scale=1.0) @ t.embed_query(q)
        assert abs(lhs - x @ q / np.linalg.norm(q)) < 1e-12

    def test_output_dimension(self):
        assert SignALSHTransform(m=2).output_dimension(5) == 7

    def test_fit_scale(self, rng):
        t = SignALSHTransform(max_norm_target=0.75)
        P = rng.normal(size=(10, 4))
        scale = t.fit_scale(P)
        assert abs(np.linalg.norm(P * scale, axis=1).max() - 0.75) < 1e-12

    def test_data_norm_nearly_constant(self):
        # The design goal: |P(x)| varies little with |x|.
        t = SignALSHTransform(m=3)
        norms = []
        for length in (0.1, 0.4, 0.75):
            x = np.zeros(4); x[0] = length
            norms.append(np.linalg.norm(t.embed_data(x, scale=1.0)))
        assert max(norms) / min(norms) < 1.4

    def test_domain_checks(self):
        t = SignALSHTransform()
        with pytest.raises(DomainError):
            t.embed_data(np.array([2.0, 0.0]), scale=1.0)
        with pytest.raises(DomainError):
            t.embed_query(np.zeros(3))

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            SignALSHTransform(m=0)
        with pytest.raises(ParameterError):
            SignALSHTransform(max_norm_target=1.5)


class TestSignALSHFamily:
    def test_monotone_in_inner_product(self, rng):
        P = rng.normal(size=(20, 10))
        P /= np.linalg.norm(P, axis=1, keepdims=True)
        fam = SignALSH.fit(P)
        q = rng.normal(size=10); q /= np.linalg.norm(q)
        r = rng.normal(size=10); r -= (r @ q) * q; r /= np.linalg.norm(r)
        near = 0.9 * q + np.sqrt(1 - 0.81) * r
        hi = estimate_collision_probability(fam, near, q, trials=1000, seed=0)
        lo = estimate_collision_probability(fam, -near, q, trials=1000, seed=0)
        assert hi > lo

    def test_fit_constructor(self, rng):
        P = rng.normal(size=(10, 6))
        fam = SignALSH.fit(P, m=3)
        assert fam.d == 6 and fam.scale > 0

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            SignALSH(d=0, scale=1.0)
        with pytest.raises(ParameterError):
            SignALSH(d=4, scale=-1.0)


class TestRhoSignALSH:
    def test_in_unit_interval(self):
        for s in (0.2, 0.5, 0.8):
            for c in (0.3, 0.7):
                assert 0.0 < rho_sign_alsh(s, c) < 1.0 + 1e-9

    def test_improves_on_l2alsh(self):
        # Sign-ALSH's selling point: it dominates its predecessor L2-ALSH
        # (the comparison against SIMPLE-LSH depends on the norm
        # distribution / parametrization, so we do not assert it).
        from repro.lsh.rho import rho_l2alsh
        for s in (0.3, 0.5, 0.7):
            assert rho_sign_alsh(s, 0.5) < rho_l2alsh(s, 0.5)

    def test_datadep_still_better(self):
        # The paper's Section 4.1 scheme dominates at the defaults.
        for s in (0.3, 0.6, 0.9):
            assert rho_datadep(s, 0.5) < rho_sign_alsh(s, 0.5)

    def test_domain(self):
        with pytest.raises(ParameterError):
            rho_sign_alsh(0.0, 0.5)
        with pytest.raises(ParameterError):
            rho_sign_alsh(0.5, 0.5, m=0)


class TestE2LSH:
    def test_collision_matches_closed_form(self, rng):
        fam = E2LSH(8, w=2.0)
        x = rng.normal(size=8)
        y = x + rng.normal(size=8) * 0.2
        dist = float(np.linalg.norm(x - y))
        est = estimate_collision_probability(fam, x, y, trials=3000, seed=1)
        assert abs(est - collision_prob_e2lsh(dist, 2.0)) < 0.04

    def test_identical_vectors_always_collide(self, rng):
        fam = E2LSH(4, w=1.0)
        x = rng.normal(size=4)
        assert estimate_collision_probability(fam, x, x, trials=50, seed=2) == 1.0

    def test_monotone_in_distance(self, rng):
        fam = E2LSH(8, w=2.0)
        x = rng.normal(size=8)
        near = x + 0.1 * rng.normal(size=8)
        far = x + 3.0 * rng.normal(size=8)
        p_near = estimate_collision_probability(fam, x, near, trials=800, seed=3)
        p_far = estimate_collision_probability(fam, x, far, trials=800, seed=3)
        assert p_near > p_far

    def test_is_symmetric(self):
        assert E2LSH(4).is_symmetric

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            E2LSH(0)
        with pytest.raises(ParameterError):
            E2LSH(4, w=0.0)
