import numpy as np
import pytest

from repro.datasets import latent_factor_model, planted_mips
from repro.errors import ParameterError
from repro.mips import ConeTreeMIPS, ExactMIPS, LSHMIPS, SketchMIPS


@pytest.fixture(scope="module")
def model():
    return latent_factor_model(24, 800, rank=12, popularity_skew=0.8, seed=0)


class TestExactMIPS:
    def test_matches_argmax(self, model):
        engine = ExactMIPS(model.items)
        for u in range(5):
            answer = engine.query(model.users[u])
            prefs = model.preference(u)
            assert answer.index == int(np.argmax(prefs))
            assert abs(answer.value - prefs.max()) < 1e-12
            assert answer.work == model.n_items

    def test_top_k_sorted_and_correct(self, model):
        engine = ExactMIPS(model.items)
        top = engine.top_k(model.users[0], k=5)
        prefs = model.preference(0)
        expected = np.argsort(-prefs)[:5]
        assert [a.index for a in top] == expected.tolist()
        values = [a.value for a in top]
        assert values == sorted(values, reverse=True)

    def test_top_k_exceeding_n(self, model):
        engine = ExactMIPS(model.items)
        assert len(engine.top_k(model.users[0], k=10 ** 6)) == model.n_items

    def test_top_k_validates(self, model):
        with pytest.raises(ParameterError):
            ExactMIPS(model.items).top_k(model.users[0], k=0)

    def test_query_dimension_validated(self, model):
        with pytest.raises(ParameterError):
            ExactMIPS(model.items).query(np.zeros(model.rank + 1))


class TestConeTreeMIPS:
    @pytest.fixture(scope="class")
    def engine(self, ):
        model = latent_factor_model(24, 800, rank=12, popularity_skew=0.8, seed=0)
        return ConeTreeMIPS(model.items, leaf_size=16, seed=1)

    def test_always_exact(self, engine, model):
        exact = ExactMIPS(model.items)
        for u in range(24):
            a = exact.query(model.users[u])
            b = engine.query(model.users[u])
            assert abs(a.value - b.value) < 1e-9

    def test_prunes_work(self, engine, model):
        total_work = sum(engine.query(model.users[u]).work for u in range(24))
        assert total_work < 24 * model.n_items * 0.5

    def test_prune_counters(self, engine, model):
        engine.query(model.users[0])
        assert engine.last_nodes_visited > 0
        assert engine.last_nodes_pruned >= 0

    def test_duplicate_points_handled(self):
        P = np.ones((20, 4))
        engine = ConeTreeMIPS(P, leaf_size=2, seed=2)
        answer = engine.query(np.ones(4))
        assert abs(answer.value - 4.0) < 1e-12

    def test_single_point(self):
        engine = ConeTreeMIPS(np.array([[1.0, 2.0]]), seed=3)
        answer = engine.query(np.array([1.0, 0.0]))
        assert answer.index == 0 and answer.value == 1.0

    def test_bad_leaf_size(self):
        with pytest.raises(ParameterError):
            ConeTreeMIPS(np.ones((4, 2)), leaf_size=0)

    def test_negative_best_value(self):
        P = np.array([[-1.0, 0.0], [-2.0, 0.0]])
        answer = ConeTreeMIPS(P, seed=4).query(np.array([1.0, 0.0]))
        assert answer.index == 0 and answer.value == -1.0


class TestLSHMIPS:
    def test_high_quality_on_planted(self):
        inst = planted_mips(400, 12, 24, s=0.9, c=0.3, seed=5)
        engine = LSHMIPS(inst.P, n_tables=16, hashes_per_table=6, seed=6)
        hits = sum(
            1 for qi in range(12)
            if engine.query(inst.Q[qi]).value >= inst.cs
        )
        assert hits >= 10

    def test_work_below_scan(self):
        inst = planted_mips(400, 12, 24, s=0.9, c=0.3, seed=7)
        engine = LSHMIPS(inst.P, n_tables=8, hashes_per_table=6, seed=8)
        works = [engine.query(inst.Q[qi]).work for qi in range(12)]
        assert np.mean(works) < inst.n / 2

    def test_fallback_on_empty_candidates(self):
        # One table, many bits: a far query likely hits an empty bucket,
        # and the engine must fall back to the exact scan.
        inst = planted_mips(50, 4, 16, s=0.9, c=0.3, seed=9)
        engine = LSHMIPS(inst.P, n_tables=1, hashes_per_table=14, seed=10)
        answer = engine.query(inst.Q[0])
        assert answer.index >= 0  # always answers something


class TestSketchMIPS:
    def test_within_factor(self):
        inst = planted_mips(256, 8, 24, s=0.9, c=0.3, seed=11)
        engine = SketchMIPS(inst.P, kappa=4.0, copies=9, seed=12)
        exact = ExactMIPS(inst.P)
        for qi in range(8):
            opt = abs(exact.query(inst.Q[qi]).value)
            got = engine.query(inst.Q[qi]).value
            assert got >= engine.approximation_factor * opt / 4.0

    def test_work_reported(self):
        inst = planted_mips(256, 8, 24, s=0.9, c=0.3, seed=13)
        engine = SketchMIPS(inst.P, kappa=3.0, copies=5, seed=14)
        assert engine.query(inst.Q[0]).work > 0
