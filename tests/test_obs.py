"""Observability: span tracing, metrics, exporters, planner regret.

Contracts enforced here:

* **Trace shape** — ``repro.engine.join(..., trace=True)`` returns a
  span tree with ``planner``, ``prepare``, per-chunk ``run_chunk``, and
  ``merge`` spans for every backend, serial and parallel, with the
  kernel sub-phases (hash / candidates / verify / scan) underneath.
* **Stitching determinism** — the span-tree *skeleton* and all
  chunk-shipped metric totals are bit-identical across worker counts.
* **Near-zero disabled cost** — untraced joins carry no trace/metrics
  and instrumentation sites return the shared no-op span.
* **Planner telemetry** — every dispatch appends a
  :class:`~repro.obs.planner_log.PlannerRecord`; regret scoring,
  persistence, and :meth:`CostModel.from_planner_log` close the loop.
* **Stats hygiene** — a prebuilt index reused across engine joins
  starts each join with fresh ``QueryStats`` (the reuse-leak
  regression).
"""

import json

import numpy as np
import pytest

from repro.core import JoinSpec
from repro.datasets import planted_mips
from repro.engine import join
from repro.engine.planner import (
    DEFAULT_MODEL,
    CostModel,
    default_model,
    plan_join,
)
from repro.errors import ParameterError
from repro.mips import LSHMIPS
from repro.obs import (
    MetricsRegistry,
    PlannerLog,
    PlannerRecord,
    Span,
    Tracer,
    current_tracer,
    format_pick_distribution,
    format_regret_table,
    metrics_to_json,
    metrics_to_prometheus,
    span,
    trace_summary,
    trace_to_json,
    use_planner_log,
    use_tracer,
)
from repro.obs.metrics import Histogram


@pytest.fixture(scope="module")
def instance():
    return planted_mips(500, 48, 64, s=0.85, c=0.4, seed=7)


BACKEND_CASES = [
    ("brute_force", dict(s=0.85, c=0.4), {}),
    ("norm_pruned", dict(s=0.85, c=0.4), {}),
    ("lsh", dict(s=0.85, c=0.4), {"seed": 1}),
    ("sketch", dict(s=0.85, c=0.4, signed=False), {"seed": 1, "kappa": 3.0}),
]


class TestTracerUnit:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root", job=1):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        root = tracer.take()
        assert root.name == "root"
        assert root.attrs == {"job": 1}
        assert root.name_tree() == ("root", (("a", (("a1", ()),)), ("b", ())))
        assert root.duration_ns >= root.child("a").duration_ns
        assert [s.name for s in root.find("a1")] == ["a1"]
        assert tracer.take() is None  # detached

    def test_disabled_tracer_hands_out_noop_span(self):
        tracer = Tracer(enabled=False)
        cm = tracer.span("anything", x=1)
        with cm as s:
            assert s is None
        assert tracer.roots == []
        # All disabled spans are one shared object: no per-site garbage.
        assert tracer.span("other") is cm

    def test_module_level_span_follows_activation(self):
        with span("outside"):
            pass
        assert current_tracer().roots == []  # process default is disabled
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            with span("inside"):
                pass
        assert [s.name for s in tracer.roots] == ["inside"]
        assert current_tracer().enabled is False  # restored

    def test_dict_roundtrip(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root", n=3):
            with tracer.span("leaf"):
                pass
        root = tracer.take()
        clone = Span.from_dict(root.to_dict())
        assert clone.name_tree() == root.name_tree()
        assert clone.attrs == root.attrs
        assert clone.duration_ns == root.duration_ns


class TestMetricsUnit:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        h = reg.histogram("h")
        h.observe(3)
        h.observe_array(np.array([1, 1, 300], dtype=np.int64))
        assert reg.counter("c").value == 5
        assert reg.gauge("g").value == 2.5
        assert h.count == 4
        assert h.sum == 305
        assert h.mean == pytest.approx(305 / 4)

    def test_histogram_bucketing_matches_scalar_and_array(self):
        a, b = Histogram(), Histogram()
        values = [0, 1, 2, 3, 16, 2 ** 24, 2 ** 24 + 1]
        for v in values:
            a.observe(v)
        b.observe_array(np.array(values, dtype=np.int64))
        assert a.counts == b.counts
        assert a.sum == b.sum

    def test_snapshot_merge_is_exact(self):
        parts = []
        for seed in (1, 2, 3):
            reg = MetricsRegistry()
            reg.counter("n").inc(seed)
            reg.histogram("h").observe_array(np.arange(seed * 10))
            parts.append(reg.snapshot())
        merged = MetricsRegistry()
        for snap in parts:
            merged.merge_snapshot(snap)
        whole = MetricsRegistry()
        whole.counter("n").inc(6)
        whole.histogram("h").observe_array(np.arange(10))
        whole.histogram("h").observe_array(np.arange(20))
        whole.histogram("h").observe_array(np.arange(30))
        assert merged.snapshot() == whole.snapshot()

    def test_mismatched_histogram_bounds_refuse_to_merge(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, 2.0))
        other = MetricsRegistry()
        other.histogram("h")  # default pow2 bounds
        with pytest.raises(ParameterError, match="layouts disagree"):
            reg.merge_snapshot(other.snapshot())


class TestExporters:
    def _traced(self, instance):
        return join(
            instance.P, instance.Q, JoinSpec(s=0.85, c=0.4),
            backend="lsh", seed=1, trace=True,
        )

    def test_trace_json_roundtrip(self, instance):
        result = self._traced(instance)
        payload = json.loads(trace_to_json(result.trace))
        assert payload["name"] == "engine.join"
        assert Span.from_dict(payload).name_tree() == result.trace.name_tree()

    def test_metrics_json(self, instance):
        result = self._traced(instance)
        payload = json.loads(metrics_to_json(result.metrics))
        assert payload["counters"]["engine.queries"] == instance.Q.shape[0]

    def test_prometheus_text(self, instance):
        result = self._traced(instance)
        text = metrics_to_prometheus(result.metrics)
        assert "# TYPE repro_engine_queries counter" in text
        assert f"repro_engine_queries {instance.Q.shape[0]}" in text
        # Histogram series are cumulative and end at +Inf.
        assert 'le="+Inf"' in text

    def test_trace_summary_mentions_phases(self, instance):
        result = self._traced(instance)
        text = trace_summary(result.trace, result.metrics)
        for name in ("engine.join", "planner", "prepare", "run_chunk", "merge"):
            assert name in text


class TestEngineTraceShape:
    @pytest.mark.parametrize("backend,spec_kw,options", BACKEND_CASES)
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_all_backends_produce_phase_spans(
        self, instance, backend, spec_kw, options, n_workers
    ):
        result = join(
            instance.P, instance.Q, JoinSpec(**spec_kw),
            backend=backend, n_workers=n_workers, block=32, trace=True,
            **options,
        )
        root = result.trace
        assert root is not None and root.name == "engine.join"
        assert root.attrs["n_workers"] == n_workers
        names = [c.name for c in root.children]
        assert names.count("planner") == 1
        assert names.count("prepare") == 1
        assert names.count("run") == 1
        assert names.count("merge") == 1
        chunks = root.child("run").find("run_chunk")
        assert len(chunks) == (1 if n_workers == 1 else 2)
        # Chunks tile the query set in order.
        starts = [c.attrs["start"] for c in chunks]
        assert starts == sorted(starts) and starts[0] == 0
        assert sum(c.attrs["n_queries"] for c in chunks) == instance.Q.shape[0]
        assert result.metrics is not None
        assert result.wall_s > 0

    def test_kernel_subphases_present(self, instance):
        lsh = join(
            instance.P, instance.Q, JoinSpec(s=0.85, c=0.4),
            backend="lsh", seed=1, trace=True,
        ).trace
        assert lsh.find("hash")        # query-side hashing
        assert lsh.find("candidates")  # bucket gathering
        assert lsh.find("verify")      # blocked verification
        assert lsh.child("prepare").find("build")  # serial in-trace build
        sketch = join(
            instance.P, instance.Q, JoinSpec(s=0.85, c=0.4, signed=False),
            backend="sketch", seed=1, kappa=3.0, trace=True,
        ).trace
        assert sketch.find("sketch_propose") and sketch.find("verify")
        exact = join(
            instance.P, instance.Q, JoinSpec(s=0.85, c=0.4),
            backend="brute_force", trace=True,
        ).trace
        assert exact.find("scan")

    def test_untraced_join_carries_nothing(self, instance):
        result = join(
            instance.P, instance.Q, JoinSpec(s=0.85, c=0.4),
            backend="brute_force",
        )
        assert result.trace is None
        assert result.metrics is None
        assert result.wall_s > 0  # wall time is always measured

    def test_auto_planner_span_records_ranking(self, instance):
        result = join(
            instance.P, instance.Q, JoinSpec(s=0.85, c=0.4),
            backend="auto", seed=1, trace=True,
        )
        planner = result.trace.child("planner")
        assert planner.attrs["picked"] == result.backend
        ranked = [name for name, _ in planner.attrs["ranking"]]
        assert ranked[0] == result.backend


class TestParallelStitching:
    """Satellite: serial and parallel traces/metrics must agree."""

    @pytest.mark.parametrize("backend,spec_kw,options", BACKEND_CASES)
    def test_metric_totals_bit_identical_across_workers(
        self, instance, backend, spec_kw, options
    ):
        spec = JoinSpec(**spec_kw)
        results = [
            join(
                instance.P, instance.Q, spec, backend=backend,
                n_workers=w, block=16, trace=True, **options,
            )
            for w in (1, 2, 3)
        ]
        assert results[0].matches == results[1].matches == results[2].matches
        snaps = [r.metrics.snapshot() for r in results]
        # Build-phase instruments are recorded where the build runs
        # under observation (the parent, serially); parallel workers
        # build inside the unobserved pool initializer, each producing
        # an identical structure.  Everything shipped via chunks — all
        # counters, and the verify histograms — is bit-identical.
        for snap in snaps[1:]:
            assert snap["counters"] == snaps[0]["counters"]
            for name, payload in snap["histograms"].items():
                assert payload == snaps[0]["histograms"][name]

    def test_chunk_skeletons_deterministic(self, instance):
        spec = JoinSpec(s=0.85, c=0.4)
        runs = [
            join(
                instance.P, instance.Q, spec, backend="lsh",
                seed=5, n_workers=3, block=16, trace=True,
            )
            for _ in range(2)
        ]
        t1, t2 = (r.trace for r in runs)
        assert t1.name_tree() == t2.name_tree()
        # Serial chunk trees have the same shape as each worker's.
        serial = join(
            instance.P, instance.Q, spec, backend="lsh", seed=5, block=16,
            trace=True,
        ).trace
        serial_chunk = serial.child("run").find("run_chunk")[0]
        for chunk in t1.child("run").find("run_chunk"):
            assert {c.name for c in chunk.children} == {
                c.name for c in serial_chunk.children
            }


class TestStatsReuseRegression:
    """A reused prebuilt index must not leak stats across engine joins.

    Per-join ``JoinResult.stats`` are snapshot-diffed deltas; the
    index's own counters stay cumulative across joins (the monitoring
    contract ``tests/test_csr_and_executor.py`` pins).  These tests pin
    the delta side: consecutive joins report identical per-join stats
    no matter what ran on the index in between.
    """

    def test_lshmips_join_reuse_reports_per_join_stats(self, instance):
        eng = LSHMIPS(instance.P * 0.9, seed=0)
        spec = JoinSpec(s=0.6, c=0.5)
        m = instance.Q.shape[0]
        first = eng.join(instance.Q, spec)
        second = eng.join(instance.Q, spec)
        # Same work both times: deltas, not cumulative counts.
        assert second.stats == first.stats
        assert second.candidates_generated == first.candidates_generated
        assert first.stats.queries == m
        # The index's own counters keep accumulating across joins.
        assert eng.index.stats.queries == 2 * m

    def test_interleaved_queries_do_not_pollute_join_stats(self, instance):
        eng = LSHMIPS(instance.P * 0.9, seed=0)
        spec = JoinSpec(s=0.6, c=0.5)
        first = eng.join(instance.Q, spec)
        # Point queries between joins mutate the index's cumulative
        # stats but must not surface in the next join's delta.
        for q in instance.Q[:7]:
            eng.query(q)
        second = eng.join(instance.Q, spec)
        assert second.stats == first.stats
        assert second.matches == first.matches

    def test_engine_join_with_prebuilt_index_reports_per_join_stats(
        self, instance
    ):
        from repro.lsh import BatchSignIndex

        index = BatchSignIndex.for_hyperplane(
            instance.P.shape[1], n_tables=8, bits_per_table=6, seed=2
        ).build(instance.P)
        spec = JoinSpec(s=0.85, c=0.4)
        r1 = join(instance.P, instance.Q, spec, backend="lsh", index=index)
        r2 = join(instance.P, instance.Q, spec, backend="lsh", index=index)
        assert r1.stats == r2.stats
        assert r1.stats.queries == instance.Q.shape[0]
        assert index.stats.queries == 2 * instance.Q.shape[0]


class TestPlannerLog:
    def _sweep(self, instance):
        log = PlannerLog()
        spec = JoinSpec(s=0.85, c=0.4, signed=False)
        with use_planner_log(log):
            for backend in ("brute_force", "norm_pruned", "lsh", "sketch"):
                join(
                    instance.P, instance.Q, spec, backend=backend, seed=1,
                    **({"kappa": 3.0} if backend == "sketch" else {}),
                )
            join(instance.P, instance.Q, spec, backend="auto", seed=1)
        return log

    def test_every_join_is_recorded(self, instance):
        log = self._sweep(instance)
        assert len(log) == 5
        modes = [r.mode for r in log]
        assert modes.count("auto") == 1 and modes.count("explicit") == 4
        auto = [r for r in log if r.mode == "auto"][0]
        assert auto.predicted  # feasible backends were ranked
        assert auto.wall_s > 0
        # All rows describe the same instance (the requested spec, so
        # the sketch's c-substitution cannot fragment the grouping).
        assert len({r.key() for r in log}) == 1

    def test_regret_rows_score_against_fastest(self, instance):
        log = self._sweep(instance)
        rows = log.regret_rows()
        assert len(rows) == 1
        row = rows[0]
        assert set(row.measured) >= {"brute_force", "norm_pruned", "lsh", "sketch"}
        assert row.fastest_s == min(row.measured.values())
        assert row.regret >= 0.0
        table = format_regret_table(log)
        assert "picked fastest" in table and row.picked in table
        dist = format_pick_distribution(log)
        assert row.picked in dist

    def test_regret_table_splits_session_from_one_shot(self, instance):
        from repro.engine import open_session

        log = self._sweep(instance)  # one-shot records only
        spec = JoinSpec(s=0.85, c=0.4, signed=False)
        with use_planner_log(log):
            with open_session(
                instance.P, spec, backend="auto", seed=1, expected_queries=16
            ) as session:
                session.query(instance.Q)
                session.query(instance.Q)
        amortized, one_shot = log.session_counts()
        assert amortized == 2 and one_shot == 5
        # The session filter partitions the auto rows cleanly.
        assert len(log.regret_rows(session=True)) + len(
            log.regret_rows(session=False)
        ) == len(log.regret_rows())
        assert "no session-amortized" not in format_regret_table(
            log, session=True
        )
        assert "picked fastest" in format_regret_table(log, session=False)

    def test_jsonl_roundtrip(self, instance, tmp_path):
        log = self._sweep(instance)
        path = tmp_path / "log.jsonl"
        log.save(path)
        loaded = PlannerLog.load(path)
        assert [r.to_dict() for r in loaded] == [r.to_dict() for r in log]
        (tmp_path / "bad.jsonl").write_text("not json\n")
        with pytest.raises(ParameterError, match="not a planner record"):
            PlannerLog.load(tmp_path / "bad.jsonl")

    def test_from_planner_log_fits_measured_signals(self, instance):
        log = self._sweep(instance)
        model = CostModel.from_planner_log(log)
        assert model.gemm_op == 1.0
        explicit = {r.picked: r for r in log if r.mode == "explicit"}
        norm = explicit["norm_pruned"]
        assert model.norm_prefix_fraction == pytest.approx(
            min(1.0, norm.evaluated / (norm.n * norm.m))
        )
        lsh = explicit["lsh"]
        assert model.lsh_candidate_fraction == pytest.approx(
            min(1.0, lsh.generated / (lsh.n * lsh.m))
        )

    def test_log_is_bounded(self):
        log = PlannerLog(maxlen=3)
        for i in range(5):
            log.record(
                PlannerRecord(
                    n=i, m=1, d=1, s=0.5, c=0.5, signed=True, variant="join",
                    mode="explicit", picked="brute_force", wall_s=0.1,
                )
            )
        assert len(log) == 3
        assert [r.n for r in log] == [2, 3, 4]


class TestCostModelPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        model = CostModel(gemm_op=1.0, row_op=123.0, norm_prefix_fraction=0.5)
        path = str(tmp_path / "nested" / "costmodel.json")
        model.save(path)
        assert CostModel.load(path) == model
        payload = json.loads(open(path).read())
        assert payload["format"] == "repro-costmodel-v1"

    def test_load_ignores_unknown_keys_rejects_bad_values(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"row_op": 7, "future_field": "x"}))
        assert CostModel.load(str(path)).row_op == 7.0
        path.write_text(json.dumps({"row_op": "fast"}))
        with pytest.raises(ParameterError, match="must be a number"):
            CostModel.load(str(path))

    def test_default_model_env_semantics(self, tmp_path, monkeypatch):
        calibrated = CostModel(row_op=42.0)
        path = str(tmp_path / "costmodel.json")
        calibrated.save(path)
        monkeypatch.setenv("REPRO_COSTMODEL", path)
        assert default_model() == calibrated
        # Empty value: explicit opt-out to the builtin defaults.
        monkeypatch.setenv("REPRO_COSTMODEL", "")
        assert default_model() is DEFAULT_MODEL
        # Missing file: silent fallback, never an error.
        monkeypatch.setenv("REPRO_COSTMODEL", str(tmp_path / "absent.json"))
        assert default_model() is DEFAULT_MODEL
        # Corrupt file: same.
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        monkeypatch.setenv("REPRO_COSTMODEL", str(bad))
        assert default_model() is DEFAULT_MODEL

    def test_auto_join_uses_persisted_model(self, instance, tmp_path, monkeypatch):
        # A model that makes norm_pruned wildly expensive flips the
        # planner's ranking for this instance — proof the persisted
        # calibration actually reaches backend="auto".
        path = str(tmp_path / "costmodel.json")
        CostModel(norm_prefix_fraction=1.0, norm_fixed_build=1e12).save(path)
        n, m, d = instance.P.shape[0], instance.Q.shape[0], instance.P.shape[1]
        spec = JoinSpec(s=0.85, c=0.4)
        monkeypatch.setenv("REPRO_COSTMODEL", "")
        builtin_pick = plan_join(n, m, d, spec).backend
        monkeypatch.setenv("REPRO_COSTMODEL", path)
        assert plan_join(n, m, d, spec).backend != "norm_pruned"
        result = join(instance.P, instance.Q, spec, backend="auto", seed=1)
        assert result.backend != "norm_pruned"
        assert builtin_pick == "norm_pruned"  # the flip was real


class TestHybridTraceShape:
    """Multi-stage plans expose one span per stage, run_chunks labelled."""

    def _hybrid(self, instance, *, n_workers=1, trace=True):
        from repro.engine import norm_prefix_lsh_plan

        return join(
            instance.P, instance.Q, JoinSpec(s=0.85, c=0.4),
            backend=norm_prefix_lsh_plan(prefix_fraction=0.25),
            seed=1, block=32, n_workers=n_workers, trace=trace,
        )

    def test_stage_spans_nest_prepare_run_merge(self, instance):
        root = self._hybrid(instance).trace
        assert root is not None and root.name == "engine.join"
        names = [c.name for c in root.children]
        assert names == ["planner", "stage", "stage", "merge"]
        stages = root.find("stage")
        for i, stage_span in enumerate(stages):
            assert stage_span.attrs["index"] == i
            inner = [c.name for c in stage_span.children]
            assert inner.count("prepare") == 1
            assert inner.count("run") == 1
            assert inner.count("merge") == 1
            assert stage_span.attrs["n"] > 0
        assert stages[0].attrs["backend"] == "norm_pruned"
        assert stages[0].attrs["label"] == "prefix"
        assert stages[0].attrs["points"] == "norm_top"
        assert stages[1].attrs["backend"] == "lsh"
        assert stages[1].attrs["label"] == "tail"
        assert stages[1].attrs["queries"] == "unanswered"
        # Stage 2 only sees what stage 1 left unanswered.
        assert stages[1].attrs["m"] == \
            instance.Q.shape[0] - stages[0].attrs["answered"]
        assert root.child("merge").attrs["stages"] == 2

    def test_stage_run_chunks_carry_stage_label(self, instance):
        root = self._hybrid(instance, n_workers=2).trace
        for stage_span in root.find("stage"):
            chunks = stage_span.child("run").find("run_chunk")
            assert chunks, "each stage shards its query subset"
            for chunk in chunks:
                assert chunk.attrs["stage"] == stage_span.attrs["label"]
            starts = [c.attrs["start"] for c in chunks]
            assert starts == sorted(starts) and starts[0] == 0
            assert sum(c.attrs["n_queries"] for c in chunks) == \
                stage_span.attrs["m"]

    def test_hybrid_trace_serial_parallel_same_shape(self, instance):
        serial = self._hybrid(instance, n_workers=1).trace
        parallel = self._hybrid(instance, n_workers=2).trace
        assert [c.name for c in serial.children] == \
            [c.name for c in parallel.children]
        for a, b in zip(serial.find("stage"), parallel.find("stage")):
            assert a.attrs["answered"] == b.attrs["answered"]
            assert a.attrs["m"] == b.attrs["m"]


class TestPlannerLogStages:
    """Every record carries per-stage attribution rows."""

    def test_single_backend_record_has_one_stage(self, instance):
        log = PlannerLog()
        spec = JoinSpec(s=0.85, c=0.4)
        with use_planner_log(log):
            join(instance.P, instance.Q, spec, backend="norm_pruned")
        (record,) = log.records
        assert len(record.stages) == 1
        stage = record.stages[0]
        assert stage["backend"] == "norm_pruned"
        assert stage["index"] == 0
        assert stage["n"] == instance.P.shape[0]
        assert stage["m"] == instance.Q.shape[0]
        assert stage["wall_s"] == record.wall_s
        assert stage["evaluated"] == record.evaluated

    def test_hybrid_record_attributes_per_stage(self, instance):
        from repro.engine import norm_prefix_lsh_plan

        log = PlannerLog()
        spec = JoinSpec(s=0.85, c=0.4)
        with use_planner_log(log):
            join(
                instance.P, instance.Q, spec,
                backend=norm_prefix_lsh_plan(prefix_fraction=0.25), seed=1,
            )
        (record,) = log.records
        assert record.picked == "norm_pruned+lsh"
        assert [s["backend"] for s in record.stages] == ["norm_pruned", "lsh"]
        assert record.stages[0]["m"] == instance.Q.shape[0]
        assert record.stages[1]["m"] == \
            instance.Q.shape[0] - record.stages[0]["answered"]
        assert sum(s["evaluated"] for s in record.stages) <= record.evaluated
        assert all(s["wall_s"] >= 0 for s in record.stages)
        # Explicit plans carry no predictions.
        assert all("predicted_ops" not in s for s in record.stages)

    def test_auto_hybrid_stages_carry_predicted_ops(self, instance):
        model = CostModel(
            hybrid_prefix_fraction=0.1, hybrid_tail_query_fraction=0.1
        )
        spec = JoinSpec(s=0.9, c=0.7)
        rng = np.random.default_rng(1)
        P, Q = rng.normal(size=(4000, 32)), rng.normal(size=(1000, 32))
        assert plan_join(4000, 1000, 32, spec, model=model).backend == \
            "norm_pruned+lsh"
        log = PlannerLog()
        with use_planner_log(log):
            join(P, Q, spec, backend="auto", model=model, seed=5)
        (record,) = log.records
        assert record.mode == "auto"
        assert record.picked == "norm_pruned+lsh"
        assert len(record.stages) == 2
        for stage in record.stages:
            assert stage["predicted_ops"] > 0
        assert "norm_pruned+lsh" in record.predicted

    def test_stage_rows_and_table(self, instance):
        from repro.engine import norm_prefix_lsh_plan
        from repro.obs import format_stage_table

        log = PlannerLog()
        spec = JoinSpec(s=0.85, c=0.4)
        with use_planner_log(log):
            join(instance.P, instance.Q, spec, backend="brute_force")
            join(
                instance.P, instance.Q, spec,
                backend=norm_prefix_lsh_plan(prefix_fraction=0.25), seed=1,
            )
        rows = log.stage_rows()
        assert len(rows) == 3  # 1 single + 2 hybrid stages
        table = format_stage_table(log)
        assert "norm_pruned+lsh" in table
        assert "prefix" not in table or True  # labels not in table columns
        assert "brute_force" not in table  # single-stage filtered by default
        full = format_stage_table(log, multi_stage_only=False)
        assert "brute_force" in full
        empty = format_stage_table(PlannerLog())
        assert empty == "no multi-stage plans recorded"

    def test_jsonl_roundtrip_preserves_stages(self, instance, tmp_path):
        from repro.engine import norm_prefix_lsh_plan

        log = PlannerLog()
        spec = JoinSpec(s=0.85, c=0.4)
        with use_planner_log(log):
            join(
                instance.P, instance.Q, spec,
                backend=norm_prefix_lsh_plan(prefix_fraction=0.25), seed=1,
            )
        path = tmp_path / "stages.jsonl"
        log.save(path)
        loaded = PlannerLog.load(path)
        assert loaded.records[0].stages == log.records[0].stages
        assert loaded.records[0].to_dict() == log.records[0].to_dict()
