import math

import pytest

from repro.errors import ParameterError
from repro.ovp import conjecture_dimension, is_conjecture_regime
from repro.ovp.conjecture import subquadratic_exponent


class TestConjectureDimension:
    def test_scales_with_log_n(self):
        assert conjecture_dimension(2 ** 20, gamma=1.0) == 20

    def test_gamma_multiplies(self):
        assert conjecture_dimension(2 ** 10, gamma=3.0) == 30

    def test_minimum_two(self):
        assert conjecture_dimension(2, gamma=0.1) >= 2

    def test_bad_inputs(self):
        with pytest.raises(ParameterError):
            conjecture_dimension(1)
        with pytest.raises(ParameterError):
            conjecture_dimension(10, gamma=0)


class TestRegimeCheck:
    def test_in_regime(self):
        assert is_conjecture_regime(1024, 20, min_gamma=1.0)

    def test_below_regime(self):
        assert not is_conjecture_regime(2 ** 30, 10, min_gamma=1.0)

    def test_boundary(self):
        assert is_conjecture_regime(1024, 10, min_gamma=1.0)


class TestSubquadraticExponent:
    def test_quadratic_cost(self):
        # time = unit * n^2 should give exponent 2.
        n = 1000
        assert abs(subquadratic_exponent(n, 5.0 * n ** 2, 5.0) - 2.0) < 1e-9

    def test_linear_cost(self):
        n = 500
        assert abs(subquadratic_exponent(n, 2.0 * n, 2.0) - 1.0) < 1e-9

    def test_bad_inputs(self):
        with pytest.raises(ParameterError):
            subquadratic_exponent(1, 1.0, 1.0)
        with pytest.raises(ParameterError):
            subquadratic_exponent(10, 0.0, 1.0)
