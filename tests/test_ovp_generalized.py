import numpy as np
import pytest

from repro.datasets import planted_ovp
from repro.errors import ParameterError
from repro.ovp import solve_generalized_via_chunks, solve_ovp_bruteforce


class TestGeneralizedOVP:
    def test_finds_pair_with_chunking(self):
        inst = planted_ovp(60, 30, planted=True, seed=0)
        pair = solve_generalized_via_chunks(inst, chunk_size=7)
        assert pair is not None and inst.is_orthogonal(*pair)

    def test_index_mapping_back_to_instance(self):
        inst = planted_ovp(60, 30, planted=True, seed=1)
        pair = solve_generalized_via_chunks(inst, chunk_size=11)
        i, j = pair
        assert int(inst.P[i] @ inst.Q[j]) == 0

    def test_none_without_pair(self):
        inst = planted_ovp(40, 40, planted=False, seed=2)
        assert solve_generalized_via_chunks(inst, chunk_size=9) is None

    def test_chunk_size_one(self):
        inst = planted_ovp(20, 24, planted=True, seed=3)
        pair = solve_generalized_via_chunks(inst, chunk_size=1)
        assert pair is not None and inst.is_orthogonal(*pair)

    def test_chunk_larger_than_p(self):
        inst = planted_ovp(20, 24, planted=True, seed=4)
        pair = solve_generalized_via_chunks(inst, chunk_size=1000)
        assert pair is not None and inst.is_orthogonal(*pair)

    def test_custom_solver_plugged(self):
        inst = planted_ovp(20, 24, planted=True, seed=5)
        pair = solve_generalized_via_chunks(
            inst, chunk_size=6, solver=solve_ovp_bruteforce
        )
        assert pair is not None and inst.is_orthogonal(*pair)

    def test_bad_chunk_size(self):
        inst = planted_ovp(10, 24, seed=6)
        with pytest.raises(ParameterError):
            solve_generalized_via_chunks(inst, chunk_size=0)
