import numpy as np
import pytest

from repro.errors import DomainError
from repro.ovp import OVPInstance


class TestOVPInstance:
    def test_basic_construction(self):
        inst = OVPInstance(P=np.eye(3, dtype=int), Q=np.eye(3, dtype=int))
        assert inst.n_p == inst.n_q == inst.d == 3

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            OVPInstance(P=np.ones((2, 3), dtype=int), Q=np.ones((2, 4), dtype=int))

    def test_non_binary_rejected(self):
        with pytest.raises(DomainError):
            OVPInstance(P=np.full((2, 2), 2), Q=np.ones((2, 2), dtype=int))

    def test_is_orthogonal(self):
        P = np.array([[1, 0], [1, 1]])
        Q = np.array([[0, 1], [1, 0]])
        inst = OVPInstance(P=P, Q=Q)
        assert inst.is_orthogonal(0, 0)
        assert not inst.is_orthogonal(1, 0)

    def test_planted_pair_validated(self):
        P = np.array([[1, 0]])
        Q = np.array([[1, 0]])
        with pytest.raises(ValueError):
            OVPInstance(P=P, Q=Q, planted_pair=(0, 0))

    def test_planted_pair_bounds(self):
        P = np.array([[1, 0]])
        Q = np.array([[0, 1]])
        with pytest.raises(ValueError):
            OVPInstance(P=P, Q=Q, planted_pair=(5, 0))

    def test_valid_planted_pair(self):
        P = np.array([[1, 0]])
        Q = np.array([[0, 1]])
        inst = OVPInstance(P=P, Q=Q, planted_pair=(0, 0))
        assert inst.planted_pair == (0, 0)
