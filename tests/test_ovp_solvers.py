import numpy as np
import pytest

from repro.datasets import planted_ovp
from repro.ovp import (
    OVPInstance,
    solve_ovp_bitpacked,
    solve_ovp_bruteforce,
    solve_ovp_matmul,
)
from repro.ovp.solvers import count_orthogonal_pairs

SOLVERS = [solve_ovp_bruteforce, solve_ovp_bitpacked, solve_ovp_matmul]


@pytest.mark.parametrize("solver", SOLVERS)
class TestSolversAgainstPlanted:
    def test_finds_planted_pair(self, solver):
        inst = planted_ovp(40, 30, planted=True, seed=0)
        pair = solver(inst)
        assert pair is not None
        assert inst.is_orthogonal(*pair)

    def test_none_when_no_pair(self, solver):
        inst = planted_ovp(40, 40, planted=False, seed=1)
        assert solver(inst) is None

    def test_unbalanced_instance(self, solver):
        inst = planted_ovp(60, 30, planted=True, n_p=8, seed=2)
        pair = solver(inst)
        assert pair is not None and inst.is_orthogonal(*pair)


class TestSolverAgreement:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_solvers_agree_on_existence(self, seed, rng):
        P = (rng.random((25, 12)) < 0.35).astype(np.int64)
        Q = (rng.random((25, 12)) < 0.35).astype(np.int64)
        inst = OVPInstance(P=P, Q=Q)
        answers = [solver(inst) is not None for solver in SOLVERS]
        assert len(set(answers)) == 1

    def test_first_pair_convention(self):
        # Both the brute-force and bit-packed scans go in row-major order.
        P = np.array([[1, 1], [1, 0]])
        Q = np.array([[1, 1], [0, 1]])
        inst = OVPInstance(P=P, Q=Q)
        assert solve_ovp_bruteforce(inst) == solve_ovp_bitpacked(inst) == (1, 1)


class TestCountPairs:
    def test_identity_count(self):
        inst = OVPInstance(P=np.eye(4, dtype=int), Q=np.eye(4, dtype=int))
        # e_i . e_j = 0 exactly when i != j.
        assert count_orthogonal_pairs(inst) == 12

    def test_zero_count(self):
        inst = OVPInstance(P=np.ones((3, 4), dtype=int), Q=np.ones((3, 4), dtype=int))
        assert count_orthogonal_pairs(inst) == 0

    def test_blocked_matches_direct(self, rng):
        P = (rng.random((30, 10)) < 0.3).astype(np.int64)
        Q = (rng.random((30, 10)) < 0.3).astype(np.int64)
        inst = OVPInstance(P=P, Q=Q)
        direct = int((P @ Q.T == 0).sum())
        assert count_orthogonal_pairs(inst, block=7) == direct


class TestMatmulBlocking:
    def test_small_blocks_agree(self):
        inst = planted_ovp(50, 24, planted=True, seed=3)
        pair = solve_ovp_matmul(inst, block=13)
        assert pair is not None and inst.is_orthogonal(*pair)
