import numpy as np
import pytest

from repro.datasets import planted_ovp
from repro.ovp import (
    OVPInstance,
    solve_ovp_bitpacked,
    solve_ovp_weight_pruned,
    weight_prunable_fraction,
)


class TestWeightPrunedSolver:
    @pytest.mark.parametrize("planted", [True, False])
    def test_agrees_with_bitpacked(self, planted):
        inst = planted_ovp(40, 24, planted=planted, density=0.6, seed=planted)
        a = solve_ovp_weight_pruned(inst)
        b = solve_ovp_bitpacked(inst)
        assert (a is None) == (b is None)
        if a is not None:
            assert inst.is_orthogonal(*a)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_instances_agree(self, seed, rng):
        P = (rng.random((30, 14)) < 0.4).astype(np.int64)
        Q = (rng.random((30, 14)) < 0.4).astype(np.int64)
        inst = OVPInstance(P=P, Q=Q)
        a = solve_ovp_weight_pruned(inst)
        b = solve_ovp_bitpacked(inst)
        assert (a is None) == (b is None)
        if a is not None:
            assert inst.is_orthogonal(*a)

    def test_all_heavy_vectors_short_circuit(self):
        # Every pair weight-incompatible: answer None without coordinate work.
        P = np.ones((5, 6), dtype=np.int64)
        Q = np.ones((5, 6), dtype=np.int64)
        Q[:, 0] = 1  # weight 6 each; 6 + 6 > 6
        inst = OVPInstance(P=P, Q=Q)
        assert solve_ovp_weight_pruned(inst) is None
        assert weight_prunable_fraction(inst) == 1.0

    def test_sparse_instance_nothing_pruned(self):
        P = np.eye(4, dtype=np.int64)
        Q = np.eye(4, dtype=np.int64)
        inst = OVPInstance(P=P, Q=Q)
        # weight 1 + 1 <= 4 always: no pruning, but answers still correct.
        assert weight_prunable_fraction(inst) == 0.0
        pair = solve_ovp_weight_pruned(inst)
        assert pair is not None and inst.is_orthogonal(*pair)

    def test_prunable_fraction_grows_with_density(self, rng):
        d = 16
        sparse = OVPInstance(
            P=(rng.random((20, d)) < 0.2).astype(np.int64),
            Q=(rng.random((20, d)) < 0.2).astype(np.int64),
        )
        dense = OVPInstance(
            P=(rng.random((20, d)) < 0.7).astype(np.int64),
            Q=(rng.random((20, d)) < 0.7).astype(np.int64),
        )
        assert weight_prunable_fraction(dense) > weight_prunable_fraction(sparse)


class TestMultiprobe:
    def test_probes_superset_of_exact(self, rng):
        from repro.lsh import BatchSignIndex
        P = rng.normal(size=(120, 8))
        idx = BatchSignIndex.for_hyperplane(
            8, n_tables=4, bits_per_table=8, seed=0
        ).build(P)
        q = rng.normal(size=8)
        base = set(idx.candidates(q).tolist())
        probed = set(idx.candidates(q, n_probes=3).tolist())
        assert base <= probed

    def test_probes_improve_recall_with_few_tables(self):
        from repro.datasets import planted_mips
        from repro.lsh import BatchSignIndex
        inst = planted_mips(400, 24, 32, s=0.85, c=0.4, seed=1)
        idx = BatchSignIndex.for_datadep(
            32, n_tables=2, bits_per_table=12, seed=2
        ).build(inst.P)
        def recall(n_probes):
            hits = 0
            for qi in range(24):
                cand = idx.candidates(inst.Q[qi], n_probes=n_probes)
                if cand.size and (inst.P[cand] @ inst.Q[qi]).max() >= inst.cs:
                    hits += 1
            return hits / 24
        assert recall(6) >= recall(0)

    def test_probe_budget_validated(self, rng):
        from repro.errors import ParameterError
        from repro.lsh import BatchSignIndex
        idx = BatchSignIndex.for_hyperplane(
            4, n_tables=2, bits_per_table=4, seed=3
        ).build(rng.normal(size=(10, 4)))
        with pytest.raises(ParameterError):
            idx.candidates(np.ones(4), n_probes=5)
        with pytest.raises(ParameterError):
            idx.candidates(np.ones(4), n_probes=-1)
