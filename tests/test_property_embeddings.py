"""Property-based tests (hypothesis): gap embeddings on arbitrary inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings import (
    ChebyshevSignEmbedding,
    ChoppedBinaryEmbedding,
    SignedCoordinateEmbedding,
)

MAX_EXAMPLES = 60


def binary_vector(d):
    return st.lists(st.integers(0, 1), min_size=d, max_size=d).map(
        lambda bits: np.array(bits, dtype=np.int64)
    )


class TestSignedEmbeddingProperties:
    @given(x=binary_vector(8), y=binary_vector(8))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_gap_guarantee(self, x, y):
        emb = SignedCoordinateEmbedding(8)
        assert emb.gap_holds(x, y)

    @given(x=binary_vector(8), y=binary_vector(8))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_inner_product_closed_form(self, x, y):
        emb = SignedCoordinateEmbedding(8)
        value = emb.embed_left(x) @ emb.embed_right(y)
        assert value == emb.embedded_inner_product(int(x @ y))

    @given(x=binary_vector(8))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_output_alphabet(self, x):
        emb = SignedCoordinateEmbedding(8)
        assert set(np.unique(emb.embed_left(x))) <= {-1.0, 1.0}
        assert set(np.unique(emb.embed_right(x))) <= {-1.0, 1.0}


class TestChebyshevEmbeddingProperties:
    @given(x=binary_vector(5), y=binary_vector(5))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_gap_guarantee(self, x, y):
        emb = ChebyshevSignEmbedding(d=5, q=2)
        assert emb.gap_holds(x, y)

    @given(x=binary_vector(5), y=binary_vector(5))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_realizes_scaled_chebyshev(self, x, y):
        emb = ChebyshevSignEmbedding(d=5, q=2)
        value = emb.embed_left(x) @ emb.embed_right(y)
        assert abs(value - emb.embedded_inner_product(int(x @ y))) < 1e-6

    @given(x=binary_vector(5))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_output_alphabet(self, x):
        emb = ChebyshevSignEmbedding(d=5, q=2)
        assert set(np.unique(emb.embed_left(x))) <= {-1.0, 1.0}


class TestChoppedEmbeddingProperties:
    @given(x=binary_vector(10), y=binary_vector(10), k=st.integers(1, 5))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_gap_guarantee(self, x, y, k):
        emb = ChoppedBinaryEmbedding(d=10, k=k)
        assert emb.gap_holds(x, y)

    @given(x=binary_vector(10), y=binary_vector(10), k=st.integers(1, 5))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_counts_clean_chunks(self, x, y, k):
        emb = ChoppedBinaryEmbedding(d=10, k=k)
        value = emb.embed_left(x) @ emb.embed_right(y)
        assert value == emb.embedded_inner_product(x, y)

    @given(x=binary_vector(10), k=st.integers(1, 5))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_output_alphabet(self, x, k):
        emb = ChoppedBinaryEmbedding(d=10, k=k)
        assert set(np.unique(emb.embed_left(x))) <= {0.0, 1.0}
        assert set(np.unique(emb.embed_right(x))) <= {0.0, 1.0}

    @given(x=binary_vector(10), y=binary_vector(10))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_orthogonality_detected_exactly(self, x, y):
        # The k=d embedding value equals d iff the pair is orthogonal.
        emb = ChoppedBinaryEmbedding(d=10, k=10)
        value = emb.embed_left(x) @ emb.embed_right(y)
        if int(x @ y) == 0:
            assert value == 10.0
        else:
            assert value <= 9.0
