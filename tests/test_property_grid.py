"""Property-based tests: the Figure 1 grid partition on arbitrary sizes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowerbounds import lower_triangle_partition, square_containing
from repro.lowerbounds.grid import grid_side, left_squares, top_squares


class TestPartitionProperties:
    @given(ell=st.integers(1, 7))
    @settings(max_examples=20, deadline=None)
    def test_exact_cover(self, ell):
        n = grid_side(ell)
        covered = 0
        seen = set()
        for sq in lower_triangle_partition(ell):
            for node in sq.nodes():
                assert node not in seen
                seen.add(node)
                covered += 1
        assert covered == n * (n + 1) // 2

    @given(ell=st.integers(1, 7), data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_square_containing_consistent(self, ell, data):
        n = grid_side(ell)
        i = data.draw(st.integers(0, n - 1))
        j = data.draw(st.integers(i, n - 1))
        sq = square_containing(ell, i, j)
        assert sq.contains(i, j)
        assert sq in lower_triangle_partition(ell)

    @given(ell=st.integers(2, 6))
    @settings(max_examples=15, deadline=None)
    def test_left_and_top_regions_disjoint_from_square(self, ell):
        for sq in lower_triangle_partition(ell):
            own = set(sq.nodes())
            for other in left_squares(ell, sq) + top_squares(ell, sq):
                assert own.isdisjoint(set(other.nodes()))

    @given(ell=st.integers(2, 6))
    @settings(max_examples=15, deadline=None)
    def test_left_top_symmetry_counts(self, ell):
        # The left and top sub-triangles are congruent: equal square counts.
        for sq in lower_triangle_partition(ell):
            assert len(left_squares(ell, sq)) == len(top_squares(ell, sq))

    @given(ell=st.integers(1, 7))
    @settings(max_examples=20, deadline=None)
    def test_total_square_count(self, ell):
        # sum_r 2^{ell-r-1} = 2^ell - 1 squares in total.
        assert len(lower_triangle_partition(ell)) == (1 << ell) - 1
