"""Property-based tests: join result invariants on arbitrary instances."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import JoinSpec, brute_force_join, norm_pruned_join, self_join

finite = st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False)


def matrix(rows, cols):
    return arrays(np.float64, (rows, cols), elements=finite)


class TestJoinInvariants:
    @given(P=matrix(8, 4), Q=matrix(5, 4), s=st.floats(0.1, 5.0), c=st.floats(0.1, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_matches_clear_relaxed_threshold(self, P, Q, s, c):
        spec = JoinSpec(s=s, c=c)
        result = brute_force_join(P, Q, spec)
        for qi, match in enumerate(result.matches):
            if match is not None:
                assert float(P[match] @ Q[qi]) >= spec.cs - 1e-9

    @given(P=matrix(8, 4), Q=matrix(5, 4), s=st.floats(0.1, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_unsigned_matches_at_least_signed(self, P, Q, s):
        signed = brute_force_join(P, Q, JoinSpec(s=s, signed=True))
        unsigned = brute_force_join(P, Q, JoinSpec(s=s, signed=False))
        assert unsigned.matched_count >= signed.matched_count

    @given(P=matrix(8, 4), Q=matrix(5, 4), s=st.floats(0.1, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_recall_against_self_is_one(self, P, Q, s):
        result = brute_force_join(P, Q, JoinSpec(s=s))
        assert result.recall_against(result) == 1.0

    @given(
        P=matrix(8, 4), Q=matrix(5, 4),
        s=st.floats(0.1, 5.0), c=st.floats(0.1, 0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_norm_pruned_agrees_with_brute_force(self, P, Q, s, c):
        spec = JoinSpec(s=s, c=c, signed=False)
        a = norm_pruned_join(P, Q, spec)
        b = brute_force_join(P, Q, spec)
        for qi in range(Q.shape[0]):
            x, y = a.matches[qi], b.matches[qi]
            assert (x is None) == (y is None)
            if x is not None:
                assert abs(abs(P[x] @ Q[qi]) - abs(P[y] @ Q[qi])) < 1e-9

    @given(P=matrix(6, 3), s=st.floats(0.1, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_self_join_never_matches_self(self, P, s):
        result = self_join(P, JoinSpec(s=s, signed=False))
        for i, match in enumerate(result.matches):
            assert match != i

    @given(P=matrix(8, 4), Q=matrix(5, 4), s=st.floats(0.1, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_lower_threshold_matches_superset(self, P, Q, s):
        low = brute_force_join(P, Q, JoinSpec(s=s * 0.5))
        high = brute_force_join(P, Q, JoinSpec(s=s))
        for lo, hi in zip(low.matches, high.matches):
            if hi is not None:
                assert lo is not None
