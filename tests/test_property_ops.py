"""Property-based tests: the ⊕/⊗ inner-product calculus on arbitrary vectors."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.embeddings.ops import (
    concat_vectors,
    repeat_vector,
    tensor_vectors,
)

MAX_EXAMPLES = 80

finite_floats = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)


def vec(size):
    return arrays(np.float64, size, elements=finite_floats)


class TestInnerProductCalculus:
    @given(x1=vec(4), x2=vec(3), y1=vec(4), y2=vec(3))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_tensor_multiplies(self, x1, x2, y1, y2):
        lhs = tensor_vectors(x1, x2) @ tensor_vectors(y1, y2)
        rhs = (x1 @ y1) * (x2 @ y2)
        assert abs(lhs - rhs) <= 1e-6 * max(1.0, abs(rhs))

    @given(x1=vec(4), x2=vec(3), y1=vec(4), y2=vec(3))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_concat_adds(self, x1, x2, y1, y2):
        lhs = concat_vectors(x1, x2) @ concat_vectors(y1, y2)
        rhs = x1 @ y1 + x2 @ y2
        assert abs(lhs - rhs) <= 1e-6 * max(1.0, abs(rhs))

    @given(x=vec(5), y=vec(5), n=st.integers(0, 6))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_repeat_scales(self, x, y, n):
        lhs = repeat_vector(x, n) @ repeat_vector(y, n)
        rhs = n * (x @ y)
        assert abs(lhs - rhs) <= 1e-6 * max(1.0, abs(rhs))

    @given(x=vec(3), y=vec(3), z=vec(3), w=vec(3))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_tensor_distributes_over_sums_of_products(self, x, y, z, w):
        # <x⊗y ⊕ z⊗w, a⊗b ⊕ c⊗d> pattern used throughout Lemma 3:
        # check with a = x, b = y, c = z, d = w.
        left = concat_vectors(tensor_vectors(x, y), tensor_vectors(z, w))
        value = left @ left
        expected = (x @ x) * (y @ y) + (z @ z) * (w @ w)
        assert abs(value - expected) <= 1e-6 * max(1.0, abs(expected))

    @given(x=vec(4), y=vec(3))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_tensor_dimension(self, x, y):
        assert tensor_vectors(x, y).size == 12

    @given(x=vec(4), y=vec(4), scale=st.floats(-5, 5, allow_nan=False))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_tensor_bilinearity(self, x, y, scale):
        lhs = tensor_vectors(scale * x, y)
        rhs = scale * tensor_vectors(x, y)
        np.testing.assert_allclose(lhs, rhs, atol=1e-6)
