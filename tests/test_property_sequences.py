"""Property-based tests: hard sequences satisfy Lemma 4 for arbitrary params."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.lowerbounds import geometric_sequences, shifted_affine_sequences


class TestGeometricProperties:
    @given(
        s=st.floats(0.005, 0.2),
        c=st.floats(0.2, 0.8),
        U=st.floats(1.0, 16.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_one_dimensional_always_valid(self, s, c, U):
        assume(s <= c * U)
        seqs = geometric_sequences(s=s, c=c, U=U, d=1)
        ips = seqs.inner_products()
        n = seqs.n
        rows, cols = np.indices((n, n))
        assert (ips[cols >= rows] >= seqs.s - 1e-9).all()
        below = ips[cols < rows]
        if below.size:
            assert (np.abs(below) <= seqs.cs + 1e-9).all()

    @given(
        s=st.floats(0.002, 0.05),
        c=st.floats(0.3, 0.7),
        d_half=st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_multidimensional_valid_when_constructible(self, s, c, d_half):
        U = 2.0
        try:
            seqs = geometric_sequences(s=s, c=c, U=U, d=2 * d_half)
        except ParameterError:
            assume(False)
        assert np.linalg.norm(seqs.P, axis=1).max() <= 1 + 1e-9
        assert np.linalg.norm(seqs.Q, axis=1).max() <= U + 1e-9


class TestAffineProperties:
    @given(
        s=st.floats(0.005, 0.1),
        c=st.floats(0.2, 0.8),
        U=st.floats(1.0, 8.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_dimensional_always_valid(self, s, c, U):
        assume(s < U / 4)
        seqs = shifted_affine_sequences(s=s, c=c, U=U, d=2)
        ips = seqs.inner_products()
        n = seqs.n
        rows, cols = np.indices((n, n))
        assert (ips[cols >= rows] >= seqs.s - 1e-9).all()
        below = ips[cols < rows]
        if below.size:
            assert (below <= seqs.cs + 1e-9).all()

    @given(s=st.floats(0.005, 0.05), c=st.floats(0.3, 0.7))
    @settings(max_examples=30, deadline=None)
    def test_length_lower_bound(self, s, c):
        # n >= sqrt((U-s)/(s(1-c))) by construction.
        U = 4.0
        seqs = shifted_affine_sequences(s=s, c=c, U=U, d=2)
        assert seqs.n >= math.sqrt((U - s) / (s * (1 - c))) - 1
