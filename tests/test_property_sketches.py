"""Property-based tests: sketch linearity and norm bracketing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sketches import LKappaSketch
from repro.sketches.stable import kappa_norm, norm_ratio_bound

N = 64
finite = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)


def vector():
    return arrays(np.float64, N, elements=finite)


class TestSketchLinearity:
    @given(x=vector(), y=vector(), a=st.floats(-3, 3, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_linear_map(self, x, y, a):
        sk = LKappaSketch(N, 3.0, copies=3, seed=0)
        np.testing.assert_allclose(
            sk.apply(a * x + y), a * sk.apply(x) + sk.apply(y), atol=1e-6
        )

    @given(x=vector())
    @settings(max_examples=40, deadline=None)
    def test_homogeneous_estimate(self, x):
        sk = LKappaSketch(N, 3.0, copies=5, seed=1)
        e1 = sk.estimate(x)
        e2 = sk.estimate(2.0 * x)
        assert abs(e2 - 2.0 * e1) <= 1e-6 * max(1.0, e1)


class TestNormBracketing:
    @given(x=vector(), kappa=st.sampled_from([2.0, 3.0, 4.0, 8.0]))
    @settings(max_examples=60, deadline=None)
    def test_kappa_norm_brackets_inf_norm(self, x, kappa):
        inf_norm = float(np.abs(x).max(initial=0.0))
        k_norm = kappa_norm(x, kappa)
        assert inf_norm - 1e-9 <= k_norm <= norm_ratio_bound(N, kappa) * inf_norm + 1e-9

    @given(x=vector())
    @settings(max_examples=40, deadline=None)
    def test_norms_decreasing_in_kappa(self, x):
        norms = [kappa_norm(x, k) for k in (1.0, 2.0, 4.0, 16.0)]
        for a, b in zip(norms, norms[1:]):
            assert a >= b - 1e-9

    @given(x=vector())
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, x):
        y = np.roll(x, 1)
        for kappa in (2.0, 3.0):
            assert kappa_norm(x + y, kappa) <= kappa_norm(x, kappa) + kappa_norm(y, kappa) + 1e-9
