"""Property tests for the compact tier's kernels.

The load-bearing guarantee: the int8 scan's survivor sets contain every
true match (the analytic error bound really bounds the quantization
error), across edge cases — all-zero rows, extreme norms, dimensions
that don't divide the pack/block sizes — so the quantized backend's
exactness claim rests on tested ground, not on the bench workload.
"""

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.quant import (
    FLOAT32_EXACT_D,
    IPSketchFilter,
    dequantize_rows,
    hamming_scores,
    pack_sign_rows,
    pair_error_bounds,
    popcount_words,
    quantize_rows,
    quantized_scan_survivors,
    sign_ip_scores,
)
from repro.quant.scalar import resolve_accumulate


def _random_rows(rng, n, d, scale=1.0):
    return scale * rng.standard_normal((n, d))


def _awkward_rows(rng, n, d):
    """Rows exercising the scan's edge cases in one matrix."""
    X = rng.standard_normal((n, d))
    X[0] = 0.0  # all-zero row: scale 0, codes 0
    X[1] *= 1e-12  # tiny norm
    X[2] *= 1e12  # huge norm
    if n > 3:
        X[3, :] = 0.0
        X[3, 0] = 5.0  # single spike: max |x| >> typical |x|
    return X


class TestScalarQuantization:
    @pytest.mark.parametrize("d", [1, 16, 33, 64])
    def test_roundtrip_error_within_half_scale(self, rng, d):
        X = _random_rows(rng, 20, d)
        q = quantize_rows(X)
        err = np.abs(X - dequantize_rows(q))
        # rint rounds to nearest: per-coordinate error <= scale / 2.
        assert np.all(err <= 0.5 * q.scales[:, None] * (1 + 1e-12))
        assert np.allclose(q.norms, np.linalg.norm(X, axis=1))
        assert np.allclose(q.eps, 0.5 * q.scales * math.sqrt(d))

    def test_zero_rows_are_exact(self, rng):
        X = _random_rows(rng, 5, 8)
        X[2] = 0.0
        q = quantize_rows(X)
        assert q.scales[2] == 0.0
        assert not q.codes[2].any()
        assert np.array_equal(dequantize_rows(q)[2], np.zeros(8))

    @pytest.mark.parametrize("scale", [1e-12, 1.0, 1e12])
    def test_extreme_norms_roundtrip(self, rng, scale):
        X = _random_rows(rng, 10, 24, scale=scale)
        q = quantize_rows(X)
        err = np.abs(X - dequantize_rows(q))
        assert np.all(err <= 0.5 * q.scales[:, None] * (1 + 1e-12))

    def test_nbytes_counts_all_arrays(self, rng):
        q = quantize_rows(_random_rows(rng, 7, 64))
        assert q.nbytes == 7 * 64 + 3 * 7 * 8
        assert q.n == 7 and q.d == 64

    def test_pair_error_bounds_dominate_empirical_error(self, rng):
        P = _awkward_rows(rng, 30, 33)
        Q = _awkward_rows(rng, 12, 33)
        qp, qq = quantize_rows(P), quantize_rows(Q)
        true = Q @ P.T
        approx = dequantize_rows(qq) @ dequantize_rows(qp).T
        bound = pair_error_bounds(qp, qq)
        assert np.all(np.abs(true - approx) <= bound * (1 + 1e-9) + 1e-12)

    def test_resolve_accumulate(self):
        assert resolve_accumulate("auto", FLOAT32_EXACT_D) == "float32"
        assert resolve_accumulate("auto", FLOAT32_EXACT_D + 1) == "int32"
        assert resolve_accumulate("int32", 8) == "int32"


class TestScanSurvivors:
    @pytest.mark.parametrize("signed", [True, False])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("d", [1, 33, 64])
    def test_survivors_contain_all_true_matches(self, signed, seed, d):
        rng = np.random.default_rng(seed)
        P = _awkward_rows(rng, 80, d)
        Q = _awkward_rows(rng, 25, d)
        qp, qq = quantize_rows(P), quantize_rows(Q)
        scores = Q @ P.T if signed else np.abs(Q @ P.T)
        cs = float(np.quantile(scores, 0.9))
        cand, generated, max_bound = quantized_scan_survivors(
            qp, qq, cs, signed, scan_block=32
        )
        assert generated == sum(int(c.size) for c in cand)
        assert max_bound >= 0.0
        for j, lst in enumerate(cand):
            assert np.all(np.diff(lst) > 0)  # ascending, unique
            true = np.nonzero(scores[j] >= cs)[0]
            missing = np.setdiff1d(true, lst)
            assert missing.size == 0, (
                f"query {j} lost true matches {missing}"
            )

    def test_int32_and_float32_accumulate_consistent(self, rng):
        # The scale-folded float32 path thresholds per query exactly;
        # the int32 path divides out a block-max point scale and is
        # strictly looser.  Both must keep every true match; float32
        # survivors must be a subset of int32's.
        P = _random_rows(rng, 60, 48)
        Q = _random_rows(rng, 15, 48)
        qp, qq = quantize_rows(P), quantize_rows(Q)
        cs = 1.5
        a = quantized_scan_survivors(qp, qq, cs, True, accumulate="float32")
        b = quantized_scan_survivors(qp, qq, cs, True, accumulate="int32")
        assert a[1] <= b[1]
        scores = Q @ P.T
        for j, (x, y) in enumerate(zip(a[0], b[0])):
            assert np.setdiff1d(x, y).size == 0
            true = np.nonzero(scores[j] >= cs)[0]
            assert np.setdiff1d(true, x).size == 0

    def test_all_zero_inputs_survive_nothing_above_zero(self):
        Z = np.zeros((10, 16))
        qz = quantize_rows(Z)
        cand, generated, _ = quantized_scan_survivors(qz, qz, 0.5, True)
        assert generated == 0
        assert all(c.size == 0 for c in cand)

    def test_nonpositive_threshold_survives_everything(self, rng):
        # rhs <= 0 means the bound alone bridges the threshold: the scan
        # must keep every pair rather than divide by a zero denominator.
        P = _random_rows(rng, 12, 8, scale=1e-9)
        Q = _random_rows(rng, 4, 8, scale=1e-9)
        cand, generated, _ = quantized_scan_survivors(
            quantize_rows(P), quantize_rows(Q), 1e-30, True
        )
        assert generated == 4 * 12


class TestBitPack:
    def test_popcount_words_matches_python(self, rng):
        words = rng.integers(0, 2**64, size=(5, 3), dtype=np.uint64)
        expected = np.vectorize(lambda w: bin(int(w)).count("1"))(words)
        assert np.array_equal(popcount_words(words), expected)

    @pytest.mark.parametrize("d", [1, 33, 64, 65, 130])
    def test_hamming_matches_naive(self, rng, d):
        P = rng.standard_normal((20, d))
        Q = rng.standard_normal((7, d))
        P[0] = 0.0  # zero coords count as sign -1 in both operands
        ham = hamming_scores(pack_sign_rows(Q), pack_sign_rows(P), block=8)
        naive = ((Q > 0)[:, None, :] != (P > 0)[None, :, :]).sum(axis=-1)
        assert np.array_equal(ham, naive)

    @pytest.mark.parametrize("d", [33, 64])
    def test_sign_ip_matches_dense_sign_product(self, rng, d):
        P = rng.standard_normal((15, d))
        Q = rng.standard_normal((6, d))
        got = sign_ip_scores(pack_sign_rows(Q), pack_sign_rows(P), d)
        signs_p = np.where(P > 0, 1.0, -1.0)
        signs_q = np.where(Q > 0, 1.0, -1.0)
        assert np.array_equal(got, (signs_q @ signs_p.T).astype(np.int64))


class TestIPSketchFilter:
    @pytest.mark.parametrize("bits", [8, 1])
    @pytest.mark.parametrize("signed", [True, False])
    def test_planted_pairs_survive(self, bits, signed):
        rng = np.random.default_rng(7)
        d, n, m, planted = 96, 300, 40, 10
        P = rng.standard_normal((n, d))
        P /= np.linalg.norm(P, axis=1, keepdims=True)
        Q = rng.standard_normal((m, d))
        Q /= np.linalg.norm(Q, axis=1, keepdims=True)
        rho = 0.9
        idx = rng.choice(n, size=planted, replace=False)
        noise = rng.standard_normal((planted, d))
        noise /= np.linalg.norm(noise, axis=1, keepdims=True)
        Q[:planted] = rho * P[idx] + math.sqrt(1 - rho * rho) * noise
        Q[:planted] /= np.linalg.norm(Q[:planted], axis=1, keepdims=True)
        filt = IPSketchFilter(P, n_dims=64, bits=bits, z=3.0, seed=3)
        threshold = 0.8
        lists, generated, margin = filt.propose_chunk(Q, threshold, signed)
        assert len(lists) == m
        assert margin > 0.0
        assert generated == sum(int(lst.size) for lst in lists)
        true_scores = Q @ P.T if signed else np.abs(Q @ P.T)
        for j in range(m):
            true = np.nonzero(true_scores[j] >= threshold)[0]
            # z=3 sigma margin: all planted pairs survive at these sizes.
            assert np.setdiff1d(true, lists[j]).size == 0

    def test_filter_is_selective(self):
        rng = np.random.default_rng(11)
        d, n, m = 128, 400, 50
        P = rng.standard_normal((n, d))
        P /= np.linalg.norm(P, axis=1, keepdims=True)
        Q = rng.standard_normal((m, d))
        Q /= np.linalg.norm(Q, axis=1, keepdims=True)
        filt = IPSketchFilter(P, n_dims=64, bits=8, z=3.0, seed=0)
        _, generated, _ = filt.propose_chunk(Q, 0.8, True)
        # Random unit pairs concentrate near 0 << 0.8: the filter must
        # discard the overwhelming majority.
        assert generated < 0.2 * n * m

    def test_seed_determinism(self, rng):
        P = rng.standard_normal((50, 32))
        Q = rng.standard_normal((9, 32))
        a = IPSketchFilter(P, n_dims=16, seed=5).propose_chunk(Q, 2.0, True)
        b = IPSketchFilter(P, n_dims=16, seed=5).propose_chunk(Q, 2.0, True)
        for x, y in zip(a[0], b[0]):
            assert np.array_equal(x, y)

    def test_nbytes_reported(self, rng):
        P = rng.standard_normal((50, 32))
        for bits in (8, 1):
            filt = IPSketchFilter(P, n_dims=16, bits=bits)
            assert filt.nbytes > 0
            assert filt.n == 50
