"""Engine integration tests for the compact tier.

What must hold once ``quantized`` and ``ip_filter`` enter the engine:

* ``quantized`` is bit-identical to ``brute_force`` on every variant it
  answers — the int8 scan is a lossless *filter*, not an approximation;
* the execution knobs compose: ``n_workers`` (both pool kinds),
  ``sharded_join``, explicit Plans, and the shared arena all treat the
  new structures like any other backend's;
* the filter-stage Plan IR is validated (a filter cannot be last, must
  feed an all-queries backend stage, cannot answer a join alone) and the
  ``ip_filter -> quantized`` plan achieves near-perfect recall while
  verifying a fraction of the pair space;
* the planner prices the compact tier: ``ip_filter`` alone is
  infeasible, the hybrid appears for gapped specs, and a memory budget
  steers ``backend="auto"`` to ``quantized``.
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.core import JoinSpec
from repro.core.arena import SharedArena, freeze, thaw
from repro.engine import (
    Plan,
    Stage,
    get_backend,
    join,
    plan_join,
    quantized_filter_plan,
    sharded_join,
)
from repro.engine.planner import default_model
from repro.errors import ParameterError

TEST_WORKERS = 2


@pytest.fixture(scope="module")
def instance():
    """Normalized rows with a few awkward ones (zero, tiny, huge norms)."""
    rng = np.random.default_rng(23)
    P = rng.standard_normal((300, 24))
    P /= np.linalg.norm(P, axis=1, keepdims=True)
    Q = rng.standard_normal((60, 24))
    Q /= np.linalg.norm(Q, axis=1, keepdims=True)
    P[0] = 0.0
    P[1] *= 1e-9
    P[2] *= 1e6
    Q[0] = 0.0
    Q[1] *= 1e-9
    return P, Q


@pytest.fixture(scope="module")
def planted():
    """High-d instance with planted near-duplicates in the (cs, s) gap."""
    rng = np.random.default_rng(5)
    d, n, m, k, rho = 128, 800, 120, 30, 0.92
    P = rng.standard_normal((n, d))
    P /= np.linalg.norm(P, axis=1, keepdims=True)
    Q = rng.standard_normal((m, d))
    Q /= np.linalg.norm(Q, axis=1, keepdims=True)
    idx = rng.choice(n, size=k, replace=False)
    noise = rng.standard_normal((k, d))
    noise /= np.linalg.norm(noise, axis=1, keepdims=True)
    Q[:k] = rho * P[idx] + math.sqrt(1 - rho * rho) * noise
    Q[:k] /= np.linalg.norm(Q[:k], axis=1, keepdims=True)
    return P, Q


class TestQuantizedExactness:
    @pytest.mark.parametrize("signed", [True, False])
    @pytest.mark.parametrize("k", [None, 3])
    def test_bit_identical_to_brute(self, instance, signed, k):
        P, Q = instance
        spec = JoinSpec(s=0.5, c=0.8, signed=signed, k=k)
        brute = join(P, Q, spec, backend="brute_force")
        quant = join(P, Q, spec, backend="quantized")
        assert quant.matches == brute.matches
        assert quant.topk == brute.topk
        assert quant.backend == "quantized"
        assert quant.error_bound is not None and quant.error_bound >= 0.0

    def test_scan_prunes_the_pair_space(self, instance):
        P, Q = instance
        spec = JoinSpec(s=0.6, c=0.9, signed=True)
        brute = join(P, Q, spec, backend="brute_force")
        quant = join(P, Q, spec, backend="quantized")
        # Verification touches survivors only; brute touches every pair.
        assert quant.inner_products_evaluated < (
            brute.inner_products_evaluated
        )

    def test_accumulate_modes_agree(self, instance):
        P, Q = instance
        spec = JoinSpec(s=0.5, c=0.8, signed=True)
        a = join(P, Q, spec, backend="quantized", accumulate="float32")
        b = join(P, Q, spec, backend="quantized", accumulate="int32")
        assert a.matches == b.matches

    def test_float32_rejected_beyond_exact_dim(self, rng):
        from repro.quant import FLOAT32_EXACT_D

        d = FLOAT32_EXACT_D + 1
        P = rng.standard_normal((4, d))
        Q = rng.standard_normal((2, d))
        spec = JoinSpec(s=1.0, c=0.5, signed=True)
        with pytest.raises(ParameterError, match="float32"):
            join(P, Q, spec, backend="quantized", accumulate="float32")
        # auto silently falls back to int32 at this dimension
        join(P, Q, spec, backend="quantized")

    def test_option_validation(self, instance):
        P, Q = instance
        spec = JoinSpec(s=0.5, c=0.8, signed=True)
        with pytest.raises(ParameterError, match="accumulate"):
            join(P, Q, spec, backend="quantized", accumulate="int64")
        with pytest.raises(ParameterError, match="scan_block"):
            join(P, Q, spec, backend="quantized", scan_block=0)
        with pytest.raises(ParameterError, match="quantized takes only"):
            join(P, Q, spec, backend="quantized", kappa=2)
        with pytest.raises(ParameterError, match="variant"):
            spec_self = JoinSpec(s=0.5, c=0.8, self_join=True)
            join(P, None, spec_self, backend="quantized")


class TestCompactTierComposition:
    @pytest.mark.parametrize("pool", ["process", "thread"])
    def test_quantized_parallel_identical_to_serial(self, instance, pool):
        P, Q = instance
        spec = JoinSpec(s=0.5, c=0.8, signed=True)
        serial = join(P, Q, spec, backend="quantized", n_workers=1)
        par = join(
            P, Q, spec, backend="quantized",
            n_workers=TEST_WORKERS, pool=pool, block=16,
        )
        assert par.matches == serial.matches
        assert par.inner_products_evaluated == (
            serial.inner_products_evaluated
        )
        assert par.error_bound == serial.error_bound

    @pytest.mark.parametrize("pool", ["process", "thread"])
    def test_filter_plan_parallel_identical_to_serial(self, planted, pool):
        P, Q = planted
        spec = JoinSpec(s=0.85, c=0.7, signed=True)
        the_plan = quantized_filter_plan()
        serial = join(P, Q, spec, backend=the_plan, seed=7, n_workers=1)
        par = join(
            P, Q, spec, backend=the_plan, seed=7,
            n_workers=TEST_WORKERS, pool=pool, block=16,
        )
        assert par.matches == serial.matches
        assert par.candidates_generated == serial.candidates_generated
        assert par.error_bound == serial.error_bound

    def test_sharded_join_composes(self, instance):
        P, Q = instance
        spec = JoinSpec(s=0.5, c=0.8, signed=True)
        brute = sharded_join(P, Q, spec, 3, backend="brute_force")
        quant = sharded_join(P, Q, spec, 3, backend="quantized")
        assert quant.matches == brute.matches
        assert quant.backend == "quantized@3shards"

    def test_structure_freezes_through_arena(self, instance):
        P, Q = instance
        spec = JoinSpec(s=0.5, c=0.8, signed=True)
        impl = get_backend("quantized")
        payload, final_spec = impl.prepare(P, spec, block=64, n_workers=1)
        structure = payload.build(P)
        direct = impl.run_chunk(structure, P, Q, 0)
        with SharedArena() as arena:
            blob = freeze(structure, arena)
            thawed = thaw(blob)
            assert np.array_equal(thawed.data.codes, structure.data.codes)
            assert np.array_equal(thawed.data.scales, structure.data.scales)
            roundtrip = impl.run_chunk(thawed, P, Q, 0)
            assert roundtrip.matches == direct.matches


class TestFilterPlan:
    def test_recall_and_selectivity(self, planted):
        P, Q = planted
        n, m = P.shape[0], Q.shape[0]
        spec = JoinSpec(s=0.85, c=0.7, signed=True)
        brute = join(P, Q, spec, backend="brute_force")
        filt = join(
            P, Q, spec,
            backend=quantized_filter_plan(filter_options={"n_dims": 64}),
            seed=7,
        )
        assert filt.backend == "ip_filter+quantized"
        assert filt.error_bound is not None and filt.error_bound > 0.0
        truth = {q for q, p in enumerate(brute.matches) if p is not None}
        got = {q for q, p in enumerate(filt.matches) if p is not None}
        assert truth, "planted instance must have matches"
        recall = len(truth & got) / len(truth)
        assert recall >= 0.99
        # Every answered query's partner clears cs (exact verification).
        for q, p in enumerate(filt.matches):
            if p is not None:
                assert float(P[p] @ Q[q]) >= spec.cs - 1e-9
        # The exact GEMM ran on survivors only, not the full pair space.
        assert filt.inner_products_evaluated < 0.25 * n * m

    def test_filter_options_forwarded(self, planted):
        P, Q = planted
        spec = JoinSpec(s=0.85, c=0.7, signed=True)
        result = join(
            P, Q, spec,
            backend=quantized_filter_plan(
                filter_options={"n_dims": 64, "bits": 1, "z": 4.0},
                verify_options={"accumulate": "auto"},
            ),
            seed=3,
        )
        assert result.backend == "ip_filter+quantized"

    def test_filter_cannot_answer_alone(self, planted):
        P, Q = planted
        spec = JoinSpec(s=0.85, c=0.7, signed=True)
        with pytest.raises(ParameterError, match="cannot answer"):
            join(P, Q, spec, backend="ip_filter")

    def test_plan_validation(self):
        with pytest.raises(ParameterError, match="cannot be last"):
            Plan(stages=(Stage(backend="ip_filter", kind="filter"),))
        with pytest.raises(ParameterError, match="consumes its proposals"):
            Plan(stages=(
                Stage(backend="ip_filter", kind="filter"),
                Stage(backend="quantized", queries="unanswered"),
            ))
        with pytest.raises(ParameterError, match="kind"):
            Stage(backend="ip_filter", kind="sieve")
        with pytest.raises(ParameterError, match="queries='all'"):
            Stage(backend="ip_filter", kind="filter", queries="unanswered")
        with pytest.raises(ParameterError, match="kind"):
            # a filter backend inside a kind="backend" stage of a
            # multi-stage plan is a mismatch the engine must reject
            join(
                np.eye(4), np.eye(4),
                JoinSpec(s=0.5, c=0.8, signed=True),
                backend=Plan(stages=(
                    Stage(backend="ip_filter"),
                    Stage(backend="quantized", queries="unanswered"),
                )),
            )

    def test_filter_option_validation(self, planted):
        P, Q = planted
        spec = JoinSpec(s=0.85, c=0.7, signed=True)
        for bad in (
            {"filter_options": {"n_dims": 0}},
            {"filter_options": {"bits": 4}},
            {"filter_options": {"z": 0.0}},
        ):
            with pytest.raises(ParameterError):
                join(
                    P, Q, spec, backend=quantized_filter_plan(**bad), seed=0
                )

    def test_direct_proposals_option(self, instance):
        P, Q = instance
        n, m = P.shape[0], Q.shape[0]
        spec = JoinSpec(s=0.5, c=0.8, signed=True)
        brute = join(P, Q, spec, backend="brute_force")
        # Full candidate lists: verify-only mode must reproduce brute.
        full = [np.arange(n)] * m
        result = join(P, Q, spec, backend="quantized", proposals=full)
        assert result.matches == brute.matches
        assert result.inner_products_evaluated == n * m
        with pytest.raises(ParameterError, match=">= n"):
            join(
                P, Q, spec, backend="quantized",
                proposals=[np.array([n])] * m,
            )
        with pytest.raises(ParameterError, match="negative"):
            join(
                P, Q, spec, backend="quantized",
                proposals=[np.array([-1])] * m,
            )
        with pytest.raises(ParameterError, match="one candidate list"):
            join(
                P, Q, spec, backend="quantized",
                proposals=[np.arange(n)] * (m - 1),
            )


class TestPlannerCompactTier:
    def test_ip_filter_standalone_infeasible(self):
        spec = JoinSpec(s=0.85, c=0.7, signed=True)
        ranked = plan_join(10000, 1000, 64, spec)
        by_name = {e.backend: e for e in ranked.estimates}
        assert not by_name["ip_filter"].feasible
        assert "Plan" in by_name["ip_filter"].reason

    def test_hybrid_candidate_for_gap_specs(self):
        spec = JoinSpec(s=0.85, c=0.7, signed=True)
        ranked = plan_join(10000, 1000, 64, spec)
        hybrids = [
            p for p in ranked.plans if p.backend == "ip_filter+quantized"
        ]
        assert len(hybrids) == 1 and hybrids[0].feasible
        assert len(hybrids[0].stage_estimates) == 2

    def test_no_hybrid_for_exact_specs(self):
        spec = JoinSpec(s=0.85, c=1.0, signed=True)
        ranked = plan_join(10000, 1000, 64, spec)
        assert not any(
            p.backend == "ip_filter+quantized" for p in ranked.plans
        )

    def test_memory_budget_steers_auto_to_quantized(self):
        n, m, d = 200000, 2000, 64
        spec = JoinSpec(s=0.85, c=1.0, signed=True)
        base = default_model()
        assert plan_join(n, m, d, spec, base).best_plan.backend != "quantized"
        tight = replace(base, mem_budget_bytes=float(n * d * 4))
        ranked = plan_join(n, m, d, spec, tight)
        assert ranked.best_plan.backend == "quantized"

    def test_memory_factor(self):
        model = default_model()
        assert model.memory_factor(512.0, 1000) == 1.0  # budget off
        tight = replace(
            model, mem_budget_bytes=1e6, mem_over_budget_penalty=8.0
        )
        assert tight.memory_factor(512.0, 1000) == 1.0  # fits
        assert tight.memory_factor(512.0, 100000) == 8.0  # over

    def test_auto_runs_quantized_end_to_end(self, instance):
        P, Q = instance
        spec = JoinSpec(s=0.5, c=1.0, signed=True)
        tight = replace(
            default_model(),
            mem_budget_bytes=float(P.shape[0] * P.shape[1] * 4),
        )
        brute = join(P, Q, spec, backend="brute_force")
        auto = join(P, Q, spec, backend="auto", model=tight)
        assert auto.backend == "quantized"
        assert auto.matches == brute.matches
