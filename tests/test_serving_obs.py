"""Serving telemetry tier: sampler, sink, resources, session wiring.

The load-bearing guarantees under test:

* :class:`~repro.obs.sampler.TraceSampler` is seeded-reproducible, the
  rate cap bounds sampled queries per window, and ``rate=0`` is the
  always-cheap no-op the session relies on;
* :class:`~repro.obs.sink.EventSink` rotates logrotate-style under a
  byte cap, readers reassemble the rotated set in ``seq`` order, and a
  torn trailing line (crash boundary) is skipped rather than fatal;
* resource snapshots read sane RSS / fault counts from ``/proc`` and
  the poller survives a failing ``extra`` callable;
* ``Histogram.quantile`` agrees with exact numpy quantiles to within
  one pow2 bucket, and the exporters carry p50/p95/p99 plus
  ``# HELP`` lines with charset-sanitized metric names;
* a session opened with ``trace_sample_rate`` + ``attach_sink`` writes
  the full event mix (meta, spans, planner, metrics, resource) while
  leaving query results bit-identical to an untelemetered session, and
  ``ShardedSession`` merges per-shard registries into one snapshot.
"""

import json
import os
import re

import numpy as np
import pytest

from repro.core import JoinSpec
from repro.datasets import planted_mips, random_unit
from repro.engine import join, open_session, open_sharded
from repro.errors import ParameterError
from repro.obs import (
    EventSink,
    MetricsRegistry,
    ResourcePoller,
    TraceSampler,
    metrics_to_json,
    metrics_to_prometheus,
    read_events,
    resource_snapshot,
    sink_files,
)
from repro.obs.metrics import POW2_BOUNDS, Histogram
from repro.obs.resources import page_faults, rss_bytes, timeline
from repro.obs.sink import iter_events

LSH = dict(n_tables=6, hashes_per_table=6)


@pytest.fixture(scope="module")
def instance():
    return planted_mips(300, 24, 32, s=0.85, c=0.4, seed=7)


@pytest.fixture(scope="module")
def spec():
    return JoinSpec(s=0.85, c=0.4)


class TestTraceSampler:
    def test_rate_zero_never_samples(self):
        sampler = TraceSampler(0.0)
        assert not any(sampler.should_sample() for _ in range(100))
        assert sampler.stats() == {
            "rate": 0.0, "seen": 100, "sampled": 0, "rate_limited": 0,
        }

    def test_rate_one_always_samples(self):
        sampler = TraceSampler(1.0)
        assert all(sampler.should_sample() for _ in range(50))
        assert sampler.sampled == sampler.seen == 50

    def test_seeded_pattern_reproducible(self):
        a = TraceSampler(0.3, seed=11)
        b = TraceSampler(0.3, seed=11)
        pattern = [a.should_sample() for _ in range(200)]
        assert pattern == [b.should_sample() for _ in range(200)]
        assert any(pattern) and not all(pattern)

    def test_fractional_rate_roughly_holds(self):
        sampler = TraceSampler(0.2, seed=3)
        hits = sum(sampler.should_sample() for _ in range(5000))
        assert 700 <= hits <= 1300  # ~1000 expected

    def test_window_cap_limits_and_counts(self):
        # A huge window: the cap binds for the whole test.
        sampler = TraceSampler(1.0, max_per_window=5, window_s=3600.0)
        decisions = [sampler.should_sample() for _ in range(20)]
        assert sum(decisions) == 5
        assert decisions[:5] == [True] * 5
        assert sampler.rate_limited == 15

    def test_window_reset_readmits(self):
        sampler = TraceSampler(1.0, max_per_window=2, window_s=1e-9)
        # Every decision lands in a fresh window, so the cap never binds.
        assert all(sampler.should_sample() for _ in range(10))

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            TraceSampler(1.5)
        with pytest.raises(ParameterError):
            TraceSampler(-0.1)
        with pytest.raises(ParameterError):
            TraceSampler(0.5, max_per_window=-1)
        with pytest.raises(ParameterError):
            TraceSampler(0.5, window_s=0.0)


class TestEventSink:
    def test_roundtrip_and_seq_order(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventSink(path) as sink:
            for i in range(10):
                sink.emit("metrics", {"i": i})
        events = read_events(path)
        assert [e["seq"] for e in events] == list(range(10))
        assert [e["data"]["i"] for e in events] == list(range(10))
        assert all(e["kind"] == "metrics" for e in events)

    def test_rotation_under_byte_cap(self, tmp_path):
        path = tmp_path / "events.jsonl"
        payload = {"blob": "x" * 200}
        with EventSink(path, max_bytes=1000, max_files=3) as sink:
            for i in range(40):
                sink.emit("span", dict(payload, i=i))
            rotations = sink.rotations
        assert rotations >= 1
        files = sink_files(path)
        # Active file plus at most max_files generations, oldest first.
        assert 2 <= len(files) <= 4
        assert files[-1] == str(path)
        # Readers reassemble what survived in seq order; the newest
        # events are never the ones rotation dropped.
        events = read_events(path)
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 39

    def test_max_files_zero_truncates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventSink(path, max_bytes=500, max_files=0) as sink:
            for i in range(50):
                sink.emit("span", {"blob": "y" * 100, "i": i})
        assert sink_files(path) == [str(path)]

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventSink(path) as sink:
            sink.emit("metrics", {"ok": 1})
            sink.emit("metrics", {"ok": 2})
        with open(path, "a") as fh:
            fh.write('{"kind": "metrics", "ts": 1.0, "seq"')  # torn write
        events = list(iter_events(str(path)))
        assert [e["data"]["ok"] for e in events] == [1, 2]

    def test_emit_after_close_is_noop(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = EventSink(path)
        sink.emit("meta", {})
        sink.close()
        sink.emit("meta", {})  # must not raise or write
        assert len(read_events(path)) == 1

    def test_kind_filter(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventSink(path) as sink:
            sink.emit("span", {})
            sink.emit("resource", {})
            sink.emit("span", {})
        assert len(read_events(path, kinds=["span"])) == 2

    def test_parameter_validation(self, tmp_path):
        with pytest.raises(ParameterError):
            EventSink(tmp_path / "x.jsonl", max_bytes=0)
        with pytest.raises(ParameterError):
            EventSink(tmp_path / "x.jsonl", max_files=-1)


class TestResources:
    def test_snapshot_fields_sane(self):
        snap = resource_snapshot(arena_bytes=123, pool={"pool_rebuilds": 1})
        assert snap.rss_bytes > 1024 * 1024  # a live interpreter
        assert snap.minor_faults >= 0 and snap.major_faults >= 0
        assert snap.arena_bytes == 123
        assert snap.pool == {"pool_rebuilds": 1}
        d = snap.to_dict()
        assert json.dumps(d)  # sinkable
        assert d["rss_is_peak"] == (not os.path.exists("/proc/self/statm"))

    def test_faults_monotonic(self):
        minor0, major0 = page_faults()
        _ = bytearray(4 * 1024 * 1024)  # touch fresh pages
        minor1, major1 = page_faults()
        assert minor1 >= minor0 and major1 >= major0

    def test_rss_tracks_allocation_order(self):
        # Not asserting exact deltas (allocator noise); just that the
        # reading is instantaneous-scale, not absurd.
        assert 1024 * 1024 < rss_bytes() < 1 << 40

    def test_poller_sample_once_and_sink(self, tmp_path):
        sink = EventSink(tmp_path / "r.jsonl")
        poller = ResourcePoller(interval_s=60.0, keep=4,
                                extra=lambda: (77, {"pool_rebuilds": 2}),
                                sink=sink)
        for _ in range(6):
            poller.sample_once()
        assert len(poller.samples) == 4  # ring bounded
        assert all(s.arena_bytes == 77 for s in poller.samples)
        sink.close()
        events = read_events(tmp_path / "r.jsonl", kinds=["resource"])
        assert len(events) == 6
        assert events[0]["data"]["pool"] == {"pool_rebuilds": 2}

    def test_poller_survives_failing_extra(self):
        def boom():
            raise RuntimeError("mid-rebuild")

        poller = ResourcePoller(interval_s=60.0, extra=boom)
        snap = poller.sample_once()
        assert snap.arena_bytes == 0 and snap.pool == {}

    def test_poller_thread_start_stop(self):
        poller = ResourcePoller(interval_s=0.01, keep=64)
        with poller:
            import time
            deadline = time.monotonic() + 2.0
            while not poller.samples and time.monotonic() < deadline:
                time.sleep(0.01)
        assert len(poller.samples) >= 1

    def test_timeline_deltas(self):
        snaps = [resource_snapshot() for _ in range(3)]
        rows = timeline(snaps)
        assert "d_rss_bytes" not in rows[0]
        assert all("d_minor_faults" in row for row in rows[1:])

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            ResourcePoller(interval_s=0)
        with pytest.raises(ParameterError):
            ResourcePoller(keep=0)


class TestHistogramQuantile:
    def test_empty_histogram(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_validates_q(self):
        h = Histogram()
        h.observe(10.0)
        with pytest.raises(ParameterError):
            h.quantile(-0.1)
        with pytest.raises(ParameterError):
            h.quantile(1.5)

    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_within_one_bucket_of_numpy(self, q):
        rng = np.random.default_rng(42)
        values = rng.lognormal(mean=5.0, sigma=2.0, size=50_000)
        h = Histogram()
        h.observe_array(values)
        est = h.quantile(q)
        exact = float(np.quantile(values, q))
        assert abs(h._bucket(est) - h._bucket(exact)) <= 1

    def test_overflow_bucket_returns_top_bound(self):
        h = Histogram()
        h.observe(10.0 * POW2_BOUNDS[-1])
        assert h.quantile(0.99) == POW2_BOUNDS[-1]

    def test_quantiles_convenience(self):
        h = Histogram()
        h.observe_array(np.arange(1.0, 1000.0))
        q50, q95 = h.quantiles((0.5, 0.95))
        assert 0.0 < q50 <= q95


class TestRegistryEdgeCases:
    def test_merge_unknown_kind_ignored(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        snap = reg.snapshot()
        snap["hyperloglogs"] = {"x": {"whatever": 1}}
        reg2 = MetricsRegistry()
        reg2.merge_snapshot(snap)  # must not raise
        assert reg2.snapshot()["counters"]["a"] == 1

    def test_merge_into_disabled_registry_is_noop(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        disabled = MetricsRegistry(enabled=False)
        disabled.merge_snapshot(reg.snapshot())
        snap = disabled.snapshot()
        assert snap.get("counters", {}) == {}
        assert snap.get("histograms", {}) == {}

    def test_merge_empty_snapshot_is_noop(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        before = reg.snapshot()
        reg.merge_snapshot({})
        assert reg.snapshot() == before


class TestExportersServing:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("engine.queries").inc(7)
        h = reg.histogram("session.query latency-us")  # needs sanitizing
        h.observe_array(np.array([3.0, 40.0, 500.0, 6000.0]))
        return reg.snapshot()

    def test_prometheus_help_lines(self):
        text = metrics_to_prometheus(self._snapshot())
        assert "# HELP repro_engine_queries repro metric engine.queries" \
            in text
        custom = metrics_to_prometheus(
            self._snapshot(),
            help_texts={"engine.queries": "total queries served"})
        assert "# HELP repro_engine_queries total queries served" in custom

    def test_prometheus_name_sanitization(self):
        text = metrics_to_prometheus(self._snapshot())
        # ' ' and '-' are outside [a-zA-Z0-9_:] and must be replaced
        # in metric names (HELP text keeps the raw registry name).
        assert "repro_session_query_latency_us_bucket" in text
        token = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name = line.split()[0].split("{")[0]
            assert token.match(name), line

    def test_prometheus_quantile_gauges(self):
        text = metrics_to_prometheus(self._snapshot())
        for tag in ("p50", "p95", "p99"):
            assert f"repro_session_query_latency_us_{tag} " in text
        # Quantiles can be disabled for scrape-side aggregation.
        bare = metrics_to_prometheus(self._snapshot(), quantiles=None)
        assert "_p50" not in bare

    def test_json_quantiles(self):
        payload = json.loads(metrics_to_json(self._snapshot()))
        hist = payload["histograms"]["session.query latency-us"]
        assert set(hist["quantiles"]) == {"0.5", "0.95", "0.99"}
        assert hist["quantiles"]["0.5"] <= hist["quantiles"]["0.99"]
        raw = json.loads(metrics_to_json(self._snapshot(), quantiles=None))
        assert "quantiles" not in raw["histograms"][
            "session.query latency-us"]


class TestSessionServingTelemetry:
    def test_latency_histograms_always_on(self, instance, spec):
        P, Q = instance.P, instance.Q
        with open_session(P, spec, backend="lsh", seed=5, **LSH) as session:
            for _ in range(3):
                session.query(Q)
            snap = session.metrics.snapshot()
        hists = snap["histograms"]
        assert hists["session.query_latency_us"]["count"] == 3
        assert hists["session.stage_latency_us.lsh"]["count"] == 3
        assert snap["counters"]["session.queries"] == 3

    def test_sample_rate_validation(self, instance, spec):
        P = instance.P
        with pytest.raises(ParameterError):
            open_session(P, spec, backend="lsh", seed=5,
                         trace_sample_rate=1.5, **LSH)

    def test_sampling_leaves_results_identical(self, instance, spec):
        P, Q = instance.P, instance.Q
        expected = join(P, Q, spec, backend="lsh", seed=5, **LSH)
        with open_session(P, spec, backend="lsh", seed=5,
                          trace_sample_rate=1.0, **LSH) as session:
            result = session.query(Q)
            sampled = session.metrics.snapshot()["counters"][
                "session.traces_sampled"]
        assert result.matches == expected.matches
        assert result.inner_products_evaluated == \
            expected.inner_products_evaluated
        assert sampled == 1

    def test_attach_sink_end_to_end(self, instance, spec, tmp_path):
        P, Q = instance.P, instance.Q
        path = tmp_path / "telemetry.jsonl"
        with open_session(P, spec, backend="lsh", seed=5,
                          trace_sample_rate=1.0, trace_sample_seed=0,
                          **LSH) as session:
            session.attach_sink(str(path), resource_every=2)
            for _ in range(4):
                session.query(Q)
        events = read_events(path)
        kinds = {e["kind"] for e in events}
        assert {"meta", "span", "planner", "resource", "metrics"} <= kinds
        meta = next(e["data"] for e in events if e["kind"] == "meta")
        assert meta["backend"] == "lsh" and meta["n"] == P.shape[0]
        assert meta["trace_sample_rate"] == 1.0
        spans = [e["data"] for e in events if e["kind"] == "span"]
        assert len(spans) == 4
        assert all(s["name"] == "session.query" for s in spans)
        metrics_events = [e["data"] for e in events if e["kind"] == "metrics"]
        assert "session.query_latency_us" in metrics_events[-1]["histograms"]
        planners = [e["data"] for e in events if e["kind"] == "planner"]
        assert len(planners) == 4

    def test_attach_sink_twice_rejected(self, instance, spec, tmp_path):
        P = instance.P
        with open_session(P, spec, backend="lsh", seed=5, **LSH) as session:
            session.attach_sink(str(tmp_path / "a.jsonl"))
            with pytest.raises(ParameterError):
                session.attach_sink(str(tmp_path / "b.jsonl"))
            session.detach_sink()
            session.attach_sink(str(tmp_path / "b.jsonl"))

    def test_caller_managed_sink_stays_open(self, instance, spec, tmp_path):
        P, Q = instance.P, instance.Q
        sink = EventSink(tmp_path / "shared.jsonl")
        with open_session(P, spec, backend="lsh", seed=5, **LSH) as session:
            session.attach_sink(sink)
            session.query(Q)
        # The session flushed but did not close a sink it does not own.
        sink.emit("meta", {"still": "open"})
        sink.close()
        assert read_events(tmp_path / "shared.jsonl")[-1]["data"] == \
            {"still": "open"}

    def test_poll_resources_lifecycle(self, instance, spec):
        P, Q = instance.P, instance.Q
        with open_session(P, spec, backend="lsh", seed=5, **LSH) as session:
            poller = session.poll_resources(interval_s=0.01, keep=16)
            session.query(Q)
            import time
            deadline = time.monotonic() + 2.0
            while not poller.samples and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(poller.samples) >= 1
        # close() stopped the poller thread.
        assert poller._thread is None

    def test_sampler_cap_knob(self, instance, spec):
        P, Q = instance.P, instance.Q
        with open_session(P, spec, backend="lsh", seed=5,
                          trace_sample_rate=1.0, trace_sample_cap=1,
                          **LSH) as session:
            for _ in range(3):
                session.query(Q)
            stats = session.sampler.stats()
        assert stats["sampled"] == 1 and stats["rate_limited"] == 2


class TestShardedServingTelemetry:
    def test_merged_metrics_snapshot(self, instance, spec):
        P, Q = instance.P, instance.Q
        with open_sharded(P, spec, 2, backend="lsh", seed=5,
                          **LSH) as sharded:
            for _ in range(2):
                sharded.query(Q)
            snap = sharded.metrics_snapshot()
        # Each of the 2 shards served 2 query batches.
        assert snap["counters"]["session.queries"] == 4
        assert snap["histograms"]["session.query_latency_us"]["count"] == 4

    def test_shared_sink_across_shards(self, instance, spec, tmp_path):
        P, Q = instance.P, instance.Q
        path = tmp_path / "sharded.jsonl"
        with open_sharded(P, spec, 2, backend="lsh", seed=5,
                          trace_sample_rate=1.0, **LSH) as sharded:
            sharded.attach_sink(str(path))
            sharded.query(Q)
        events = read_events(path)
        metas = [e for e in events if e["kind"] == "meta"]
        spans = [e for e in events if e["kind"] == "span"]
        assert len(metas) == 2  # one per shard
        assert len(spans) == 2  # every shard's query sampled
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
