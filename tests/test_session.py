"""Session engine tests: build once, query many times, serve from disk.

The load-bearing guarantees under test:

* ``session.query(Q)`` is bit-identical to ``engine.join(P, Q, spec)``
  with the same plan, seed, and worker configuration — for every
  backend, hybrid Plans, top-k, self-join, and both pool kinds;
* repeated queries reuse the prepared structures: stage prepares happen
  once at open (deferred hybrid stages are the documented per-query
  exception), the owned pool's pinned arena segments stay stable across
  queries, and ``/dev/shm`` is clean after ``close()`` — even after a
  worker crash mid-query, which the session heals from;
* ``session.save(path)`` → ``engine.open_path(path)`` round-trips the
  prepared session through the directory format with memmapped arrays,
  and truncated sidecars fail loudly with :class:`PersistenceError`;
* ``query_stream`` over chunk iterators and memmapped files reproduces
  the in-memory batch exactly;
* the ``auto`` planner amortizes build cost over ``expected_queries``,
  and every session query's planner-log record carries the amortization
  tags the regret report splits on.

The CI parallel leg's ``REPRO_TEST_WORKERS`` applies here too.
"""

import os

import numpy as np
import pytest

from repro.core import JoinSpec, WorkerPool, map_query_chunks
from repro.core.arena import repro_segments
from repro.core.executor import QuerySource
from repro.datasets import planted_mips
from repro.engine import (
    JoinSession,
    join,
    norm_prefix_lsh_plan,
    open_path,
    open_session,
    open_sharded,
    plan_join,
    sharded_join,
)
from repro.errors import ParameterError
from repro.obs import PlannerLog, use_planner_log
from repro.utils.persistence import PersistenceError

#: Worker count of the equivalence matrix; the CI parallel leg overrides.
TEST_WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

LSH = dict(n_tables=6, hashes_per_table=6)


@pytest.fixture(scope="module")
def instance():
    return planted_mips(300, 24, 32, s=0.85, c=0.4, seed=7)


@pytest.fixture(scope="module")
def spec():
    return JoinSpec(s=0.85, c=0.4, signed=False)


def _key(result):
    """Everything that must be bit-identical across dispatch paths."""
    s = result.stats
    return (
        result.matches,
        result.topk,
        result.inner_products_evaluated,
        result.candidates_generated,
        s.queries,
        s.candidates,
        s.unique_candidates,
        s.probed_buckets,
        s.probe_candidates,
    )


def _crash_runner(structure, P, Q_chunk, start, args):
    os._exit(17)


class TestSessionMatchesJoin:
    @pytest.mark.parametrize(
        "backend,options",
        [
            ("brute_force", {}),
            ("norm_pruned", {}),
            ("lsh", LSH),
            ("sketch", {"kappa": 3.0}),
        ],
    )
    def test_backend_equivalence(self, instance, spec, backend, options):
        expected = join(
            instance.P, instance.Q, spec, backend=backend, seed=3, **options
        )
        with open_session(
            instance.P, spec, backend=backend, seed=3, **options
        ) as session:
            first = session.query(instance.Q)
            second = session.query(instance.Q)
        assert _key(first) == _key(expected)
        assert _key(second) == _key(expected)

    def test_hybrid_plan_equivalence(self, instance, spec):
        plan = norm_prefix_lsh_plan(prefix_fraction=0.25)
        expected = join(instance.P, instance.Q, spec, backend=plan, seed=5)
        with open_session(
            instance.P, spec, backend=plan, seed=5
        ) as session:
            for _ in range(2):
                assert _key(session.query(instance.Q)) == _key(expected)

    def test_topk_equivalence(self, instance):
        topk_spec = JoinSpec(s=0.85, c=0.4, k=3)
        expected = join(instance.P, instance.Q, topk_spec, backend="lsh",
                        seed=3, **LSH)
        with open_session(
            instance.P, topk_spec, backend="lsh", seed=3, **LSH
        ) as session:
            result = session.query(instance.Q)
        assert _key(result) == _key(expected)
        assert result.topk == expected.topk

    def test_self_join_equivalence(self, instance):
        self_spec = JoinSpec(s=0.85, c=0.4, self_join=True)
        expected = join(instance.P, None, self_spec, backend="brute_force")
        with open_session(instance.P, self_spec, backend="brute_force") as s:
            assert _key(s.query(None)) == _key(expected)

    @pytest.mark.parametrize("pool", ["process", "thread"])
    def test_parallel_equivalence(self, instance, spec, pool):
        serial = join(instance.P, instance.Q, spec, backend="lsh", seed=3,
                      **LSH)
        with open_session(
            instance.P, spec, backend="lsh", seed=3,
            n_workers=TEST_WORKERS, pool=pool, block=16, **LSH
        ) as session:
            for _ in range(2):
                assert _key(session.query(instance.Q)) == _key(serial)

    def test_auto_session_matches_picked_backend(self, instance, spec):
        with open_session(instance.P, spec, backend="auto", seed=3) as session:
            picked = session.the_plan
            result = session.query(instance.Q)
        expected = join(instance.P, instance.Q, spec, backend=picked, seed=3)
        assert _key(result) == _key(expected)


class TestSessionReuse:
    def test_prepares_once_across_queries(self, instance, spec):
        with open_session(
            instance.P, spec, backend="lsh", seed=3, **LSH
        ) as session:
            assert session.metrics.counter("session.stage_prepares").value == 1
            for _ in range(3):
                session.query(instance.Q)
            assert session.metrics.counter("session.stage_prepares").value == 1
            assert session.metrics.counter("session.queries").value == 3
            assert session.queries_served == 3

    def test_hybrid_deferred_stages_reprepare_per_query(self, instance, spec):
        plan = norm_prefix_lsh_plan(prefix_fraction=0.25)
        with open_session(instance.P, spec, backend=plan, seed=5) as session:
            opened = session.metrics.counter("session.stage_prepares").value
            deferred0 = session.metrics.counter(
                "session.deferred_prepares"
            ).value
            session.query(instance.Q)
            session.query(instance.Q)
            # Eager prepares never re-run; only deferred stages (those
            # consuming per-query state) may prepare inside queries.
            assert session.metrics.counter(
                "session.stage_prepares"
            ).value == opened
            assert session.metrics.counter(
                "session.deferred_prepares"
            ).value >= deferred0

    def test_pool_pins_once_and_segments_stable(self, instance, spec):
        before = repro_segments()
        session = open_session(
            instance.P, spec, backend="lsh", seed=3,
            n_workers=TEST_WORKERS, pool="process", block=16, **LSH
        )
        try:
            pins = session.metrics.counter("session.pool_pins").value
            assert pins >= 1  # at least P is pinned at open
            after_open = repro_segments()
            assert len(after_open) > len(before)
            for _ in range(3):
                session.query(instance.Q)
            # Repeated queries freeze only their own Q (freed per call):
            # the pinned segment set must not grow with reuse.
            assert repro_segments() == after_open
            assert session.metrics.counter("session.pool_pins").value == pins
        finally:
            session.close()
        assert repro_segments() == before

    def test_close_is_idempotent_and_queries_fail_closed(self, instance, spec):
        session = open_session(instance.P, spec, backend="brute_force")
        session.close()
        session.close()
        assert session.closed
        with pytest.raises(ParameterError, match="closed"):
            session.query(instance.Q)
        with pytest.raises(ParameterError, match="closed"):
            session.query_stream([instance.Q])
        with pytest.raises(ParameterError, match="closed"):
            session.save("/tmp/never-written")

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"),
        reason="POSIX shared memory mount required",
    )
    def test_session_heals_after_worker_crash(self, instance, spec):
        from concurrent.futures.process import BrokenProcessPool

        expected = join(instance.P, instance.Q, spec, backend="lsh", seed=3,
                        **LSH)
        before = repro_segments()
        session = open_session(
            instance.P, spec, backend="lsh", seed=3,
            n_workers=2, pool="process", block=16, **LSH
        )
        try:
            assert _key(session.query(instance.Q)) == _key(expected)
            # Kill the session's own pool mid-map: the dying worker
            # must not leak segments, and the session must heal.
            with pytest.raises(BrokenProcessPool):
                map_query_chunks(
                    None, instance.P, instance.Q, _crash_runner, (),
                    n_workers=2, block=16, executor=session._pool,
                )
            assert session._pool.closed
            assert _key(session.query(instance.Q)) == _key(expected)
            assert session.metrics.counter(
                "session.pool_rebuilds"
            ).value == 1
        finally:
            session.close()
        assert repro_segments() == before

    def test_caller_managed_executor_left_running(self, instance, spec):
        with WorkerPool(TEST_WORKERS, kind="thread") as pool:
            session = open_session(
                instance.P, spec, backend="brute_force",
                n_workers=TEST_WORKERS, executor=pool, block=16,
            )
            session.query(instance.Q)
            session.close()
            assert not pool.closed  # the caller owns its lifecycle


class TestQueryStream:
    def test_stream_chunks_bit_identical_to_batch(self, instance, spec):
        with open_session(
            instance.P, spec, backend="lsh", seed=3, block=16, **LSH
        ) as session:
            batch = session.query(instance.Q)
            # Deliberately ragged chunk sizes: re-blocking must restore
            # the block-aligned determinism contract.
            splits = [instance.Q[:7], instance.Q[7:20], instance.Q[20:]]
            streamed = session.query_stream(iter(splits), chunk_rows=16)
            assert _key(streamed) == _key(batch)
            assert session.metrics.counter(
                "session.stream_chunks"
            ).value >= 1

    def test_stream_from_memmap_file(self, instance, spec, tmp_path):
        qfile = tmp_path / "queries.bin"
        qfile.write_bytes(np.ascontiguousarray(instance.Q).tobytes())
        source = QuerySource.from_memmap(qfile, d=instance.Q.shape[1])
        with open_session(
            instance.P, spec, backend="lsh", seed=3, block=16, **LSH
        ) as session:
            batch = session.query(instance.Q)
            streamed = session.query_stream(source, chunk_rows=16)
        assert _key(streamed) == _key(batch)

    def test_stream_hybrid_plan_folds_chunks(self, instance, spec):
        plan = norm_prefix_lsh_plan(prefix_fraction=0.25)
        with open_session(
            instance.P, spec, backend=plan, seed=5, block=16
        ) as session:
            batch = session.query(instance.Q)
            streamed = session.query_stream(
                iter([instance.Q[:16], instance.Q[16:]]), chunk_rows=16
            )
        assert streamed.matches == batch.matches
        assert (
            streamed.inner_products_evaluated
            == batch.inner_products_evaluated
        )

    def test_stream_parallel_matches_serial(self, instance, spec):
        serial = join(instance.P, instance.Q, spec, backend="lsh", seed=3,
                      **LSH)
        with open_session(
            instance.P, spec, backend="lsh", seed=3,
            n_workers=TEST_WORKERS, pool="thread", block=16, **LSH
        ) as session:
            streamed = session.query_stream(
                iter([instance.Q[:13], instance.Q[13:]]), chunk_rows=16
            )
        assert _key(streamed) == _key(serial)

    def test_self_join_sessions_cannot_stream(self, instance):
        self_spec = JoinSpec(s=0.85, c=0.4, self_join=True)
        with open_session(instance.P, self_spec, backend="brute_force") as s:
            with pytest.raises(ParameterError, match="cannot stream"):
                s.query_stream([instance.P])


class TestSaveOpenPath:
    def test_roundtrip_serves_bit_identical_from_memmap(
        self, instance, spec, tmp_path
    ):
        index_dir = tmp_path / "index"
        with open_session(
            instance.P, spec, backend="lsh", seed=3, **LSH
        ) as session:
            expected = session.query(instance.Q)
            session.save(index_dir)
        assert (index_dir / "manifest.json").exists()
        loaded = open_path(index_dir)
        try:
            # Zero-copy load: P comes back as a read-only memmap view.
            assert not loaded.P.flags.writeable
            assert isinstance(loaded.P.base, np.memmap)
            assert _key(loaded.query(instance.Q)) == _key(expected)
        finally:
            loaded.close()

    def test_full_copy_load_and_parallel_serve(self, instance, spec, tmp_path):
        index_dir = tmp_path / "index"
        with open_session(
            instance.P, spec, backend="lsh", seed=3, **LSH
        ) as session:
            expected = session.query(instance.Q)
            session.save(index_dir)
        copied = open_path(index_dir, mmap=False)
        try:
            assert not isinstance(copied.P.base, np.memmap)
            assert _key(copied.query(instance.Q)) == _key(expected)
        finally:
            copied.close()
        # Execution knobs are per-open, not persisted.
        parallel = open_path(
            index_dir, n_workers=TEST_WORKERS, pool="thread"
        )
        try:
            assert _key(parallel.query(instance.Q)) == _key(expected)
        finally:
            parallel.close()

    def test_truncated_sidecar_raises_persistence_error(
        self, instance, spec, tmp_path
    ):
        index_dir = tmp_path / "index"
        with open_session(
            instance.P, spec, backend="lsh", seed=3, **LSH
        ) as session:
            session.save(index_dir)
        sidecar = sorted((index_dir / "arrays").glob("*.bin"))[0]
        sidecar.write_bytes(sidecar.read_bytes()[:-8])
        with pytest.raises(PersistenceError, match="truncated sidecar"):
            open_path(index_dir)

    def test_only_prepared_sessions_save(self, instance, spec, tmp_path):
        lazy = JoinSession._lazy(instance.P, spec, backend="brute_force")
        with pytest.raises(ParameterError, match="prepared session"):
            lazy.save(tmp_path / "never")

    def test_saved_arrays_dedupe_by_identity(self, instance, spec, tmp_path):
        # brute_force does not partition P: the stage's P_stage IS P, so
        # the matrix must land in exactly one sidecar.
        index_dir = tmp_path / "index"
        with open_session(instance.P, spec, backend="brute_force") as session:
            session.save(index_dir)
        sidecars = list((index_dir / "arrays").glob("*.bin"))
        nbytes = np.ascontiguousarray(instance.P).nbytes
        assert sum(1 for f in sidecars if f.stat().st_size == nbytes) == 1


class TestPlannerAmortization:
    def test_expected_queries_amortizes_build(self, instance, spec):
        n, m, d = instance.P.shape[0], instance.Q.shape[0], instance.P.shape[1]
        one_shot = plan_join(n, m, d, spec)
        amortized = plan_join(n, m, d, spec, expected_queries=100_000)
        assert one_shot.expected_queries == 1.0
        assert amortized.expected_queries == 100_000.0

        def position(ranked, backend):
            names = [p.backend for p in ranked.feasible_plans]
            return names.index(backend)

        # Build-free brute force can only fall in the ranking as the
        # build amortizes away; a build-heavy plan's per-query cost
        # drops strictly below its one-shot cost.
        assert position(amortized, "brute_force") >= position(
            one_shot, "brute_force"
        )
        lsh = next(
            p for p in one_shot.feasible_plans if p.backend == "lsh"
        )
        assert lsh.amortized_ops(1) == lsh.total_ops
        assert lsh.amortized_ops(100) < 100 * lsh.total_ops

    def test_session_plans_with_amortization_hint(self, instance, spec):
        with open_session(
            instance.P, spec, backend="auto", seed=3, expected_queries=64,
        ) as session:
            assert session.join_plan is not None
            assert session.join_plan.expected_queries == 64.0
            session.query(instance.Q)

    def test_invalid_expected_queries_rejected(self, instance, spec):
        with pytest.raises(ParameterError, match="expected_queries"):
            open_session(instance.P, spec, expected_queries=0)
        with pytest.raises(ParameterError, match="expected_queries"):
            plan_join(10, 10, 4, spec, expected_queries=0)


class TestPlannerLogTags:
    def test_session_records_tag_amortization(self, instance, spec):
        log = PlannerLog()
        with use_planner_log(log):
            with open_session(
                instance.P, spec, backend="lsh", seed=3,
                expected_queries=8, **LSH
            ) as session:
                session.query(instance.Q)
                session.query(instance.Q)
            join(instance.P, instance.Q, spec, backend="lsh", seed=3, **LSH)
        records = list(log)
        assert len(records) == 3
        assert [r.expected_queries for r in records] == [8, 8, 1]
        assert [r.session_reuse for r in records] == [0, 1, 0]
        assert [r.is_session for r in records] == [True, True, False]
        assert log.session_counts() == (2, 1)

    def test_jsonl_roundtrip_keeps_session_tags(self, instance, spec, tmp_path):
        log = PlannerLog()
        with use_planner_log(log):
            with open_session(
                instance.P, spec, backend="lsh", seed=3,
                expected_queries=8, **LSH
            ) as session:
                session.query(instance.Q)
        path = tmp_path / "log.jsonl"
        log.save(path)
        loaded = PlannerLog.load(path)
        assert [r.to_dict() for r in loaded] == [r.to_dict() for r in log]
        assert loaded.session_counts() == (1, 0)


class TestShardedSession:
    def test_sharded_session_matches_sharded_join(self, instance, spec):
        expected = sharded_join(
            instance.P, instance.Q, spec, n_shards=3,
            backend="lsh", seed=3, **LSH
        )
        with open_sharded(
            instance.P, spec, n_shards=3, backend="lsh", seed=3, **LSH
        ) as sharded:
            first = sharded.query(instance.Q)
            second = sharded.query(instance.Q)
        assert first.matches == expected.matches
        assert second.matches == expected.matches
        assert (
            first.inner_products_evaluated
            == expected.inner_products_evaluated
        )

    def test_sharded_session_rejects_bad_dimension(self, instance, spec):
        with open_sharded(
            instance.P, spec, n_shards=2, backend="brute_force"
        ) as sharded:
            with pytest.raises(ParameterError, match="share a dimension"):
                sharded.query(instance.Q[:, :-1])


class TestOpenSurface:
    def test_open_signature_shapes(self, instance, spec):
        with pytest.raises(ParameterError, match="JoinSpec"):
            open_session(instance.P, instance.Q)
        with pytest.raises(ParameterError, match="session over P only"):
            open_session(instance.P, instance.Q, spec)
        session = open_session(instance.P, None, spec, backend="brute_force")
        try:
            session.query(instance.Q)
        finally:
            session.close()

    def test_query_validates_dimension(self, instance, spec):
        with open_session(instance.P, spec, backend="brute_force") as session:
            with pytest.raises(ParameterError, match="share a dimension"):
                session.query(instance.Q[:, :-1])
            with pytest.raises(ParameterError, match="cross joins"):
                session.query(None)

    def test_self_join_session_rejects_query_set(self, instance):
        self_spec = JoinSpec(s=0.85, c=0.4, self_join=True)
        with open_session(instance.P, self_spec, backend="brute_force") as s:
            with pytest.raises(ParameterError, match="pass Q=None"):
                s.query(instance.Q)
