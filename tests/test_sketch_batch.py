"""Batched sketch paths vs their per-query references.

Index decisions (argmaxes, descent routing, join matches, work counters)
must agree *exactly* between the batched and looped paths; floating
estimates may differ by BLAS-shape ulps (a GEMM over a query block and a
GEMV per query accumulate in different orders), so they are compared at
tight tolerance.
"""

import numpy as np
import pytest

from repro.core.executor import SketchStructureSpec, parallel_sketch_join
from repro.core.problems import JoinSpec
from repro.core.sketch_join import sketch_unsigned_join
from repro.core.verify import verify_candidates
from repro.errors import ParameterError
from repro.mips.sketch_engine import SketchMIPS
from repro.sketches import (
    LKappaSketch,
    MaxDotEstimator,
    PrefixRecoveryIndex,
    SketchCMIPS,
)

TIGHT = dict(rtol=1e-9, atol=1e-12)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(421)
    A = rng.normal(size=(300, 20))
    Q = rng.normal(size=(111, 20))
    return A, Q


def test_apply_matrix_equals_apply(data):
    A, _ = data
    sketch = LKappaSketch(20, 4.0, copies=5, seed=8)
    X = A[:31]
    batch = sketch.apply_matrix(X)
    for j in range(31):
        assert np.array_equal(batch[:, :, j], sketch.apply(X[j]))


def test_estimate_matrix_equals_looped_estimates(data):
    A, _ = data
    sketch = LKappaSketch(20, 3.0, copies=7, seed=9)
    X = A[:50]
    batch = sketch.estimate_matrix(X)
    looped = np.array([sketch.estimate(x) for x in X])
    assert np.array_equal(batch, looped)


def test_estimates_from_values_shape_check():
    sketch = LKappaSketch(6, 4.0, copies=3, rows=2, seed=0)
    with pytest.raises(ParameterError):
        sketch.estimates_from_values(np.zeros((3, 2)))
    with pytest.raises(ParameterError):
        sketch.estimates_from_values(np.zeros((2, 3, 4)))


def test_estimate_batch_matches_looped_estimate(data):
    A, Q = data
    est = MaxDotEstimator(A, kappa=4.0, copies=5, seed=13)
    batch = est.estimate_batch(Q)
    looped = np.array([est.estimate(q) for q in Q])
    assert np.allclose(batch, looped, **TIGHT)
    assert est.estimate_batch(Q[:0]).size == 0


def test_estimate_batch_chunking_consistent(data):
    A, Q = data
    import repro.sketches.maxnorm as maxnorm

    est = MaxDotEstimator(A, kappa=4.0, copies=5, seed=13)
    full = est.estimate_batch(Q)
    original = maxnorm._BATCH_VALUE_ELEMS
    try:
        # Force tiny chunks; results must stay ulp-close to one big GEMM.
        maxnorm._BATCH_VALUE_ELEMS = est.sketch.copies * est.sketch.rows * 7
        chunked = est.estimate_batch(Q)
    finally:
        maxnorm._BATCH_VALUE_ELEMS = original
    assert np.allclose(full, chunked, **TIGHT)


def test_recovery_query_batch_matches_looped_query(data):
    A, Q = data
    rec = PrefixRecoveryIndex(A, kappa=4.0, leaf_size=8, copies=5, seed=17)
    indices, values = rec.query_batch(Q)
    for j, q in enumerate(Q):
        idx, val = rec.query(q)
        assert int(indices[j]) == idx
        assert values[j] == pytest.approx(val, rel=1e-9)
    empty_i, empty_v = rec.query_batch(Q[:0])
    assert empty_i.size == 0 and empty_v.size == 0


def test_cmips_query_batch_matches_looped_query(data):
    A, Q = data
    cmips = SketchCMIPS(A, kappa=4.0, copies=5, seed=23)
    batch = cmips.query_batch(Q)
    assert len(batch) == Q.shape[0]
    for j, q in enumerate(Q):
        answer = cmips.query(q)
        assert batch[j].index == answer.index
        assert batch[j].value == pytest.approx(answer.value, rel=1e-9)
        assert batch[j].norm_estimate == pytest.approx(answer.norm_estimate, rel=1e-9)


def test_sketch_join_blocked_equals_per_query_reference(data):
    A, Q = data
    result = sketch_unsigned_join(A, Q, s=2.0, kappa=4.0, copies=5, seed=29, block=32)
    structure = SketchCMIPS(A, kappa=4.0, copies=5, seed=29)
    per_query = structure.recovery.query_cost() // max(1, A.shape[1])
    proposals = []
    empty = np.empty(0, dtype=np.int64)
    for q in Q:
        answer = structure.query(q)
        proposals.append(
            np.array([answer.index], dtype=np.int64) if answer.index >= 0 else empty
        )
    ref_matches, _ = verify_candidates(
        A, Q, proposals, threshold=result.spec.cs, signed=False, block=32
    )
    assert result.matches == ref_matches
    assert result.inner_products_evaluated == per_query * Q.shape[0]
    assert result.candidates_generated == Q.shape[0]


def test_sketch_mips_query_batch(data):
    A, Q = data
    engine = SketchMIPS(A, kappa=4.0, copies=5, seed=31)
    batched = engine.query_batch(Q, block=40)
    looped = [engine.query(q) for q in Q]
    assert [a.index for a in batched] == [a.index for a in looped]
    assert [a.work for a in batched] == [a.work for a in looped]
    assert np.allclose(
        [a.value for a in batched], [a.value for a in looped], **TIGHT
    )


def test_parallel_sketch_join_worker_invariance(data):
    A, Q = data
    spec = SketchStructureSpec(kappa=4.0, copies=5, seed=37)
    serial = sketch_unsigned_join(A, Q, s=2.0, structure=spec.build(A), block=32)
    one = parallel_sketch_join(A, Q, s=2.0, structure_spec=spec, n_workers=1, block=32)
    multi = parallel_sketch_join(A, Q, s=2.0, structure_spec=spec, n_workers=2, block=32)
    assert serial.matches == one.matches == multi.matches
    assert (
        serial.inner_products_evaluated
        == one.inner_products_evaluated
        == multi.inner_products_evaluated
    )
    assert one.spec.cs == pytest.approx(multi.spec.cs)


def test_parallel_sketch_join_validates_payload(data):
    A, Q = data
    with pytest.raises(ParameterError):
        parallel_sketch_join(A, Q, s=1.0)
    with pytest.raises(ParameterError):
        SketchStructureSpec(seed=None)


def test_mips_engine_default_query_batch(data):
    from repro.mips.base import MIPSEngine

    A, Q = data

    class Exact(MIPSEngine):
        def query(self, q):
            from repro.mips.base import MIPSAnswer

            values = self._P @ q
            j = int(np.argmax(values))
            return MIPSAnswer(index=j, value=float(values[j]), work=self.n)

    engine = Exact(A)
    assert engine.query_batch(Q) == [engine.query(q) for q in Q]
