import numpy as np
import pytest

from repro.datasets import planted_mips
from repro.errors import ParameterError
from repro.sketches import SketchCMIPS


@pytest.fixture(scope="module")
def instance():
    return planted_mips(256, 8, 24, s=0.9, c=0.3, seed=0)


@pytest.fixture(scope="module")
def structure(instance):
    return SketchCMIPS(instance.P, kappa=4.0, copies=9, seed=1)


class TestSketchCMIPS:
    def test_approximation_factor(self, structure, instance):
        assert abs(structure.approximation_factor - instance.n ** -0.25) < 1e-12

    def test_query_within_factor(self, structure, instance):
        for qi in range(8):
            q = instance.Q[qi]
            opt = float(np.abs(instance.P @ q).max())
            answer = structure.query(q)
            assert answer.value >= structure.approximation_factor * opt / 4.0

    def test_answer_value_exact(self, structure, instance):
        q = instance.Q[0]
        answer = structure.query(q)
        assert abs(answer.value - abs(float(instance.P[answer.index] @ q))) < 1e-12

    def test_norm_estimate_positive(self, structure, instance):
        assert structure.query(instance.Q[0]).norm_estimate > 0

    def test_search_promise_satisfied(self, structure, instance):
        # Planted queries have a partner at s; search must return one
        # clearing c*s with the structure's own approximation.
        for qi in range(8):
            idx = structure.search(instance.Q[qi], s=instance.s)
            assert idx is not None
            value = abs(float(instance.P[idx] @ instance.Q[qi]))
            assert value >= structure.approximation_factor * instance.s

    def test_search_none_when_hopeless(self, structure, instance):
        assert structure.search(instance.Q[0], s=100.0) is None

    def test_search_explicit_c(self, structure, instance):
        idx = structure.search(instance.Q[0], s=instance.s, c=0.01)
        assert idx is not None

    def test_search_validates(self, structure, instance):
        with pytest.raises(ParameterError):
            structure.search(instance.Q[0], s=-1.0)
        with pytest.raises(ParameterError):
            structure.search(instance.Q[0], s=1.0, c=2.0)

    def test_kappa_floor(self, instance):
        with pytest.raises(ParameterError):
            SketchCMIPS(instance.P, kappa=1.5)

    def test_construction_cost_reported(self, structure):
        assert structure.construction_cost() > 0

    def test_higher_kappa_tighter_approximation(self, instance):
        loose = SketchCMIPS(instance.P, kappa=2.0, copies=3, seed=2)
        tight = SketchCMIPS(instance.P, kappa=8.0, copies=3, seed=2)
        assert tight.approximation_factor > loose.approximation_factor
