import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sketches import LKappaSketch
from repro.sketches.linf import default_rows
from repro.sketches.stable import kappa_norm


class TestDefaultRows:
    def test_sublinear_for_kappa_above_two(self):
        assert default_rows(10 ** 6, 4.0) < 10 ** 6

    def test_capped_at_n(self):
        assert default_rows(10, 4.0) <= 10

    def test_grows_with_kappa(self):
        assert default_rows(10 ** 6, 8.0) >= default_rows(10 ** 6, 3.0)

    def test_bad_n(self):
        with pytest.raises(ParameterError):
            default_rows(0, 2.0)


class TestLKappaSketch:
    def test_shapes(self):
        sk = LKappaSketch(100, 3.0, copies=5, seed=0)
        assert sk.buckets.shape == (5, 100)
        assert sk.weights.shape == (5, 100)

    def test_apply_shape(self, rng):
        sk = LKappaSketch(50, 3.0, copies=4, seed=1)
        assert sk.apply(rng.normal(size=50)).shape == (4, sk.rows)

    def test_linearity(self, rng):
        sk = LKappaSketch(40, 3.0, copies=3, seed=2)
        x, y = rng.normal(size=40), rng.normal(size=40)
        np.testing.assert_allclose(
            sk.apply(2 * x + y), 2 * sk.apply(x) + sk.apply(y), atol=1e-9
        )

    def test_estimate_within_constant_factor(self, rng):
        sk = LKappaSketch(256, 3.0, copies=9, seed=3)
        for _ in range(10):
            x = rng.normal(size=256)
            true = kappa_norm(x, 3.0)
            assert 0.4 * true <= sk.estimate(x) <= 2.5 * true

    def test_single_spike_estimated_well(self, rng):
        # One heavy coordinate: ||x||_k ~ |spike| for every k.
        sk = LKappaSketch(256, 4.0, copies=9, seed=4)
        x = np.zeros(256)
        x[137] = 5.0
        assert 0.5 * 5.0 <= sk.estimate(x) <= 2.0 * 5.0

    def test_sketch_matrix_consistent_with_apply(self, rng):
        sk = LKappaSketch(30, 3.0, copies=3, seed=5)
        A = rng.normal(size=(30, 6))
        S = sk.sketch_matrix(A)
        q = rng.normal(size=6)
        np.testing.assert_allclose(S @ q, sk.apply(A @ q), atol=1e-9)

    def test_estimate_from_values_validates_shape(self):
        sk = LKappaSketch(10, 2.0, copies=2, seed=6)
        with pytest.raises(ParameterError):
            sk.estimate_from_values(np.zeros((3, sk.rows)))

    def test_wrong_input_dimension(self):
        sk = LKappaSketch(10, 2.0, seed=7)
        with pytest.raises(ParameterError):
            sk.apply(np.zeros(11))

    def test_matrix_row_mismatch(self, rng):
        sk = LKappaSketch(10, 2.0, seed=8)
        with pytest.raises(ParameterError):
            sk.sketch_matrix(rng.normal(size=(11, 3)))

    def test_reproducible(self, rng):
        a = LKappaSketch(20, 3.0, seed=9)
        b = LKappaSketch(20, 3.0, seed=9)
        x = rng.normal(size=20)
        assert a.estimate(x) == b.estimate(x)

    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            LKappaSketch(0, 2.0)
        with pytest.raises(ParameterError):
            LKappaSketch(10, 2.0, copies=0)
        with pytest.raises(ParameterError):
            LKappaSketch(10, 2.0, rows=0)
