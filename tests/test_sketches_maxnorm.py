import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sketches import MaxDotEstimator
from repro.sketches.stable import kappa_norm


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    A = rng.normal(size=(400, 16))
    return A / np.linalg.norm(A, axis=1, keepdims=True)


class TestMaxDotEstimator:
    def test_estimates_kappa_norm(self, data, rng):
        est = MaxDotEstimator(data, kappa=3.0, copies=9, seed=1)
        for _ in range(5):
            q = rng.normal(size=16); q /= np.linalg.norm(q)
            true = kappa_norm(data @ q, 3.0)
            assert 0.4 * true <= est.estimate(q) <= 2.5 * true

    def test_bracketed_by_approximation_factor(self, data, rng):
        est = MaxDotEstimator(data, kappa=3.0, copies=9, seed=2)
        slack = est.approximation_factor
        for _ in range(5):
            q = rng.normal(size=16); q /= np.linalg.norm(q)
            true_inf = float(np.abs(data @ q).max())
            value = est.estimate(q)
            # Constant 2.5 accounts for the sketch's own (1 +- c0) noise.
            assert value <= 2.5 * slack * true_inf
            assert value >= true_inf / 2.5

    def test_approximation_factor_formula(self, data):
        est = MaxDotEstimator(data, kappa=4.0, seed=3)
        assert abs(est.approximation_factor - 400 ** 0.25) < 1e-9

    def test_sketch_cost_scaling(self, data):
        # Cost must be copies * rows * d, strictly below n*d per copy at
        # large n when kappa > 2.
        est = MaxDotEstimator(data, kappa=3.0, copies=3, seed=4)
        assert est.sketch_cost() == 3 * est.rows * 16

    def test_query_dimension_validated(self, data):
        est = MaxDotEstimator(data, kappa=3.0, seed=5)
        with pytest.raises(ParameterError):
            est.estimate(np.zeros(17))

    def test_scaling_with_query_norm(self, data, rng):
        # The estimator is homogeneous: estimate(2q) = 2 estimate(q).
        est = MaxDotEstimator(data, kappa=3.0, copies=5, seed=6)
        q = rng.normal(size=16)
        assert abs(est.estimate(2 * q) - 2 * est.estimate(q)) < 1e-9
