import numpy as np
import pytest

from repro.datasets import planted_mips
from repro.errors import ParameterError
from repro.sketches import PrefixRecoveryIndex


@pytest.fixture(scope="module")
def instance():
    return planted_mips(256, 8, 24, s=0.9, c=0.3, seed=0)


@pytest.fixture(scope="module")
def index(instance):
    return PrefixRecoveryIndex(instance.P, kappa=4.0, copies=9, seed=1)


class TestPrefixRecoveryIndex:
    def test_returns_valid_index_and_exact_value(self, index, instance):
        q = instance.Q[0]
        idx, value = index.query(q)
        assert 0 <= idx < instance.n
        assert abs(value - abs(float(instance.P[idx] @ q))) < 1e-12

    def test_within_approximation_factor(self, index, instance):
        # The returned value must be within ~n^{-1/kappa} of optimal
        # (with generous slack for sketch constants).
        slack = instance.n ** (-1.0 / 4.0) / 4.0
        for qi in range(8):
            q = instance.Q[qi]
            opt = float(np.abs(instance.P @ q).max())
            _, value = index.query(q)
            assert value >= slack * opt

    def test_planted_spikes_found_exactly(self, index, instance):
        # Planted pairs dominate so strongly the descent finds them.
        hits = 0
        for qi in range(8):
            idx, _ = index.query(instance.Q[qi])
            if idx == instance.answers[qi]:
                hits += 1
        assert hits >= 6

    def test_small_dataset_is_exact(self, rng):
        A = rng.normal(size=(6, 4))
        index = PrefixRecoveryIndex(A, leaf_size=8, seed=2)
        q = rng.normal(size=4)
        idx, value = index.query(q)
        assert idx == int(np.argmax(np.abs(A @ q)))

    def test_sketched_nodes_counted(self, index):
        assert index.sketched_nodes > 0

    def test_query_cost_positive(self, index):
        assert index.query_cost() > 0

    def test_wrong_query_dimension(self, index):
        with pytest.raises(ParameterError):
            index.query(np.zeros(3))

    def test_bad_leaf_size(self, rng):
        with pytest.raises(ParameterError):
            PrefixRecoveryIndex(rng.normal(size=(4, 2)), leaf_size=0)
