import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sketches.stable import (
    check_kappa,
    exponential_scalers,
    kappa_norm,
    median_correction,
    norm_ratio_bound,
)


class TestKappaNorm:
    def test_matches_numpy_l2(self, rng):
        x = rng.normal(size=20)
        assert abs(kappa_norm(x, 2) - np.linalg.norm(x)) < 1e-9

    def test_l1(self):
        assert kappa_norm([1, -2, 3], 1) == 6.0

    def test_inf_is_max(self):
        assert kappa_norm([1, -5, 3], math.inf) == 5.0

    def test_zero_vector(self):
        assert kappa_norm(np.zeros(5), 3) == 0.0

    def test_large_kappa_stable(self):
        # Near-inf kappa must not overflow.
        x = np.array([1e-8, 2e-8])
        assert kappa_norm(x, 100) == pytest.approx(2e-8, rel=1e-3)

    def test_monotone_decreasing_in_kappa(self, rng):
        x = rng.normal(size=10)
        norms = [kappa_norm(x, k) for k in (1, 2, 4, 8, math.inf)]
        assert all(a >= b - 1e-12 for a, b in zip(norms, norms[1:]))

    def test_bad_kappa(self):
        with pytest.raises(ParameterError):
            kappa_norm([1.0], 0.5)


class TestExponentialScalers:
    def test_max_stability_identity(self, rng):
        # max_i |x_i| / E_i^{1/k} should distribute as ||x||_k / E^{1/k};
        # check the medians agree across many draws.
        kappa = 3.0
        x = np.abs(rng.normal(size=30)) + 0.1
        true_norm = kappa_norm(x, kappa)
        maxima = []
        for _ in range(3000):
            scalers = exponential_scalers(30, kappa, rng)
            maxima.append(np.max(np.abs(x) * scalers))
        est = np.median(maxima) * median_correction(kappa)
        assert abs(est - true_norm) / true_norm < 0.1

    def test_inf_kappa_scalers_are_one(self, rng):
        np.testing.assert_array_equal(exponential_scalers(5, math.inf, rng), 1.0)

    def test_positive(self, rng):
        assert (exponential_scalers(100, 2.0, rng) > 0).all()

    def test_bad_n(self, rng):
        with pytest.raises(ParameterError):
            exponential_scalers(0, 2.0, rng)


class TestHelpers:
    def test_median_correction_inf(self):
        assert median_correction(math.inf) == 1.0

    def test_median_correction_value(self):
        assert abs(median_correction(2.0) - math.sqrt(math.log(2))) < 1e-12

    def test_norm_ratio_bound(self):
        assert norm_ratio_bound(16, 2.0) == 4.0
        assert norm_ratio_bound(16, 4.0) == 2.0
        assert norm_ratio_bound(16, math.inf) == 1.0

    def test_ratio_bound_is_tight(self):
        # ||1^n||_k / ||1^n||_inf = n^{1/k} exactly.
        x = np.ones(16)
        assert abs(kappa_norm(x, 2) / kappa_norm(x, math.inf) - norm_ratio_bound(16, 2)) < 1e-9

    def test_check_kappa(self):
        assert check_kappa(2) == 2.0
        with pytest.raises(ParameterError):
            check_kappa(0.9)
