import math

import pytest

from repro.errors import ParameterError
from repro.theory import Table1Row, classify_approximation, table1_rows
from repro.theory.table1 import (
    SIGNED_PM1,
    UNSIGNED_01,
    UNSIGNED_PM1,
    hard_c_threshold_unsigned_pm1,
)


class TestTable1Rows:
    def test_three_rows(self):
        rows = table1_rows()
        assert len(rows) == 3
        assert [r.problem for r in rows] == [SIGNED_PM1, UNSIGNED_PM1, UNSIGNED_01]

    def test_signed_row_hard_everywhere(self):
        row = table1_rows()[0]
        assert row.hard_c == "c > 0"
        assert row.permissible_c == "-"

    def test_every_row_has_witness(self):
        for row in table1_rows():
            assert len(row.witnesses) >= 1


class TestHardThreshold:
    def test_decreases_with_n(self):
        assert hard_c_threshold_unsigned_pm1(10 ** 9) < hard_c_threshold_unsigned_pm1(10 ** 3)

    def test_in_unit_interval(self):
        for n in (100, 10 ** 6):
            assert 0.0 < hard_c_threshold_unsigned_pm1(n) < 1.0

    def test_small_n_rejected(self):
        with pytest.raises(ParameterError):
            hard_c_threshold_unsigned_pm1(4)


class TestClassification:
    def test_signed_always_hard(self):
        for c in (0.001, 0.5, 0.999):
            assert classify_approximation(SIGNED_PM1, c, 10 ** 6) == "hard"

    def test_unsigned_pm1_regimes(self):
        n = 10 ** 6
        assert classify_approximation(UNSIGNED_PM1, 0.9, n) == "hard"
        assert classify_approximation(UNSIGNED_PM1, 1e-4, n) == "permissible"
        boundary = hard_c_threshold_unsigned_pm1(n)
        assert classify_approximation(UNSIGNED_PM1, boundary / 2, n) == "open"

    def test_unsigned_01_regimes(self):
        n = 10 ** 6
        assert classify_approximation(UNSIGNED_01, 0.999, n) == "hard"
        assert classify_approximation(UNSIGNED_01, 1e-4, n) == "permissible"
        assert classify_approximation(UNSIGNED_01, 0.5, n) == "open"

    def test_binary_domain_more_permissive_than_pm1(self):
        # A c that is hard for ±1 can be open for {0,1} — the paper's
        # point that the {0,1} hardness needs c -> 1.
        n = 10 ** 6
        c = 0.9
        assert classify_approximation(UNSIGNED_PM1, c, n) == "hard"
        assert classify_approximation(UNSIGNED_01, c, n) == "open"

    def test_validation(self):
        with pytest.raises(ParameterError):
            classify_approximation("nonsense", 0.5, 100)
        with pytest.raises(ParameterError):
            classify_approximation(SIGNED_PM1, 1.5, 100)
        with pytest.raises(ParameterError):
            classify_approximation(SIGNED_PM1, 0.5, 2)
