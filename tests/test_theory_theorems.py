import math

import pytest

from repro.errors import ParameterError
from repro.theory import theorem1_hard_c, theorem2_hard_ratio, theorem3_gap_bounds


class TestTheorem1:
    def test_signed_boundary_zero(self):
        assert theorem1_hard_c("signed {-1,1}", 10 ** 6)["boundary"] == 0.0

    def test_unsigned_pm1_boundary(self):
        out = theorem1_hard_c("unsigned {-1,1}", 10 ** 6)
        log_n = math.log(10 ** 6)
        expected = math.exp(-math.sqrt(log_n / math.log(log_n)))
        assert abs(out["boundary"] - expected) < 1e-12

    def test_unsigned_01_boundary_near_one(self):
        out = theorem1_hard_c("unsigned {0,1}", 10 ** 6)
        assert 0.9 < out["boundary"] < 1.0

    def test_boundary_tends_to_one_for_01(self):
        small = theorem1_hard_c("unsigned {0,1}", 10 ** 3)["boundary"]
        large = theorem1_hard_c("unsigned {0,1}", 10 ** 9)["boundary"]
        assert large > small

    def test_unknown_domain(self):
        with pytest.raises(ParameterError):
            theorem1_hard_c("ternary", 100)


class TestTheorem2:
    def test_pm1_boundary_below_01_boundary(self):
        n = 10 ** 6
        pm1 = theorem2_hard_ratio("unsigned {-1,1}", n)["boundary"]
        b01 = theorem2_hard_ratio("unsigned {0,1}", n)["boundary"]
        # 1 - 1/sqrt(log n) < 1 - 1/log n.
        assert pm1 < b01 < 1.0

    def test_boundaries_approach_one(self):
        small = theorem2_hard_ratio("unsigned {0,1}", 10 ** 2)["boundary"]
        large = theorem2_hard_ratio("unsigned {0,1}", 10 ** 8)["boundary"]
        assert large > small

    def test_signed_not_covered(self):
        with pytest.raises(ParameterError):
            theorem2_hard_ratio("signed {-1,1}", 100)


class TestTheorem3:
    def test_all_cases_at_friendly_parameters(self):
        bounds = theorem3_gap_bounds(s=0.01, c=0.5, U=4.0, d=4)
        assert set(bounds) == {
            "case1 (signed+unsigned)",
            "case2 (signed only)",
            "case3 (signed+unsigned)",
        }
        assert all(v > 0 for v in bounds.values())

    def test_case2_gone_at_large_s(self):
        bounds = theorem3_gap_bounds(s=0.4, c=0.5, U=4.0, d=8)
        assert "case2 (signed only)" not in bounds

    def test_case3_needs_headroom(self):
        bounds = theorem3_gap_bounds(s=1.0, c=0.5, U=4.0, d=2)
        assert "case3 (signed+unsigned)" not in bounds

    def test_bounds_shrink_with_u(self):
        small = theorem3_gap_bounds(s=0.001, c=0.5, U=4.0, d=2)
        large = theorem3_gap_bounds(s=0.001, c=0.5, U=400.0, d=2)
        for key in small:
            if key in large:
                assert large[key] <= small[key]
