import math

import pytest

from repro.errors import ParameterError
from repro.theory import (
    hard_instance_signed_pm1,
    hard_instance_table,
    hard_instance_unsigned_01,
    hard_instance_unsigned_pm1,
)


class TestSignedInstance:
    def test_parameters(self):
        inst = hard_instance_signed_pm1(1024, gamma=2.0)
        assert inst.d_ovp == 20
        assert inst.d_embedded == 76
        assert inst.s == 4.0 and inst.cs == 0.0
        assert inst.c == 0.0

    def test_ratio_is_zero(self):
        assert hard_instance_signed_pm1(1024).ratio == 0.0


class TestUnsignedPM1Instance:
    def test_c_close_to_one_scale(self):
        # c = 1 / T_q(1 + 1/d); subconstant but not polynomially small.
        inst = hard_instance_unsigned_pm1(2 ** 16, gamma=2.0)
        assert 0.0 < inst.c < 1.0

    def test_ratio_approaches_one(self):
        # ratio = 1 - Theta(1/sqrt(d)); grows towards 1 with n.
        small = hard_instance_unsigned_pm1(2 ** 10).ratio
        large = hard_instance_unsigned_pm1(2 ** 26).ratio
        assert small < large < 1.0

    def test_ratio_formula(self):
        inst = hard_instance_unsigned_pm1(2 ** 12)
        expected = math.log(inst.s / inst.d_embedded) / math.log(inst.cs / inst.d_embedded)
        assert abs(inst.ratio - expected) < 1e-12

    def test_explicit_q(self):
        inst = hard_instance_unsigned_pm1(2 ** 10, q=2)
        assert inst.cs == (2 * inst.d_ovp) ** 2


class TestUnsigned01Instance:
    def test_k_equals_d_dimension_is_2d(self):
        inst = hard_instance_unsigned_01(2 ** 12, gamma=2.0)
        assert inst.d_embedded == 2 * inst.d_ovp

    def test_c_is_one_minus_one_over_k(self):
        inst = hard_instance_unsigned_01(2 ** 12)
        assert abs(inst.c - (inst.s - 1) / inst.s) < 1e-12

    def test_c_approaches_one(self):
        small = hard_instance_unsigned_01(2 ** 8).c
        large = hard_instance_unsigned_01(2 ** 24).c
        assert small < large < 1.0

    def test_ratio_approaches_one_faster_than_pm1(self):
        n = 2 ** 16
        r01 = hard_instance_unsigned_01(n).ratio
        rpm1 = hard_instance_unsigned_pm1(n).ratio
        assert r01 > rpm1  # 1 - o(1/log n) vs 1 - o(1/sqrt(log n))

    def test_explicit_k_validated(self):
        with pytest.raises(ParameterError):
            hard_instance_unsigned_01(2 ** 10, k=10 ** 6)


class TestTable:
    def test_three_rows_per_n(self):
        rows = hard_instance_table([2 ** 10, 2 ** 12])
        assert len(rows) == 6
        assert {r.problem for r in rows} == {
            "signed {-1,1}", "unsigned {-1,1}", "unsigned {0,1}"
        }

    def test_small_n_rejected(self):
        with pytest.raises(ParameterError):
            hard_instance_signed_pm1(4)
