import numpy as np
import pytest

from repro.utils.bits import (
    bits_to_int,
    int_to_bits,
    pack_binary_rows,
    packed_dot_is_zero,
    prefixes,
)


class TestPacking:
    def test_word_count(self):
        packed = pack_binary_rows(np.zeros((3, 70), dtype=np.int64))
        assert packed.shape == (3, 2)

    def test_orthogonality_detected(self, rng):
        a = np.zeros((1, 100), dtype=np.int64)
        b = np.zeros((1, 100), dtype=np.int64)
        a[0, :50] = 1
        b[0, 50:] = 1
        assert packed_dot_is_zero(pack_binary_rows(a)[0], pack_binary_rows(b)[0])

    def test_overlap_detected(self):
        a = np.zeros((1, 100), dtype=np.int64)
        b = np.zeros((1, 100), dtype=np.int64)
        a[0, 63] = 1
        b[0, 63] = 1
        assert not packed_dot_is_zero(pack_binary_rows(a)[0], pack_binary_rows(b)[0])

    def test_agrees_with_dot_product(self, rng):
        X = (rng.random((20, 130)) < 0.2).astype(np.int64)
        Y = (rng.random((20, 130)) < 0.2).astype(np.int64)
        PX, PY = pack_binary_rows(X), pack_binary_rows(Y)
        for i in range(20):
            for j in range(20):
                assert packed_dot_is_zero(PX[i], PY[j]) == (int(X[i] @ Y[j]) == 0)


class TestIndexCodec:
    @pytest.mark.parametrize("value,width", [(0, 1), (5, 3), (255, 8), (1, 10)])
    def test_roundtrip(self, value, width):
        assert bits_to_int(int_to_bits(value, width)) == value

    def test_msb_first(self):
        assert int_to_bits(4, 3).tolist() == [1, 0, 0]

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 3)

    def test_prefixes(self):
        got = list(prefixes(0b101, 3))
        assert got == [(1, 0b1), (2, 0b10), (3, 0b101)]

    def test_prefixes_zero(self):
        assert list(prefixes(0, 2)) == [(1, 0), (2, 0)]


class TestPackingDtypes:
    def test_uint8_and_bool_match_int64(self, rng):
        X = rng.integers(0, 2, size=(9, 100))
        baseline = pack_binary_rows(X)
        assert np.array_equal(baseline, pack_binary_rows(X.astype(np.uint8)))
        assert np.array_equal(baseline, pack_binary_rows(X.astype(bool)))

    def test_word_aligned_width_no_padding_path(self, rng):
        X = rng.integers(0, 2, size=(5, 128))
        baseline = pack_binary_rows(X)
        assert np.array_equal(baseline, pack_binary_rows(X.astype(bool)))
        assert np.array_equal(baseline, pack_binary_rows(X.astype(np.uint8)))

    def test_uint8_rejects_non_binary(self):
        from repro.errors import DomainError

        with pytest.raises(DomainError):
            pack_binary_rows(np.array([[0, 2]], dtype=np.uint8))

    def test_uint8_1d_promotes_to_row(self):
        packed = pack_binary_rows(np.array([1, 0, 1], dtype=np.uint8))
        assert packed.shape == (1, 1)


class TestVectorizedCodec:
    def test_matches_bit_by_bit_reference(self, rng):
        for _ in range(30):
            width = int(rng.integers(1, 130))
            value = int(rng.integers(0, 2 ** min(width, 62)))
            got = int_to_bits(value, width)
            expected = [(value >> (width - 1 - k)) & 1 for k in range(width)]
            assert got.tolist() == expected
            assert got.dtype == np.int64
            assert bits_to_int(got) == value

    def test_wide_values_roundtrip(self):
        value = (1 << 100) + 12345
        bits = int_to_bits(value, 120)
        assert bits.size == 120
        assert bits_to_int(bits) == value

    def test_zero_width(self):
        assert int_to_bits(0, 0).size == 0
        assert bits_to_int(np.empty(0, dtype=np.int64)) == 0

    def test_bits_to_int_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])
