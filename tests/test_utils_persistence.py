import numpy as np
import pytest

from repro.datasets import planted_mips
from repro.lsh import BatchSignIndex
from repro.sketches import SketchCMIPS
from repro.utils.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    load_structure,
    save_structure,
)


@pytest.fixture(scope="module")
def instance():
    return planted_mips(150, 8, 24, s=0.85, c=0.4, seed=0)


class TestRoundTrips:
    def test_batch_index_roundtrip(self, tmp_path, instance):
        idx = BatchSignIndex.for_datadep(
            24, n_tables=8, bits_per_table=6, seed=1
        ).build(instance.P)
        path = tmp_path / "index.repro"
        save_structure(idx, path)
        loaded = load_structure(path, expected_type="BatchSignIndex")
        q = instance.Q[0]
        np.testing.assert_array_equal(
            np.sort(idx.candidates(q)), np.sort(loaded.candidates(q))
        )

    def test_sketch_structure_roundtrip(self, tmp_path, instance):
        structure = SketchCMIPS(instance.P, kappa=3.0, copies=5, seed=2)
        path = tmp_path / "sketch.repro"
        save_structure(structure, path)
        loaded = load_structure(path)
        q = instance.Q[0]
        assert structure.query(q).index == loaded.query(q).index

    def test_plain_array_roundtrip(self, tmp_path):
        save_structure(np.arange(5), tmp_path / "a.repro")
        np.testing.assert_array_equal(
            load_structure(tmp_path / "a.repro"), np.arange(5)
        )


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="no structure file"):
            load_structure(tmp_path / "absent.repro")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "corrupt.repro"
        path.write_bytes(b"\x80\x04 garbage")
        with pytest.raises(PersistenceError):
            load_structure(path)

    def test_non_repro_pickle(self, tmp_path):
        import pickle
        path = tmp_path / "plain.pkl"
        path.write_bytes(pickle.dumps({"hello": 1}))
        with pytest.raises(PersistenceError, match="not a repro structure"):
            load_structure(path)

    def test_type_check(self, tmp_path):
        save_structure(np.arange(3), tmp_path / "a.repro")
        with pytest.raises(PersistenceError, match="expected BatchSignIndex"):
            load_structure(tmp_path / "a.repro", expected_type="BatchSignIndex")

    def test_version_check(self, tmp_path):
        import pickle
        path = tmp_path / "old.repro"
        payload = {
            "magic": b"repro-structure",
            "format_version": FORMAT_VERSION + 1,
            "type": "X",
            "object": 1,
        }
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(PersistenceError, match="format version"):
            load_structure(path)
