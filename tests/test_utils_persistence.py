import numpy as np
import pytest

from repro.datasets import planted_mips
from repro.lsh import BatchSignIndex
from repro.sketches import SketchCMIPS
from repro.utils.persistence import (
    DIR_FORMAT_VERSION,
    FORMAT_VERSION,
    PersistenceError,
    load_structure,
    load_structure_dir,
    save_structure,
    save_structure_dir,
)


@pytest.fixture(scope="module")
def instance():
    return planted_mips(150, 8, 24, s=0.85, c=0.4, seed=0)


class TestRoundTrips:
    def test_batch_index_roundtrip(self, tmp_path, instance):
        idx = BatchSignIndex.for_datadep(
            24, n_tables=8, bits_per_table=6, seed=1
        ).build(instance.P)
        path = tmp_path / "index.repro"
        save_structure(idx, path)
        loaded = load_structure(path, expected_type="BatchSignIndex")
        q = instance.Q[0]
        np.testing.assert_array_equal(
            np.sort(idx.candidates(q)), np.sort(loaded.candidates(q))
        )

    def test_sketch_structure_roundtrip(self, tmp_path, instance):
        structure = SketchCMIPS(instance.P, kappa=3.0, copies=5, seed=2)
        path = tmp_path / "sketch.repro"
        save_structure(structure, path)
        loaded = load_structure(path)
        q = instance.Q[0]
        assert structure.query(q).index == loaded.query(q).index

    def test_plain_array_roundtrip(self, tmp_path):
        save_structure(np.arange(5), tmp_path / "a.repro")
        np.testing.assert_array_equal(
            load_structure(tmp_path / "a.repro"), np.arange(5)
        )


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="no structure file"):
            load_structure(tmp_path / "absent.repro")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "corrupt.repro"
        path.write_bytes(b"\x80\x04 garbage")
        with pytest.raises(PersistenceError):
            load_structure(path)

    def test_non_repro_pickle(self, tmp_path):
        import pickle
        path = tmp_path / "plain.pkl"
        path.write_bytes(pickle.dumps({"hello": 1}))
        with pytest.raises(PersistenceError, match="not a repro structure"):
            load_structure(path)

    def test_type_check(self, tmp_path):
        save_structure(np.arange(3), tmp_path / "a.repro")
        with pytest.raises(PersistenceError, match="expected BatchSignIndex"):
            load_structure(tmp_path / "a.repro", expected_type="BatchSignIndex")

    def test_version_check(self, tmp_path):
        import pickle
        path = tmp_path / "old.repro"
        payload = {
            "magic": b"repro-structure",
            "format_version": FORMAT_VERSION + 1,
            "type": "X",
            "object": 1,
        }
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(PersistenceError, match="format version"):
            load_structure(path)


class TestDirectoryFormat:
    def test_index_roundtrip_memmapped(self, tmp_path, instance):
        idx = BatchSignIndex.for_datadep(
            24, n_tables=8, bits_per_table=6, seed=1
        ).build(instance.P)
        path = save_structure_dir(idx, tmp_path / "index")
        assert (path / "manifest.json").exists()
        assert (path / "shell.pkl").exists()
        assert list((path / "arrays").glob("*.bin"))
        loaded = load_structure_dir(path, expected_type="BatchSignIndex")
        q = instance.Q[0]
        np.testing.assert_array_equal(
            np.sort(idx.candidates(q)), np.sort(loaded.candidates(q))
        )

    def test_mmap_views_are_read_only_ndarrays(self, tmp_path):
        big = np.arange(4096, dtype=np.float64)
        loaded = load_structure_dir(
            save_structure_dir({"a": big}, tmp_path / "d")
        )
        view = loaded["a"]
        assert type(view) is np.ndarray  # arena-compatible, not memmap type
        assert isinstance(view.base, np.memmap)
        assert not view.flags.writeable
        np.testing.assert_array_equal(view, big)

    def test_full_copy_load_is_writable(self, tmp_path):
        big = np.arange(4096, dtype=np.float64)
        path = save_structure_dir({"a": big}, tmp_path / "d")
        copied = load_structure_dir(path, mmap=False)["a"]
        assert copied.flags.writeable
        copied += 1.0  # mutating the copy must not touch the sidecar
        np.testing.assert_array_equal(load_structure_dir(path)["a"], big)

    def test_identity_dedup_stores_shared_array_once(self, tmp_path):
        big = np.arange(4096, dtype=np.float64)
        path = save_structure_dir({"a": big, "b": big}, tmp_path / "d")
        assert len(list((path / "arrays").glob("*.bin"))) == 1
        loaded = load_structure_dir(path)
        assert loaded["a"] is loaded["b"]

    def test_truncated_sidecar_raises_typed_error(self, tmp_path):
        path = save_structure_dir(
            {"a": np.arange(4096, dtype=np.float64)}, tmp_path / "d"
        )
        sidecar = next((path / "arrays").glob("*.bin"))
        sidecar.write_bytes(sidecar.read_bytes()[:-16])
        with pytest.raises(PersistenceError, match="truncated sidecar"):
            load_structure_dir(path)

    def test_truncated_shell_raises_typed_error(self, tmp_path):
        path = save_structure_dir(
            {"a": np.arange(4096, dtype=np.float64)}, tmp_path / "d"
        )
        shell = path / "shell.pkl"
        shell.write_bytes(shell.read_bytes()[:-4])
        with pytest.raises(PersistenceError, match="truncated shell"):
            load_structure_dir(path)

    def test_missing_and_corrupt_manifests(self, tmp_path):
        with pytest.raises(PersistenceError, match="no structure directory"):
            load_structure_dir(tmp_path / "absent")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(PersistenceError, match="not a structure directory"):
            load_structure_dir(empty)
        path = save_structure_dir({"a": np.arange(3)}, tmp_path / "d")
        (path / "manifest.json").write_text("{not json")
        with pytest.raises(PersistenceError, match="corrupt manifest"):
            load_structure_dir(path)

    def test_version_check(self, tmp_path):
        import json
        path = save_structure_dir({"a": np.arange(3)}, tmp_path / "d")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = DIR_FORMAT_VERSION + 1
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="format version"):
            load_structure_dir(path)

    def test_type_check(self, tmp_path):
        path = save_structure_dir({"a": np.arange(3)}, tmp_path / "d")
        with pytest.raises(PersistenceError, match="expected SessionState"):
            load_structure_dir(path, expected_type="SessionState")

    def test_atomic_save_leaves_no_tmp_and_overwrites(self, tmp_path):
        target = tmp_path / "d"
        save_structure_dir({"v": 1}, target)
        save_structure_dir({"v": 2}, target)  # overwrite replaces in place
        assert load_structure_dir(target)["v"] == 2
        assert not (tmp_path / "d.tmp").exists()
        with pytest.raises(PersistenceError, match="already exists"):
            save_structure_dir({"v": 3}, target, overwrite=False)
        assert load_structure_dir(target)["v"] == 2

    def test_never_replaces_a_non_structure_path(self, tmp_path):
        plain = tmp_path / "precious"
        plain.mkdir()
        (plain / "data.txt").write_text("keep me")
        with pytest.raises(PersistenceError, match="refusing to replace"):
            save_structure_dir({"v": 1}, plain)
        assert (plain / "data.txt").read_text() == "keep me"
