import numpy as np
import pytest

from repro.errors import DomainError, ParameterError, ValidationError
from repro.utils.validation import (
    check_approximation_factor,
    check_binary,
    check_matrix,
    check_positive,
    check_sign,
    check_threshold,
    check_unit_ball,
    check_vector,
    require,
)


class TestCheckVector:
    def test_accepts_list(self):
        out = check_vector([1.0, 2.0])
        assert out.dtype == np.float64 and out.shape == (2,)

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError):
            check_vector(np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_vector([])

    def test_error_names_argument(self):
        with pytest.raises(ValidationError, match="myvec"):
            check_vector([], name="myvec")


class TestCheckMatrix:
    def test_promotes_vector_to_row(self):
        assert check_matrix([1.0, 2.0]).shape == (1, 2)

    def test_rejects_3d(self):
        with pytest.raises(ValidationError):
            check_matrix(np.zeros((2, 2, 2)))

    def test_rejects_empty_by_default(self):
        with pytest.raises(ValidationError):
            check_matrix(np.zeros((0, 3)))

    def test_allow_empty(self):
        assert check_matrix(np.zeros((0, 3)), allow_empty=True).shape == (0, 3)


class TestDomainChecks:
    def test_binary_ok(self):
        out = check_binary([0, 1, 1, 0])
        assert out.dtype == np.int64

    def test_binary_rejects_two(self):
        with pytest.raises(DomainError):
            check_binary([0, 1, 2])

    def test_binary_rejects_fraction(self):
        with pytest.raises(DomainError):
            check_binary([0.5])

    def test_sign_ok(self):
        assert check_sign([-1, 1]).tolist() == [-1, 1]

    def test_sign_rejects_zero(self):
        with pytest.raises(DomainError):
            check_sign([0, 1])


class TestScalarChecks:
    def test_positive(self):
        assert check_positive(0.5, "x") == 0.5

    def test_positive_rejects_zero(self):
        with pytest.raises(ParameterError):
            check_positive(0.0, "x")

    def test_threshold(self):
        assert check_threshold(3.0) == 3.0

    @pytest.mark.parametrize("c", [0.0, 1.0, -0.1, 1.5])
    def test_approximation_rejects_boundary(self, c):
        with pytest.raises(ParameterError):
            check_approximation_factor(c)

    def test_approximation_accepts_interior(self):
        assert check_approximation_factor(0.5) == 0.5


class TestUnitBall:
    def test_accepts_interior(self):
        check_unit_ball(np.array([[0.3, 0.4]]))

    def test_rejects_outside(self):
        with pytest.raises(DomainError):
            check_unit_ball(np.array([[1.0, 1.0]]))

    def test_custom_radius(self):
        check_unit_ball(np.array([[1.5, 0.0]]), radius=2.0)


class TestRequire:
    def test_pass(self):
        require(True, "never")

    def test_fail(self):
        with pytest.raises(ValidationError, match="boom"):
            require(False, "boom")
