#!/usr/bin/env python
"""Diff a bench artifact against the prior ``BENCH_PR*.json`` trajectory.

The repository carries one committed artifact per PR
(``BENCH_PR1.json`` ... ``BENCH_PRn.json``, all produced by
``tools/bench_perf.py``), which together form a speedup trajectory:
every headline claim ("blocked verify 8x", "zero-copy 3-4x", "session
reuse 30x") is a ``speedups`` entry somewhere in that series.  This
tool guards the trajectory::

    PYTHONPATH=src python tools/bench_compare.py BENCH_PR9.json
    PYTHONPATH=src python tools/bench_compare.py bench_quick.json \
        --threshold 0.5 --json

For every numeric ``speedups`` entry of the *current* artifact it finds
the most recent prior artifact carrying the same key (suites were added
over time, so coverage grows PR by PR) and flags a regression when::

    current < baseline * (1 - threshold)

Two artifacts are only comparable when they were produced in the same
mode (``meta.quick``): quick-mode runs use smaller instances whose
ratios differ structurally from full-mode runs, so a mode mismatch
demotes the comparison to informational (printed, never failing) unless
``--require-baseline`` insists.  Every ``speedups`` entry — including
the ``_reduction`` memory factors — is a higher-is-better ratio.

Exit status: 1 when any same-mode regression crosses the threshold
(the CI quick-smoke job runs this over the committed artifacts), else 0.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys
from typing import Any, Dict, List, Optional, Tuple

_PR_RE = re.compile(r"BENCH_PR(\d+)\.json$")


def _flatten(prefix: str, value: Any, out: Dict[str, float]) -> None:
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for k, v in value.items():
            _flatten(f"{prefix}.{k}" if prefix else str(k), v, out)


def flat_speedups(report: dict) -> Dict[str, float]:
    """The artifact's ``speedups`` tree flattened to dotted scalar keys."""
    out: Dict[str, float] = {}
    _flatten("", report.get("speedups", {}), out)
    return out


def discover_baselines(
    repo_root: str, current_path: str
) -> List[Tuple[int, str]]:
    """``(pr_number, path)`` for every committed artifact except the
    current one, ascending."""
    current = os.path.abspath(current_path)
    found = []
    for path in glob.glob(os.path.join(repo_root, "BENCH_PR*.json")):
        m = _PR_RE.search(os.path.basename(path))
        if m and os.path.abspath(path) != current:
            found.append((int(m.group(1)), path))
    return sorted(found)


def compare(
    current: dict,
    baselines: List[Tuple[int, str, dict]],
    threshold: float,
) -> dict:
    """Score the current artifact against the trajectory.

    ``baselines`` is ``(pr, path, report)`` ascending; for each current
    key the *latest* same-mode baseline carrying that key is the
    reference.
    """
    mode = bool(current.get("meta", {}).get("quick", False))
    now = flat_speedups(current)
    rows: List[dict] = []
    for key in sorted(now):
        ref = None
        for pr, path, report in baselines:
            if bool(report.get("meta", {}).get("quick", False)) != mode:
                continue
            base = flat_speedups(report)
            if key in base:
                ref = {"pr": pr, "path": os.path.basename(path),
                       "value": base[key]}
        row = {"key": key, "current": now[key], "baseline": ref}
        if ref is not None and ref["value"] > 0:
            ratio = now[key] / ref["value"]
            row["ratio"] = ratio
            row["regressed"] = ratio < 1.0 - threshold
        else:
            row["regressed"] = False
        rows.append(row)
    same_mode = [b for b in baselines
                 if bool(b[2].get("meta", {}).get("quick", False)) == mode]
    return {
        "schema": "repro-bench-compare/v1",
        "mode": "quick" if mode else "full",
        "threshold": threshold,
        "baselines": [
            {"pr": pr, "path": os.path.basename(path)}
            for pr, path, _ in same_mode
        ],
        "skipped_mode_mismatch": len(baselines) - len(same_mode),
        "rows": rows,
        "regressions": [r for r in rows if r["regressed"]],
    }


def render(result: dict) -> str:
    lines = [
        f"bench trajectory ({result['mode']} mode, "
        f"threshold {result['threshold']:.0%}, "
        f"{len(result['baselines'])} comparable artifacts, "
        f"{result['skipped_mode_mismatch']} skipped on mode mismatch)"
    ]
    width = max((len(r["key"]) for r in result["rows"]), default=3)
    for r in result["rows"]:
        if r["baseline"] is None:
            lines.append(f"  {r['key'].ljust(width)}  {r['current']:>9.3f}"
                         f"  (new — no comparable baseline)")
            continue
        flag = "  << REGRESSION" if r["regressed"] else ""
        lines.append(
            f"  {r['key'].ljust(width)}  {r['current']:>9.3f}  vs "
            f"{r['baseline']['value']:>9.3f} "
            f"(PR{r['baseline']['pr']}, x{r.get('ratio', 0):.2f}){flag}"
        )
    n = len(result["regressions"])
    lines.append(
        f"{n} regression(s) past threshold" if n else "trajectory ok"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="bench artifact to score")
    parser.add_argument(
        "--baseline", action="append", default=None, metavar="PATH",
        help="explicit baseline artifact(s); default: discover "
        "BENCH_PR*.json next to this repo",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.5,
        help="relative speedup drop that counts as a regression "
        "(default %(default)s — generous, because committed artifacts "
        "span different machines)",
    )
    parser.add_argument(
        "--require-baseline", action="store_true",
        help="fail when no comparable (same-mode) baseline exists",
    )
    parser.add_argument("--json", action="store_true",
                        help="emit the comparison as JSON")
    args = parser.parse_args(argv)

    with open(args.current) as fh:
        current = json.load(fh)
    repo_root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    if args.baseline:
        pairs = []
        for path in args.baseline:
            m = _PR_RE.search(os.path.basename(path))
            pairs.append((int(m.group(1)) if m else 0, path))
        pairs.sort()
    else:
        pairs = discover_baselines(repo_root, args.current)
    baselines = []
    for pr, path in pairs:
        with open(path) as fh:
            baselines.append((pr, path, json.load(fh)))

    result = compare(current, baselines, args.threshold)
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(render(result))
    if args.require_baseline and not result["baselines"]:
        print("no comparable baseline found", file=sys.stderr)
        return 1
    return 1 if result["regressions"] else 0


if __name__ == "__main__":
    sys.exit(main())
