"""Seeded perf suite for the fast paths: CSR tables, blocked verify, executor.

Runs a fixed, fully seeded sequence of build / candidate-generation /
verification / join timings and writes the results as JSON (default
``BENCH_PR1.json`` at the repo root), so successive PRs have a recorded
baseline to beat.  Two modes:

* full (default): n=100k, d=64 — the workload the ISSUE's >=5x
  candidate-generation target refers to; takes a few minutes because
  the *dict* reference path is slow (that is the point).
* ``--quick``: a seconds-scale shrink of the same suite for CI smoke
  (asserts the suite runs end to end and the schema is stable).

What is measured:

* build: dict-of-lists vs CSR bucket construction over the same keys.
* candidates: ``candidates_batch`` over the whole query set, dict layout
  vs CSR layout (identical candidate sets are asserted, with and
  without multiprobe).
* verify: per-query GEMV loop vs the one-GEMM-per-block kernel on the
  same candidate lists.
* join: ``parallel_lsh_join`` at 1/2/4 workers (identical matches are
  asserted); wall-clock scaling is recorded together with
  ``cpu_count`` — on a single-core machine the extra workers cannot
  win, and the JSON says so rather than hiding it.

Usage::

    PYTHONPATH=src python tools/bench_perf.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable, List, Optional

import numpy as np

from repro.core import JoinSpec, parallel_lsh_join
from repro.core.executor import BatchIndexSpec
from repro.core.verify import verify_candidates
from repro.datasets import random_unit
from repro.lsh import BatchSignIndex

SCHEMA = "repro-bench-perf/v1"
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_PR1.json")

FULL = dict(n=100_000, d=64, n_queries=2_000, n_tables=16, bits_per_table=14,
            n_probes=2, workers=(1, 2, 4), block=256, seed=2016)
QUICK = dict(n=4_000, d=32, n_queries=256, n_tables=8, bits_per_table=10,
             n_probes=2, workers=(1, 2), block=128, seed=2016)


def _timed(fn: Callable, repeats: int = 1):
    """Best-of-``repeats`` wall time; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _assert_same_candidates(a: List[np.ndarray], b: List[np.ndarray]) -> bool:
    if len(a) != len(b):
        return False
    return all(np.array_equal(x, y) for x, y in zip(a, b))


def run_suite(quick: bool = False) -> dict:
    cfg = QUICK if quick else FULL
    n, d, nq = cfg["n"], cfg["d"], cfg["n_queries"]
    tables, bits, probes = cfg["n_tables"], cfg["bits_per_table"], cfg["n_probes"]
    seed = cfg["seed"]
    print(f"[bench_perf] workload: n={n} d={d} queries={nq} "
          f"L={tables} k={bits} probes={probes} quick={quick}", flush=True)

    P = random_unit(n, d, seed=seed) * 0.95
    Q = random_unit(nq, d, seed=seed + 1) * 0.95

    def make(layout: str) -> BatchSignIndex:
        return BatchSignIndex.for_hyperplane(
            d, n_tables=tables, bits_per_table=bits, seed=seed + 2, layout=layout
        )

    # --- build ---------------------------------------------------------
    print("[bench_perf] build: dict vs csr ...", flush=True)
    build_dict_s, idx_dict = _timed(lambda: make("dict").build(P))
    build_csr_s, idx_csr = _timed(lambda: make("csr").build(P))

    # --- candidate generation -----------------------------------------
    print("[bench_perf] candidates: dict vs csr ...", flush=True)
    cand_dict_s, cands_dict = _timed(lambda: idx_dict.candidates_batch(Q),
                                     repeats=3)
    cand_csr_s, cands_csr = _timed(lambda: idx_csr.candidates_batch(Q),
                                   repeats=3)
    sets_equal = _assert_same_candidates(cands_dict, cands_csr)

    cand_dict_probe_s, probed_dict = _timed(
        lambda: idx_dict.candidates_batch(Q, n_probes=probes), repeats=3)
    cand_csr_probe_s, probed_csr = _timed(
        lambda: idx_csr.candidates_batch(Q, n_probes=probes), repeats=3)
    probe_sets_equal = _assert_same_candidates(probed_dict, probed_csr)

    # --- verification --------------------------------------------------
    # Two regimes: the LSH candidate lists themselves (sparse overlap on
    # this uniform workload — the kernel's cost test picks gathered
    # GEMVs) and a popularity-skewed workload where hot rows appear in
    # most lists (the union-GEMM path fires and wins).
    print("[bench_perf] verify: per-query loop vs blocked kernel ...", flush=True)
    threshold = 0.6

    def verify_loop(cand_lists):
        matches = []
        for qi, cands in enumerate(cand_lists):
            if cands.size == 0:
                matches.append(None)
                continue
            values = P[cands] @ Q[qi]
            best = int(np.argmax(values))
            matches.append(int(cands[best]) if values[best] >= threshold else None)
        return matches

    verify_loop_s, loop_matches = _timed(lambda: verify_loop(cands_csr), repeats=3)
    verify_blocked_s, (blocked_matches, evaluated) = _timed(
        lambda: verify_candidates(P, Q, cands_csr, threshold, block=cfg["block"]),
        repeats=3)
    verify_equal = loop_matches == blocked_matches

    # Popularity-skewed lists: candidates concentrated on a hot-row set
    # small enough (2x the per-query list size) that every hot row shows
    # up in a large fraction of each block's lists — the regime the
    # union-GEMM strategy is built for.
    skew_rng = np.random.default_rng(seed + 3)
    per_query = max(16, int(round(idx_csr.stats.candidates_per_query)))
    hot = max(32, 2 * per_query)
    skewed = [
        np.unique(skew_rng.integers(0, hot, per_query).astype(np.int64))
        for _ in range(nq)
    ]
    overlap_loop_s, overlap_loop_matches = _timed(
        lambda: verify_loop(skewed), repeats=3)
    overlap_blocked_s, (overlap_blocked_matches, _) = _timed(
        lambda: verify_candidates(P, Q, skewed, threshold, block=cfg["block"]),
        repeats=3)
    overlap_equal = overlap_loop_matches == overlap_blocked_matches

    # --- join: executor scaling ---------------------------------------
    spec = JoinSpec(s=0.75, c=0.8)
    index_spec = BatchIndexSpec(
        d=d, scheme="hyperplane", n_tables=tables, bits_per_table=bits,
        seed=seed + 2, layout="csr",
    )
    join_seconds = {}
    join_results = {}
    for workers in cfg["workers"]:
        print(f"[bench_perf] join: {workers} worker(s) ...", flush=True)
        secs, result = _timed(lambda w=workers: parallel_lsh_join(
            P, Q, spec, index_spec=index_spec, n_workers=w, block=cfg["block"]))
        join_seconds[str(workers)] = secs
        join_results[workers] = result
    base = join_results[cfg["workers"][0]]
    parallel_identical = all(
        r.matches == base.matches
        and r.inner_products_evaluated == base.inner_products_evaluated
        for r in join_results.values()
    )

    report = {
        "schema": SCHEMA,
        "meta": {
            "quick": quick,
            "n": n, "d": d, "n_queries": nq,
            "n_tables": tables, "bits_per_table": bits, "n_probes": probes,
            "block": cfg["block"], "seed": seed,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "timings": {
            "build_dict_s": build_dict_s,
            "build_csr_s": build_csr_s,
            "candidates_dict_s": cand_dict_s,
            "candidates_csr_s": cand_csr_s,
            "candidates_multiprobe_dict_s": cand_dict_probe_s,
            "candidates_multiprobe_csr_s": cand_csr_probe_s,
            "verify_loop_s": verify_loop_s,
            "verify_blocked_s": verify_blocked_s,
            "verify_overlap_loop_s": overlap_loop_s,
            "verify_overlap_blocked_s": overlap_blocked_s,
            "join_workers_s": join_seconds,
        },
        "speedups": {
            "build_csr_vs_dict": build_dict_s / build_csr_s,
            "candidates_csr_vs_dict": cand_dict_s / cand_csr_s,
            "candidates_multiprobe_csr_vs_dict": cand_dict_probe_s / cand_csr_probe_s,
            "verify_blocked_vs_loop": verify_loop_s / verify_blocked_s,
            "verify_overlap_blocked_vs_loop": overlap_loop_s / overlap_blocked_s,
            "join_scaling_vs_1_worker": {
                w: join_seconds[str(cfg["workers"][0])] / s
                for w, s in join_seconds.items()
            },
        },
        "work": {
            "candidates_per_query_csr": idx_csr.stats.candidates_per_query,
            "inner_products_verified": evaluated,
            "join_matched": base.matched_count,
            "join_inner_products_evaluated": base.inner_products_evaluated,
        },
        "checks": {
            "candidate_sets_equal": sets_equal,
            "multiprobe_candidate_sets_equal": probe_sets_equal,
            "verify_matches_equal": verify_equal,
            "verify_overlap_matches_equal": overlap_equal,
            "parallel_matches_identical": parallel_identical,
        },
    }
    return report


def validate_schema(report: dict) -> None:
    """Raise if ``report`` does not look like a bench_perf artifact."""
    assert report.get("schema") == SCHEMA, "unknown schema"
    for section in ("meta", "timings", "speedups", "work", "checks"):
        assert isinstance(report.get(section), dict), f"missing section {section}"
    for key in ("build_dict_s", "build_csr_s", "candidates_dict_s",
                "candidates_csr_s", "verify_loop_s", "verify_blocked_s",
                "join_workers_s"):
        assert key in report["timings"], f"missing timing {key}"
    for key in ("candidates_csr_vs_dict", "verify_blocked_vs_loop",
                "join_scaling_vs_1_worker"):
        assert key in report["speedups"], f"missing speedup {key}"
    assert all(isinstance(v, bool) for v in report["checks"].values())


def main(argv: Optional[List[str]] = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="seconds-scale CI smoke instead of the full n=100k run")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    out_dir = os.path.dirname(os.path.abspath(args.out))
    if not os.path.isdir(out_dir):
        parser.error(f"output directory does not exist: {out_dir}")
    report = run_suite(quick=args.quick)
    validate_schema(report)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    failed = [name for name, ok in report["checks"].items() if not ok]
    print(f"[bench_perf] wrote {args.out}")
    print(f"[bench_perf] candidates speedup (csr vs dict): "
          f"{report['speedups']['candidates_csr_vs_dict']:.1f}x")
    print(f"[bench_perf] verify speedup (blocked vs loop): "
          f"{report['speedups']['verify_blocked_vs_loop']:.1f}x sparse, "
          f"{report['speedups']['verify_overlap_blocked_vs_loop']:.1f}x overlapped")
    if failed:
        print(f"[bench_perf] FAILED checks: {failed}", file=sys.stderr)
        raise SystemExit(1)
    return report


if __name__ == "__main__":
    main()
