"""Seeded perf suite for the fast paths: CSR tables, blocked verify, executor.

Runs a fixed, fully seeded sequence of build / candidate-generation /
verification / join timings and writes the results as JSON (default
``BENCH_PR10.json`` at the repo root), so successive PRs have a recorded
baseline to beat.  Two modes:

* full (default): n=100k, d=64 for the core suite, n=20k, d=64 for the
  batch-hashing and sketch suites; takes a few minutes because the
  reference paths are slow (that is the point).
* ``--quick``: a seconds-scale shrink of the same suites for CI smoke
  (asserts the suites run end to end and the schema is stable).

Suites (select with ``--suites``):

* ``core``: dict-vs-CSR build and candidate generation, per-query GEMV
  loop vs the blocked verification kernel, ``parallel_lsh_join``
  worker scaling.
* ``hash_batch_vs_generic``: the batch hashing protocol — family-native
  ``hash_matrix`` vs the generic per-row closure path of ``LSHIndex``
  for hyperplane, cross-polytope, and E2LSH, with identical candidate
  sets asserted.  Exits non-zero if a family that should hash natively
  silently fell back to the generic per-row loop.
* ``sketch_batch_vs_loop``: the Section 4.3 sketch join — blocked
  ``sketch_unsigned_join`` (batched c-MIPS descents) vs the per-query
  ``SketchCMIPS.query`` loop on a shared structure, identical matches
  asserted.
* ``planner_dispatch``: the unified engine — the cost-model planner's
  backend picks across a small (n, d, spec) grid (sanity-checked:
  small/exact instances pick exact backends, large gapped instances
  pick approximate ones), and the dispatch overhead of
  ``repro.engine.join`` vs calling the underlying kernel directly,
  identical matches asserted.  Full mode fails when the overhead
  exceeds ``DISPATCH_OVERHEAD_CEILING`` (5%).
* ``obs_overhead``: the observability hooks — the instrumented LSH
  kernel (``span()`` calls present, tracing disabled, the default
  state every kernel now runs in) vs an inline span-free twin of the
  same loop, paired interleaved timing, identical matches asserted.
  Full mode fails when the disabled-hook overhead exceeds
  ``OBS_OVERHEAD_CEILING`` (2%).  Also records the informational cost
  of ``trace=True`` through the engine and the per-call price of a
  disabled ``span()``.
* ``hybrid_vs_single``: the Plan IR — a norm-skewed workload (a few
  high-norm hub points in one subspace, a low-norm tail in the
  complementary one) joined by each single backend and by the
  ``norm_prefix_lsh_plan`` hybrid.  Full mode fails unless the hybrid
  beats the best single backend and the one-stage ``Plan`` dispatch
  overhead (vs the string-backend path) stays within
  ``PLAN_DISPATCH_OVERHEAD_CEILING`` (5%).  Both modes assert match
  soundness, near-brute coverage, and serial/parallel bit-identity.
* ``quantized_tier``: the compact index tier — the int8 scan kernel vs
  the ``brute_force`` backend on a planted n=100k join (bit-identical
  matches asserted), index memory reduction vs the float64 matrix,
  serial vs 2-worker bit-identity for the ``quantized`` backend on both
  pool kinds, the ``quantized_filter_plan`` sketch-filter pipeline vs
  brute on a planted d=512 workload (recall and verified-fraction
  recorded), and the planner's compact-tier behavior (a memory budget
  steers ``backend="auto"`` to ``quantized`` live; the
  ``ip_filter+quantized`` hybrid is costed for gapped specs).  Gated in
  both modes: memory reduction >= ``QUANT_MEMORY_REDUCTION_FLOOR`` and
  filter recall >= ``QUANT_FILTER_RECALL_FLOOR`` (both deterministic
  given the seed).  Full mode adds the scan-throughput floor — int8
  scan >= ``QUANT_SCAN_SPEEDUP_FLOOR`` x the brute join wall — and the
  filter pipeline beating brute end to end (quick shapes are too small
  for stable ratios).
* ``streaming_session``: the session-oriented engine core — one
  prepared ``engine.open`` session answering repeated small query
  batches vs the same batches through one-shot ``engine.join`` calls
  (which rebuild the LSH index every call), bit-identical matches
  asserted; a streamed query set over a memmapped file
  (``QuerySource.from_memmap`` through ``session.query_stream``) vs
  the in-memory ``session.query`` on the same rows, bit-identical
  matches asserted; and the saved index (``session.save`` →
  ``engine.open_path``) reloaded in fresh child processes with
  ``mmap=True`` vs the fully-materialized load, resident set recorded
  after the load and again after a probe query.  Full mode gates
  session reuse >= ``SESSION_REUSE_SPEEDUP_FLOOR`` (5x) and the memmap
  child's post-load RSS <= ``SESSION_MMAP_RSS_CEILING`` x the full
  load's.
* ``parallel_scaling``: the zero-copy executor — serial vs the
  shared-memory process pool, the GIL-free thread pool, and an inline
  reproduction of the legacy pickle-per-chunk executor at each worker
  count, all bit-identical by assertion.  The gates are cores-aware
  (``meta.cpu_count`` records the machine): with >= 2 cores the quick
  gate fails when 2 workers run below 1.0x serial; on a single core —
  where true parallel speedup is physically impossible — it gates on
  the zero-copy path beating the legacy executor instead (pure
  serialization savings, core-count independent).  Full mode adds the
  2.0x @ 4 workers floor on machines with >= 4 cores.
* ``jaccard_join``: the similarity-measure layer — the exact
  ``set_scan`` postings join vs the ``minhash_lsh`` filter-then-verify
  backend on a planted Jaccard workload (``measure="jaccard"`` through
  the unchanged engine core).  Gated in both modes (the workload is
  seeded, so the numbers are deterministic): minhash recall of the
  exact answers >= ``JACCARD_MINHASH_RECALL_FLOOR`` and exact-verified
  soundness; serial == 2-worker bit-identity; session ``query`` and
  ``query_stream`` equal to the one-shot join.  Full mode adds the
  pair-pruning check (minhash evaluates fewer pairs than the scan).

Usage::

    PYTHONPATH=src python tools/bench_perf.py [--quick] [--out PATH] \
        [--suites core,hash_batch_vs_generic,sketch_batch_vs_loop,\
planner_dispatch,obs_overhead,hybrid_vs_single,quantized_tier,\
parallel_scaling,streaming_session,jaccard_join]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import replace
from typing import Callable, List, Optional

import numpy as np

from repro.core import JoinSpec, close_pools, parallel_lsh_join
from repro.core.brute_force import brute_force_join
from repro.core.executor import (
    BatchIndexSpec,
    QuerySource,
    _chunk_bounds,
    merge_join_chunks,
)
from repro.core.lsh_join import lsh_filter_verify_chunk
from repro.core.problems import JoinResult
from repro.core.sketch_join import sketch_unsigned_join
from repro.core.verify import verify_block, verify_candidates
from repro.datasets import jaccard_pair, planted_jaccard_sets, random_unit
from repro.engine import Plan, norm_prefix_lsh_plan, quantized_filter_plan
from repro.engine import open_session
from repro.engine import join as engine_join
from repro.engine import plan_join
from repro.engine.planner import default_model
from repro.quant import quantize_rows, quantized_scan_survivors
from repro.lsh import BatchSignIndex, CrossPolytopeLSH, E2LSH, HyperplaneLSH, LSHIndex
from repro.lsh.index import block_candidates
from repro.obs.metrics import Histogram
from repro.obs.sink import read_events, sink_files
from repro.obs.trace import span
from repro.sketches import SketchCMIPS
from repro.utils.validation import check_matrix

SCHEMA = "repro-bench-perf/v1"
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_PR10.json")

ALL_SUITES = ("core", "hash_batch_vs_generic", "sketch_batch_vs_loop",
              "planner_dispatch", "obs_overhead", "serving_obs",
              "hybrid_vs_single", "quantized_tier", "parallel_scaling",
              "streaming_session", "jaccard_join")

FULL = dict(n=100_000, d=64, n_queries=2_000, n_tables=16, bits_per_table=14,
            n_probes=2, workers=(1, 2, 4), block=256, seed=2016)
QUICK = dict(n=4_000, d=32, n_queries=256, n_tables=8, bits_per_table=10,
             n_probes=2, workers=(1, 2), block=128, seed=2016)

HASH_FULL = dict(n=20_000, d=64, n_queries=2_000, n_tables=8,
                 hashes_per_table=4, seed=2016)
HASH_QUICK = dict(n=1_500, d=32, n_queries=200, n_tables=4,
                  hashes_per_table=3, seed=2016)

SKETCH_FULL = dict(n=20_000, d=64, n_queries=400, kappa=4.0, copies=5,
                   leaf_size=16, s=4.0, block=512, seed=2016)
SKETCH_QUICK = dict(n=1_000, d=32, n_queries=64, kappa=4.0, copies=5,
                    leaf_size=16, s=3.0, block=128, seed=2016)

PLANNER_FULL = dict(n=20_000, d=64, n_queries=1_000, s=0.75, c=0.8,
                    n_tables=8, bits_per_table=10, block=256, repeats=21,
                    seed=2016)
PLANNER_QUICK = dict(n=2_000, d=32, n_queries=200, s=0.75, c=0.8,
                     n_tables=4, bits_per_table=8, block=128, repeats=3,
                     seed=2016)

OBS_FULL = dict(n=50_000, d=64, n_queries=10_000, s=0.75, c=0.8, n_tables=8,
                bits_per_table=10, block=256, repeats=21, seed=2016)
OBS_QUICK = dict(n=2_000, d=32, n_queries=256, s=0.75, c=0.8, n_tables=4,
                 bits_per_table=8, block=128, repeats=3, seed=2016)

HYBRID_FULL = dict(n=30_000, d=32, n_queries=20_000, hub_fraction=0.02,
                   hub_query_fraction=0.85, s=0.8, c=0.5, n_tables=16,
                   hashes_per_table=10, block=256, repeats=2,
                   dispatch_n=4_000, dispatch_queries=512,
                   dispatch_repeats=15, seed=2016)
HYBRID_QUICK = dict(n=3_000, d=32, n_queries=600, hub_fraction=0.02,
                    hub_query_fraction=0.85, s=0.8, c=0.5, n_tables=16,
                    hashes_per_table=10, block=128, repeats=1,
                    dispatch_n=1_500, dispatch_queries=200,
                    dispatch_repeats=3, seed=2016)

QUANT_FULL = dict(n=100_000, d=64, n_queries=2_000, planted=400, rho=0.92,
                  s=0.8, c=0.9, workers=2, block=256, repeats=3,
                  filter_n=20_000, filter_d=512, filter_queries=2_000,
                  filter_planted=400, filter_rho=0.92, filter_dims=128,
                  filter_s=0.85, filter_c=0.7, seed=2016)
QUANT_QUICK = dict(n=8_000, d=64, n_queries=512, planted=64, rho=0.92,
                   s=0.8, c=0.9, workers=2, block=128, repeats=3,
                   filter_n=2_500, filter_d=256, filter_queries=256,
                   filter_planted=40, filter_rho=0.92, filter_dims=64,
                   filter_s=0.85, filter_c=0.7, seed=2016)

PARALLEL_FULL = dict(n=40_000, d=64, n_queries=2_048, n_tables=10,
                     bits_per_table=12, block=256, workers=(2, 4),
                     repeats=2, seed=2016)
PARALLEL_QUICK = dict(n=4_000, d=32, n_queries=384, n_tables=6,
                      bits_per_table=9, block=128, workers=(2,),
                      repeats=3, seed=2016)

SESSION_FULL = dict(n=100_000, d=64, batch=64, batches=50, n_tables=12,
                    hashes_per_table=12, block=256, stream_rows=4096,
                    seed=2016)
SESSION_QUICK = dict(n=4_000, d=32, batch=32, batches=8, n_tables=6,
                     hashes_per_table=9, block=128, stream_rows=512,
                     seed=2016)

SERVING_FULL = dict(n=50_000, d=64, batch=64, batches=120, n_tables=8,
                    hashes_per_table=10, block=256, repeats=9,
                    sample_rate=0.01, sink_cap=65_536, quantile_n=200_000,
                    seed=2016)
SERVING_QUICK = dict(n=3_000, d=32, batch=32, batches=24, n_tables=4,
                     hashes_per_table=8, block=128, repeats=3,
                     sample_rate=0.01, sink_cap=32_768, quantile_n=20_000,
                     seed=2016)

JACCARD_FULL = dict(n=20_000, n_queries=2_000, universe=8_192, mean_size=32,
                    threshold=0.6, block=256, workers=2, repeats=2, seed=2016)
JACCARD_QUICK = dict(n=2_000, n_queries=200, universe=1_024, mean_size=16,
                     threshold=0.6, block=64, workers=2, repeats=1, seed=2016)

#: Full-mode speedup floors; quick mode only checks correctness (the
#: shrunken workloads are too small for stable ratios).
HASH_SPEEDUP_FLOORS = {"crosspolytope": 10.0, "e2lsh": 10.0}
#: The blocked sketch join runs 5-8x the per-query loop on the
#: reference machine, but the *loop* side swings with BLAS/allocator
#: state (recorded runs: 8.4x, 5.2x, 4.5x with an identical blocked
#: wall), so the floor sits below the observed band.
SKETCH_JOIN_SPEEDUP_FLOOR = 4.0
#: Max tolerated relative wall-time overhead of ``repro.engine.join``
#: over calling the underlying kernel directly (full mode only).
DISPATCH_OVERHEAD_CEILING = 0.05
#: Max tolerated relative wall-time overhead of the disabled
#: observability hooks: the instrumented kernel vs a span-free twin of
#: the same loop (full mode only).
OBS_OVERHEAD_CEILING = 0.02
#: Max tolerated relative wall-time overhead of dispatching a
#: one-stage ``Plan`` vs the plain string-backend path (full mode
#: only) — the Plan IR must not tax single-backend joins.
PLAN_DISPATCH_OVERHEAD_CEILING = 0.05
#: Full-mode floor on the hybrid's matched-query coverage relative to
#: brute force (the hybrid's LSH tail is approximate).
HYBRID_COVERAGE_FLOOR = 0.95
#: Full-mode parallel-scaling floor at 4 workers, enforced only on
#: machines with >= 4 cores (``meta.cpu_count`` records the machine a
#: given artifact measured).
PARALLEL_4W_SPEEDUP_FLOOR = 2.0
#: Full-mode floor on int8 scan throughput vs the float64 brute join
#: wall at the same (n, d, queries).  sgemm runs ~2x dgemm on the
#: reference machine and the scan additionally skips brute's per-block
#: match bookkeeping, so the observed band sits at 2.2-2.4x.
QUANT_SCAN_SPEEDUP_FLOOR = 2.0
#: Index bytes floor, both modes: float64 rows vs the int8 codes +
#: per-row float64 (scale, norm, eps) metadata — 8d / (d + 24), i.e.
#: 5.8x at d=64.  Deterministic, so no measurement slack is needed.
QUANT_MEMORY_REDUCTION_FLOOR = 4.0
#: Both-modes floor on the sketch-filter pipeline's recall of brute's
#: answered queries (the z=3 margin targets ~none lost; the planted
#: workload is seeded, so the observed recall is deterministic).
QUANT_FILTER_RECALL_FLOOR = 0.99
#: Full-mode floor on session reuse: 50 repeated small query batches
#: through one prepared ``engine.open`` session vs the same batches as
#: one-shot ``engine.join`` calls, which rebuild the LSH index every
#: call.  Build dominates the one-shot wall at n=100k, so the observed
#: ratio approaches the batch count; 5x leaves a wide margin.
SESSION_REUSE_SPEEDUP_FLOOR = 5.0
#: Full-mode ceiling on the memmap-loaded session's post-load RSS
#: relative to the fully-materialized load of the same saved index
#: (fresh child processes, ``/proc/self/statm``).  The mmap load maps
#: sidecar pages lazily, so right after ``open_path`` its resident set
#: is the interpreter baseline; the full load has every array in
#: anonymous memory.
SESSION_MMAP_RSS_CEILING = 0.85
#: Max tolerated relative wall-time overhead of the session serving
#: telemetry (always-on latency histograms, sampler consult, sink gate)
#: with sampling disabled, vs the pre-PR ``query()`` body — validate the
#: batch, dispatch, bump the counters — replayed on the same session
#: (full mode only).
SERVING_OBS_DISABLED_CEILING = 0.02
#: Same pair with ``trace_sample_rate=0.01``: roughly 1 in 100 batches
#: pays the full span-tracer cost, so the amortized ceiling is looser
#: (full mode only).
SERVING_OBS_SAMPLED_CEILING = 0.05
#: Both-modes floor on ``minhash_lsh`` recall of the exact ``set_scan``
#: answers on the planted Jaccard workload.  The default banding (L=32
#: tables of k=4 hashes) collides a true J=0.6 pair in ~98.9% of
#: queries per size partition, and the workload is seeded, so the
#: observed recall is deterministic and sits above the floor.
JACCARD_MINHASH_RECALL_FLOOR = 0.95


def _timed(fn: Callable, repeats: int = 1):
    """Best-of-``repeats`` wall time; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _timed_pair(fn_a: Callable, fn_b: Callable, repeats: int = 1):
    """Best-of wall times for two functions with interleaved repetitions.

    Alternating a/b within each repetition keeps slow machine-load drift
    from landing entirely on one side of the ratio, and alternating
    which side runs *first* across repetitions cancels position bias
    (the first run of a round pays cold caches / allocator growth for
    both) — essential when the quantity of interest (dispatch or
    observability overhead) is a few percent.
    Returns (seconds_a, seconds_b, last_result_a, last_result_b).
    """
    best = {"a": float("inf"), "b": float("inf")}
    results = {"a": None, "b": None}
    labelled = (("a", fn_a), ("b", fn_b))
    for i in range(repeats):
        for label, fn in labelled if i % 2 == 0 else labelled[::-1]:
            start = time.perf_counter()
            results[label] = fn()
            best[label] = min(best[label], time.perf_counter() - start)
    return best["a"], best["b"], results["a"], results["b"]


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _timed_pair_median(fn_a: Callable, fn_b: Callable, repeats: int = 1):
    """:func:`_timed_pair` plus a drift-robust overhead estimate.

    Returns ``(sec_a, sec_b, overhead, res_a, res_b)`` where ``sec_*``
    are best-of walls (fed to the timings/speedups report as before) and
    ``overhead`` is the MEDIAN of the per-round ``b/a - 1`` ratios.  The
    few-percent overhead ceilings cannot ride the best-of ratio: the two
    minima are taken independently, so each is biased by whichever round
    caught the quietest scheduler window, and on a busy shared box that
    bias (observed at +-10% on half-second legs) dwarfs the quantity
    under test.  Within one round the two legs run back to back, so the
    per-round ratio is drift-paired and its median converges on the true
    overhead.
    """
    best = {"a": float("inf"), "b": float("inf")}
    results = {"a": None, "b": None}
    ratios = []
    labelled = (("a", fn_a), ("b", fn_b))
    for i in range(repeats):
        round_s = {}
        for label, fn in labelled if i % 2 == 0 else labelled[::-1]:
            start = time.perf_counter()
            results[label] = fn()
            round_s[label] = time.perf_counter() - start
            best[label] = min(best[label], round_s[label])
        ratios.append(round_s["b"] / round_s["a"] - 1.0)
    return best["a"], best["b"], _median(ratios), results["a"], results["b"]


def _paired_batch_overhead(call_a: Callable, call_b: Callable, items,
                           repeats: int = 1):
    """Per-item interleaved paired timing of two single-item callables.

    Runs ``call_a(item)`` and ``call_b(item)`` adjacent for every item —
    alternating which side goes first per item and per round — and sums
    each side's walls within a round.  Pairing at the single-call scale
    (milliseconds) instead of the leg scale (seconds) keeps machine-load
    drift correlated across the sides, which tightens the per-round
    ratio enough for a 2% ceiling; the reported overhead is the median
    round ratio of ``b`` over ``a`` (see :func:`_timed_pair_median` for
    why best-of ratios are unusable here).
    Returns ``(sec_a, sec_b, overhead, results_a, results_b)`` with
    ``sec_*`` the best round sums and ``results_*`` the last round's
    per-item results.
    """
    best = {"a": float("inf"), "b": float("inf")}
    results = {"a": None, "b": None}
    ratios = []
    for i in range(repeats):
        round_s = {"a": 0.0, "b": 0.0}
        round_res = {"a": [], "b": []}
        labelled = (("a", call_a), ("b", call_b))
        for j, item in enumerate(items):
            for label, call in labelled if (i + j) % 2 == 0 else labelled[::-1]:
                start = time.perf_counter()
                out = call(item)
                round_s[label] += time.perf_counter() - start
                round_res[label].append(out)
        for label in ("a", "b"):
            best[label] = min(best[label], round_s[label])
            results[label] = round_res[label]
        ratios.append(round_s["b"] / round_s["a"] - 1.0)
    return best["a"], best["b"], _median(ratios), results["a"], results["b"]


def _assert_same_candidates(a: List[np.ndarray], b: List[np.ndarray]) -> bool:
    if len(a) != len(b):
        return False
    return all(np.array_equal(x, y) for x, y in zip(a, b))


def _run_hash_suite(quick: bool, timings: dict, speedups: dict,
                    work: dict, checks: dict) -> dict:
    """Family-native batch hashing vs the generic per-row closure path."""
    cfg = HASH_QUICK if quick else HASH_FULL
    n, d, nq = cfg["n"], cfg["d"], cfg["n_queries"]
    tables, k, seed = cfg["n_tables"], cfg["hashes_per_table"], cfg["seed"]
    print(f"[bench_perf] hash suite: n={n} d={d} L={tables} k={k}", flush=True)
    P = random_unit(n, d, seed=seed) * 0.95
    Q = random_unit(nq, d, seed=seed + 1) * 0.95
    families = {
        "hyperplane": HyperplaneLSH(d),
        "crosspolytope": CrossPolytopeLSH(d),
        "e2lsh": E2LSH(d, w=2.0),
    }
    for name, family in families.items():
        print(f"[bench_perf] hash: {name} batch vs generic ...", flush=True)
        batch_index = LSHIndex(family, n_tables=tables, hashes_per_table=k,
                               seed=seed + 2)
        generic_index = LSHIndex(family, n_tables=tables, hashes_per_table=k,
                                 seed=seed + 2, use_batch=False)
        # A family advertised as native must actually hash natively; a
        # silent fallback to the per-row loop is a failed check (and a
        # non-zero exit).
        checks[f"hash_native_path_{name}"] = batch_index.uses_batch_hashing
        batch_s, _ = _timed(
            lambda idx=batch_index: idx._hasher.hash_matrix(P, side="data"),
            repeats=3)
        generic_s, _ = _timed(
            lambda idx=generic_index: idx._hasher.hash_matrix(P, side="data"))
        timings[f"hash_batch_{name}_s"] = batch_s
        timings[f"hash_generic_{name}_s"] = generic_s
        speedups[f"hash_batch_vs_generic_{name}"] = generic_s / batch_s
        batch_index.build(P)
        generic_index.build(P)
        batch_cands = batch_index.candidates_batch(Q)
        generic_cands = generic_index.candidates_batch(Q)
        checks[f"hash_candidates_equal_{name}"] = _assert_same_candidates(
            batch_cands, generic_cands)
        work[f"hash_candidates_per_query_{name}"] = (
            batch_index.stats.candidates_per_query)
        if not quick and name in HASH_SPEEDUP_FLOORS:
            checks[f"hash_speedup_floor_{name}"] = (
                speedups[f"hash_batch_vs_generic_{name}"]
                >= HASH_SPEEDUP_FLOORS[name])
    return cfg


def _sketch_loop_join(P, Q, s: float, structure: SketchCMIPS,
                      block: int) -> JoinResult:
    """The pre-batch reference: one ``SketchCMIPS.query`` per query."""
    spec = JoinSpec(s=s, c=structure.approximation_factor, signed=False)
    evaluated = 0
    proposals = []
    empty = np.empty(0, dtype=np.int64)
    for q in Q:
        answer = structure.query(q)
        evaluated += structure.recovery.query_cost() // max(1, P.shape[1])
        proposals.append(
            np.array([answer.index], dtype=np.int64) if answer.index >= 0 else empty
        )
    matches, _ = verify_candidates(
        P, Q, proposals, threshold=spec.cs, signed=False, block=block
    )
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=evaluated,
        candidates_generated=len(matches),
    )


def _run_sketch_suite(quick: bool, timings: dict, speedups: dict,
                      work: dict, checks: dict) -> dict:
    """Blocked sketch join (batched c-MIPS descents) vs the query loop."""
    cfg = SKETCH_QUICK if quick else SKETCH_FULL
    n, d, nq = cfg["n"], cfg["d"], cfg["n_queries"]
    seed, s, block = cfg["seed"], cfg["s"], cfg["block"]
    print(f"[bench_perf] sketch suite: n={n} d={d} queries={nq} "
          f"kappa={cfg['kappa']}", flush=True)
    rng = np.random.default_rng(seed)
    P = rng.normal(size=(n, d))
    Q = rng.normal(size=(nq, d))
    print("[bench_perf] sketch: building structure ...", flush=True)
    build_s, structure = _timed(lambda: SketchCMIPS(
        P, kappa=cfg["kappa"], copies=cfg["copies"],
        leaf_size=cfg["leaf_size"], seed=seed + 2))
    print("[bench_perf] sketch: join loop vs blocked ...", flush=True)
    loop_s, loop_result = _timed(
        lambda: _sketch_loop_join(P, Q, s, structure, block))
    blocked_s, blocked_result = _timed(
        lambda: sketch_unsigned_join(P, Q, s=s, structure=structure,
                                     block=block), repeats=2)
    print("[bench_perf] sketch: query_batch vs query loop ...", flush=True)
    query_loop_s, loop_answers = _timed(
        lambda: [structure.query(q) for q in Q])
    query_batch_s, batch_answers = _timed(
        lambda: structure.query_batch(Q), repeats=2)
    timings["sketch_build_s"] = build_s
    timings["sketch_join_loop_s"] = loop_s
    timings["sketch_join_blocked_s"] = blocked_s
    timings["sketch_query_loop_s"] = query_loop_s
    timings["sketch_query_batch_s"] = query_batch_s
    speedups["sketch_join_blocked_vs_loop"] = loop_s / blocked_s
    speedups["sketch_query_batch_vs_loop"] = query_loop_s / query_batch_s
    work["sketch_join_matched"] = blocked_result.matched_count
    work["sketch_join_inner_products_evaluated"] = (
        blocked_result.inner_products_evaluated)
    checks["sketch_join_matches_equal"] = (
        blocked_result.matches == loop_result.matches
        and blocked_result.inner_products_evaluated
        == loop_result.inner_products_evaluated)
    checks["sketch_query_indices_equal"] = (
        [int(i) for i in batch_answers.indices]
        == [a.index for a in loop_answers])
    if not quick:
        checks["sketch_join_speedup_floor"] = (
            speedups["sketch_join_blocked_vs_loop"] >= SKETCH_JOIN_SPEEDUP_FLOOR)
    return cfg


#: Exact backends: a planner pick from this set means "no approximation".
_EXACT_BACKENDS = ("brute_force", "norm_pruned")

#: Dimension-only planner grid: (label, n, m, d, spec).  No data is
#: materialized; ``plan_join`` ranks backends from the cost model alone.
_PLANNER_GRID = (
    ("tiny_signed", 200, 100, 32, JoinSpec(s=0.8, c=0.5)),
    ("exact_demand_c1", 50_000, 50_000, 64, JoinSpec(s=0.8, c=1.0)),
    ("large_gap_signed", 2_000_000, 2_000_000, 32, JoinSpec(s=0.9, c=0.3)),
    ("large_gap_unsigned", 2_000_000, 2_000_000, 32,
     JoinSpec(s=0.9, c=0.3, signed=False)),
    ("topk_small", 5_000, 500, 32, JoinSpec(s=0.3, c=0.9, k=4)),
)


def _run_planner_suite(quick: bool, timings: dict, speedups: dict,
                       work: dict, checks: dict) -> dict:
    """Planner picks over a (n, m, d, spec) grid + engine dispatch overhead."""
    cfg = PLANNER_QUICK if quick else PLANNER_FULL
    n, d, nq = cfg["n"], cfg["d"], cfg["n_queries"]
    seed, block, repeats = cfg["seed"], cfg["block"], cfg["repeats"]
    print(f"[bench_perf] planner suite: n={n} d={d} queries={nq} "
          f"repeats={repeats}", flush=True)

    # --- planner picks (dimension-only, no data) ----------------------
    picks = {}
    for label, gn, gm, gd, gspec in _PLANNER_GRID:
        plan = plan_join(gn, gm, gd, gspec)
        picks[label] = plan.backend
    work["planner_picks"] = picks
    checks["planner_tiny_picks_exact"] = picks["tiny_signed"] in _EXACT_BACKENDS
    checks["planner_exact_demand_picks_exact"] = (
        picks["exact_demand_c1"] in _EXACT_BACKENDS)
    checks["planner_large_gap_picks_approximate"] = (
        picks["large_gap_signed"] in ("lsh", "sketch")
        and picks["large_gap_unsigned"] in ("lsh", "sketch"))

    # --- dispatch overhead: engine.join vs the bare kernel ------------
    spec = JoinSpec(s=cfg["s"], c=cfg["c"])
    P = random_unit(n, d, seed=seed) * 0.95
    Q = random_unit(nq, d, seed=seed + 1) * 0.95

    print("[bench_perf] dispatch: brute_force engine vs kernel ...", flush=True)
    (direct_brute_s, engine_brute_s, overhead_brute,
     direct_brute, engine_brute) = _timed_pair_median(
        lambda: brute_force_join(P, Q, spec, block=block),
        lambda: engine_join(P, Q, spec, backend="brute_force", block=block),
        repeats=repeats)

    print("[bench_perf] dispatch: lsh engine vs kernel ...", flush=True)
    index = BatchSignIndex.for_hyperplane(
        d, n_tables=cfg["n_tables"], bits_per_table=cfg["bits_per_table"],
        seed=seed + 2).build(P)
    (direct_lsh_s, engine_lsh_s, overhead_lsh,
     direct_lsh, engine_lsh) = _timed_pair_median(
        lambda: lsh_filter_verify_chunk(index, P, Q, True, spec.cs, 0, block),
        lambda: engine_join(P, Q, spec, backend="lsh", index=index, block=block),
        repeats=repeats)
    timings["dispatch_brute_kernel_s"] = direct_brute_s
    timings["dispatch_brute_engine_s"] = engine_brute_s
    timings["dispatch_lsh_kernel_s"] = direct_lsh_s
    timings["dispatch_lsh_engine_s"] = engine_lsh_s
    speedups["engine_vs_kernel_brute_force"] = direct_brute_s / engine_brute_s
    speedups["engine_vs_kernel_lsh"] = direct_lsh_s / engine_lsh_s
    work["dispatch_overhead_brute_force"] = overhead_brute
    work["dispatch_overhead_lsh"] = overhead_lsh
    work["dispatch_matched"] = engine_brute.matched_count
    checks["dispatch_brute_matches_equal"] = (
        engine_brute.matches == direct_brute.matches
        and engine_brute.inner_products_evaluated
        == direct_brute.inner_products_evaluated)
    checks["dispatch_lsh_matches_equal"] = (
        engine_lsh.matches == direct_lsh[0]
        and engine_lsh.inner_products_evaluated == direct_lsh[1])
    if not quick:
        checks["dispatch_overhead_brute_within_ceiling"] = (
            overhead_brute <= DISPATCH_OVERHEAD_CEILING)
        checks["dispatch_overhead_lsh_within_ceiling"] = (
            overhead_lsh <= DISPATCH_OVERHEAD_CEILING)
    return cfg


def _lsh_chunk_span_free(index, P, Q_chunk, signed: bool, cs: float,
                         block: int):
    """:func:`lsh_filter_verify_chunk` with the ``span()`` calls removed.

    Kept line-for-line in sync with the kernel so the timed pair differs
    only in the observability hooks — the quantity the ``obs_overhead``
    suite exists to bound.
    """
    before = index.stats.copy()
    matches: List[Optional[int]] = []
    verified = 0
    for q0 in range(0, Q_chunk.shape[0], block):
        Q_block = Q_chunk[q0:q0 + block]
        cand_lists = block_candidates(index, Q_block, 0)
        result = verify_block(P, Q_block, cand_lists, signed=signed)
        verified += result.n_evaluated
        matches.extend(
            int(idx) if idx >= 0 and score >= cs else None
            for idx, score in zip(result.best_index, result.best_score)
        )
    delta = index.stats.diff(before)
    return matches, verified, delta.candidates, delta


def _run_obs_suite(quick: bool, timings: dict, speedups: dict,
                   work: dict, checks: dict) -> dict:
    """Cost of the observability hooks, disabled (ceiling) and enabled."""
    cfg = OBS_QUICK if quick else OBS_FULL
    n, d, nq = cfg["n"], cfg["d"], cfg["n_queries"]
    seed, block, repeats = cfg["seed"], cfg["block"], cfg["repeats"]
    print(f"[bench_perf] obs suite: n={n} d={d} queries={nq} "
          f"repeats={repeats}", flush=True)
    spec = JoinSpec(s=cfg["s"], c=cfg["c"])
    P = random_unit(n, d, seed=seed) * 0.95
    Q = random_unit(nq, d, seed=seed + 1) * 0.95
    index = BatchSignIndex.for_hyperplane(
        d, n_tables=cfg["n_tables"], bits_per_table=cfg["bits_per_table"],
        seed=seed + 2).build(P)

    # --- disabled hooks: instrumented kernel vs span-free twin --------
    print("[bench_perf] obs: instrumented kernel vs span-free twin ...",
          flush=True)
    bare_s, hooked_s, overhead_disabled, bare, hooked = _timed_pair_median(
        lambda: _lsh_chunk_span_free(index, P, Q, True, spec.cs, block),
        lambda: lsh_filter_verify_chunk(index, P, Q, True, spec.cs, 0, block),
        repeats=repeats)

    # --- enabled hooks: traced vs untraced engine join (informational)
    print("[bench_perf] obs: engine join traced vs untraced ...", flush=True)
    untraced_s, traced_s, untraced, traced = _timed_pair(
        lambda: engine_join(P, Q, spec, backend="lsh", index=index,
                            block=block),
        lambda: engine_join(P, Q, spec, backend="lsh", index=index,
                            block=block, trace=True),
        repeats=repeats)
    overhead_traced = traced_s / untraced_s - 1.0

    # --- microbench: per-call price of a disabled span() --------------
    calls = 20_000 if quick else 200_000
    span_s, _ = _timed(
        lambda: [span("bench") for _ in range(calls)], repeats=3)

    timings["obs_kernel_span_free_s"] = bare_s
    timings["obs_kernel_instrumented_s"] = hooked_s
    timings["obs_engine_untraced_s"] = untraced_s
    timings["obs_engine_traced_s"] = traced_s
    timings["obs_span_disabled_ns"] = span_s / calls * 1e9
    speedups["obs_span_free_vs_instrumented"] = hooked_s / bare_s
    work["obs_overhead_disabled"] = overhead_disabled
    work["obs_overhead_traced"] = overhead_traced
    def count_spans(node):
        return 1 + sum(count_spans(c) for c in node.children)

    work["obs_traced_span_count"] = (
        count_spans(traced.trace) if traced.trace is not None else 0)
    checks["obs_matches_equal"] = (
        hooked[0] == bare[0] and hooked[1] == bare[1]
        and traced.matches == untraced.matches
        and traced.matches == hooked[0])
    checks["obs_trace_present_when_requested"] = (
        traced.trace is not None and untraced.trace is None)
    if not quick:
        checks["obs_overhead_disabled_within_ceiling"] = (
            overhead_disabled <= OBS_OVERHEAD_CEILING)
    return cfg


def _norm_skewed_workload(n: int, m: int, d: int, hub_fraction: float,
                          hub_query_fraction: float, seed: int):
    """A workload built for two-stage plans: hubs + an orthogonal tail.

    A ``hub_fraction`` of the points are norm-2.0 "hubs" living in the
    first ``d // 4`` dimensions; the rest are norm-0.5 tail points in
    the complementary subspace, so the two populations have zero inner
    product across groups.  Queries are unit vectors: hub queries align
    with a planted hub (inner product ~2), tail queries plant a tail
    match at ``0.5 * 0.9 = 0.45``.  With ``cs = 0.4`` the norm-prefix
    stage answers every hub query from ``hub_fraction * n`` points,
    while ``norm_pruned`` alone can never stop early on a tail query
    (``0.5 * 1 > cs``) and full-scans it — the regime hybrids exist
    for.  Returns ``(P, Q, d_hub)``.
    """
    rng = np.random.default_rng(seed)
    n_hub = max(1, int(round(hub_fraction * n)))
    d_hub = d // 4
    d_tail = d - d_hub
    P = np.zeros((n, d))
    H = rng.normal(size=(n_hub, d_hub))
    P[:n_hub, :d_hub] = 2.0 * H / np.linalg.norm(H, axis=1, keepdims=True)
    T = rng.normal(size=(n - n_hub, d_tail))
    P[n_hub:, d_hub:] = 0.5 * T / np.linalg.norm(T, axis=1, keepdims=True)

    m_hub = int(round(hub_query_fraction * m))
    Q = np.zeros((m, d))
    hub_targets = rng.integers(0, n_hub, m_hub)
    Qh = P[hub_targets, :d_hub] / 2.0 + 0.05 * rng.normal(size=(m_hub, d_hub))
    Q[:m_hub, :d_hub] = Qh / np.linalg.norm(Qh, axis=1, keepdims=True)
    tail_targets = rng.integers(n_hub, n, m - m_hub)
    U = P[tail_targets, d_hub:] / 0.5
    W = rng.normal(size=(m - m_hub, d_tail))
    W -= np.einsum("ij,ij->i", W, U)[:, None] * U
    W /= np.linalg.norm(W, axis=1, keepdims=True)
    Q[m_hub:, d_hub:] = 0.9 * U + np.sqrt(1.0 - 0.9 ** 2) * W
    return P, Q, d_hub


def _run_hybrid_suite(quick: bool, timings: dict, speedups: dict,
                      work: dict, checks: dict) -> dict:
    """Hybrid plan vs every single backend on the norm-skewed workload."""
    cfg = HYBRID_QUICK if quick else HYBRID_FULL
    n, d, nq = cfg["n"], cfg["d"], cfg["n_queries"]
    seed, block, repeats = cfg["seed"], cfg["block"], cfg["repeats"]
    print(f"[bench_perf] hybrid suite: n={n} d={d} queries={nq} "
          f"hubs={cfg['hub_fraction']:g}", flush=True)
    P, Q, _ = _norm_skewed_workload(
        n, nq, d, cfg["hub_fraction"], cfg["hub_query_fraction"], seed)
    spec = JoinSpec(s=cfg["s"], c=cfg["c"])
    lsh_options = dict(n_tables=cfg["n_tables"],
                       hashes_per_table=cfg["hashes_per_table"])
    plan = norm_prefix_lsh_plan(prefix_fraction=cfg["hub_fraction"],
                                tail_options=lsh_options)

    singles = {}
    results = {}
    print("[bench_perf] hybrid: timing single backends ...", flush=True)
    singles["brute_force"], results["brute_force"] = _timed(
        lambda: engine_join(P, Q, spec, backend="brute_force", block=block),
        repeats=repeats)
    singles["norm_pruned"], results["norm_pruned"] = _timed(
        lambda: engine_join(P, Q, spec, backend="norm_pruned", block=block),
        repeats=repeats)
    singles["lsh"], results["lsh"] = _timed(
        lambda: engine_join(P, Q, spec, backend="lsh", block=block,
                            seed=seed + 3, **lsh_options),
        repeats=repeats)
    print("[bench_perf] hybrid: timing norm_pruned+lsh plan ...", flush=True)
    hybrid_s, hybrid = _timed(
        lambda: engine_join(P, Q, spec, backend=plan, block=block,
                            seed=seed + 3),
        repeats=repeats)
    hybrid_parallel = engine_join(P, Q, spec, backend=plan, block=block,
                                  seed=seed + 3, n_workers=2)

    best_single = min(singles, key=lambda name: singles[name])
    matched = {name: r.matched_count for name, r in results.items()}
    matched["hybrid"] = hybrid.matched_count
    sound = all(
        float(P[mi] @ Q[qi]) >= spec.cs - 1e-9
        for qi, mi in enumerate(hybrid.matches) if mi is not None
    )

    timings["hybrid_plan_s"] = hybrid_s
    for name, secs in singles.items():
        timings[f"hybrid_single_{name}_s"] = secs
    speedups["hybrid_vs_best_single"] = singles[best_single] / hybrid_s
    work["hybrid_matched"] = matched
    work["hybrid_best_single"] = best_single
    work["hybrid_coverage_vs_brute"] = (
        matched["hybrid"] / max(1, matched["brute_force"]))
    checks["hybrid_backend_is_plan"] = hybrid.backend == "norm_pruned+lsh"
    checks["hybrid_matches_sound"] = sound
    checks["hybrid_coverage_floor"] = (
        work["hybrid_coverage_vs_brute"] >= HYBRID_COVERAGE_FLOOR)
    checks["hybrid_parallel_identical"] = (
        hybrid_parallel.matches == hybrid.matches
        and hybrid_parallel.inner_products_evaluated
        == hybrid.inner_products_evaluated)
    if not quick:
        checks["hybrid_beats_best_single"] = (
            speedups["hybrid_vs_best_single"] > 1.0)

    # --- one-stage Plan dispatch vs the string-backend path -----------
    print("[bench_perf] hybrid: one-stage Plan dispatch overhead ...",
          flush=True)
    dn, dm = cfg["dispatch_n"], cfg["dispatch_queries"]
    Pd, Qd = P[:dn], Q[:dm]
    one_stage = Plan.single("lsh", lsh_options)
    string_s, plan_s, overhead, by_string, by_plan = _timed_pair_median(
        lambda: engine_join(Pd, Qd, spec, backend="lsh", block=block,
                            seed=seed + 4, **lsh_options),
        lambda: engine_join(Pd, Qd, spec, backend=one_stage, block=block,
                            seed=seed + 4),
        repeats=cfg["dispatch_repeats"])
    timings["hybrid_dispatch_string_s"] = string_s
    timings["hybrid_dispatch_plan_s"] = plan_s
    work["plan_dispatch_overhead"] = overhead
    checks["plan_dispatch_matches_equal"] = (
        by_plan.matches == by_string.matches
        and by_plan.inner_products_evaluated
        == by_string.inner_products_evaluated)
    if not quick:
        checks["plan_dispatch_overhead_within_ceiling"] = (
            overhead <= PLAN_DISPATCH_OVERHEAD_CEILING)
    return cfg


def _planted_instance(n: int, d: int, nq: int, planted: int, rho: float,
                      seed: int):
    """Planted IPS join workload: 0.95-scaled unit rows where the first
    ``planted`` queries get a partner at true inner product ``rho *
    0.95**2`` (the rest follow the random-pair cosine concentration, so
    a threshold above the bulk leaves exactly the planted matches)."""
    P = random_unit(n, d, seed=seed)
    Q = random_unit(nq, d, seed=seed + 1)
    rng = np.random.default_rng(seed + 2)
    idx = rng.choice(n, size=planted, replace=False)
    noise = rng.standard_normal((planted, d))
    noise /= np.linalg.norm(noise, axis=1, keepdims=True)
    Q[:planted] = rho * P[idx] + math.sqrt(1.0 - rho * rho) * noise
    Q[:planted] /= np.linalg.norm(Q[:planted], axis=1, keepdims=True)
    return P * 0.95, Q * 0.95


def _run_quant_suite(quick: bool, timings: dict, speedups: dict,
                     work: dict, checks: dict) -> dict:
    cfg = QUANT_QUICK if quick else QUANT_FULL
    n, d, nq = cfg["n"], cfg["d"], cfg["n_queries"]
    seed, block, repeats = cfg["seed"], cfg["block"], cfg["repeats"]
    print(f"[bench_perf] quantized tier: n={n} d={d} queries={nq} "
          f"planted={cfg['planted']} quick={quick}", flush=True)
    P, Q = _planted_instance(n, d, nq, cfg["planted"], cfg["rho"], seed)
    spec = JoinSpec(s=cfg["s"], c=cfg["c"], signed=True)

    # --- index memory (deterministic) ---------------------------------
    qp = quantize_rows(P)
    work["quant_index_bytes"] = qp.nbytes
    work["quant_float64_bytes"] = P.nbytes
    speedups["quant_memory_reduction"] = P.nbytes / qp.nbytes
    checks["quant_memory_reduction_floor"] = (
        speedups["quant_memory_reduction"] >= QUANT_MEMORY_REDUCTION_FLOOR)

    # --- int8 scan vs the float64 brute join --------------------------
    print("[bench_perf] quantized: scan vs brute ...", flush=True)
    brute_s, brute = _timed(
        lambda: engine_join(P, Q, spec, backend="brute_force", block=block),
        repeats=repeats)
    quant_s, quant = _timed(
        lambda: engine_join(P, Q, spec, backend="quantized", block=block),
        repeats=repeats)
    qq = quantize_rows(Q)
    scan_s, scan = _timed(
        lambda: quantized_scan_survivors(qp, qq, spec.cs, spec.signed),
        repeats=repeats)
    timings["quant_brute_join_s"] = brute_s
    timings["quant_join_s"] = quant_s
    timings["quant_scan_s"] = scan_s
    speedups["quant_scan_vs_brute"] = brute_s / scan_s
    speedups["quant_join_vs_brute"] = brute_s / quant_s
    work["quant_scan_survivors"] = scan[1]
    work["quant_error_bound"] = quant.error_bound
    work["quant_inner_products_evaluated"] = quant.inner_products_evaluated
    checks["quant_matches_equal_brute"] = quant.matches == brute.matches
    checks["quant_prunes_pair_space"] = (
        quant.inner_products_evaluated < brute.inner_products_evaluated)
    if not quick:
        checks["quant_scan_speedup_floor"] = (
            speedups["quant_scan_vs_brute"] >= QUANT_SCAN_SPEEDUP_FLOOR)

    # --- serial vs parallel bit-identity ------------------------------
    w = cfg["workers"]
    identical = True
    for pool in ("process", "thread"):
        par = engine_join(P, Q, spec, backend="quantized", block=block,
                          n_workers=w, pool=pool)
        identical = identical and (
            par.matches == quant.matches
            and par.inner_products_evaluated
            == quant.inner_products_evaluated)
    checks["quant_parallel_identical"] = identical
    close_pools()

    # --- sketch-filter pipeline vs brute ------------------------------
    fn, fd, fq = cfg["filter_n"], cfg["filter_d"], cfg["filter_queries"]
    print(f"[bench_perf] quantized: filter plan n={fn} d={fd} "
          f"queries={fq} ...", flush=True)
    FP, FQ = _planted_instance(fn, fd, fq, cfg["filter_planted"],
                               cfg["filter_rho"], seed + 10)
    fspec = JoinSpec(s=cfg["filter_s"], c=cfg["filter_c"], signed=True)
    fplan = quantized_filter_plan(
        filter_options={"n_dims": cfg["filter_dims"]})
    fbrute_s, fbrute = _timed(
        lambda: engine_join(FP, FQ, fspec, backend="brute_force",
                            block=block),
        repeats=repeats)
    fplan_s, fres = _timed(
        lambda: engine_join(FP, FQ, fspec, backend=fplan, block=block,
                            seed=seed),
        repeats=repeats)
    timings["quant_filter_brute_s"] = fbrute_s
    timings["quant_filter_plan_s"] = fplan_s
    speedups["quant_filter_vs_brute"] = fbrute_s / fplan_s
    truth = {j for j, p in enumerate(fbrute.matches) if p is not None}
    got = {j for j, p in enumerate(fres.matches) if p is not None}
    recall = len(truth & got) / max(1, len(truth))
    sound = all(
        float(FP[p] @ FQ[j]) >= fspec.cs - 1e-9
        for j, p in enumerate(fres.matches) if p is not None)
    work["quant_filter_recall"] = recall
    work["quant_filter_verified_fraction"] = (
        fres.inner_products_evaluated / (fn * fq))
    checks["quant_filter_backend_is_plan"] = (
        fres.backend == "ip_filter+quantized")
    checks["quant_filter_truth_nonempty"] = bool(truth)
    checks["quant_filter_recall_floor"] = recall >= QUANT_FILTER_RECALL_FLOOR
    checks["quant_filter_matches_sound"] = sound
    if not quick:
        checks["quant_filter_beats_brute"] = fplan_s < fbrute_s

    # --- planner: the compact tier in backend="auto" ------------------
    # A memory budget of half the float64 matrix (4 bytes/coord) fits
    # the int8 index but no float64-resident backend, so the planner
    # must steer auto to the quantized tier — checked live, end to end.
    tight = replace(default_model(), mem_budget_bytes=float(n * d * 4))
    exact_spec = JoinSpec(s=cfg["s"], c=1.0, signed=True)
    auto = engine_join(P, Q, exact_spec, backend="auto", model=tight,
                       block=block)
    base_pick = plan_join(n, nq, d, exact_spec).best_plan.backend
    work["quant_planner_picks"] = {
        "base_model": base_pick, "mem_budget": auto.backend}
    checks["quant_auto_picks_quantized_under_budget"] = (
        auto.backend == "quantized")
    ranked = plan_join(fn, fq, fd, fspec)
    hybrids = [p for p in ranked.plans
               if p.backend == "ip_filter+quantized"]
    checks["quant_hybrid_costed_for_gap_specs"] = (
        len(hybrids) == 1 and hybrids[0].feasible)
    return cfg


def _legacy_parallel_lsh_join(P, Q, spec: JoinSpec, index_spec,
                              n_workers: int, block: int) -> JoinResult:
    """The pre-arena executor, reproduced inline as the bench baseline.

    A fresh process pool per call, the ``(index_spec, P)`` payload
    pickled into every worker's initializer (with a per-worker index
    rebuild), and every ``Q`` chunk pickled per task — exactly the data
    movement the shared-memory arena eliminated.  Results are
    bit-identical to the zero-copy path; only the transport differs.
    """
    from concurrent.futures import ProcessPoolExecutor

    from repro.core.executor import _init_worker, _lsh_runner, _run_worker_chunk

    bounds = _chunk_bounds(Q.shape[0], block, n_workers)
    args = (spec.signed, spec.cs, 0, block)
    with ProcessPoolExecutor(max_workers=n_workers, initializer=_init_worker,
                             initargs=(index_spec, P)) as ex:
        futures = [ex.submit(_run_worker_chunk, _lsh_runner, Q[s:e], s, args)
                   for s, e in bounds]
        chunks = [f.result() for f in futures]
    return merge_join_chunks(chunks, spec)


def _run_parallel_suite(quick: bool, timings: dict, speedups: dict,
                        work: dict, checks: dict) -> dict:
    """Zero-copy process/thread pools vs serial and the legacy executor."""
    cfg = PARALLEL_QUICK if quick else PARALLEL_FULL
    n, d, nq = cfg["n"], cfg["d"], cfg["n_queries"]
    seed, block, repeats = cfg["seed"], cfg["block"], cfg["repeats"]
    cores = os.cpu_count() or 1
    print(f"[bench_perf] parallel suite: n={n} d={d} queries={nq} "
          f"workers={cfg['workers']} cores={cores}", flush=True)
    P = random_unit(n, d, seed=seed) * 0.95
    Q = random_unit(nq, d, seed=seed + 1) * 0.95
    spec = JoinSpec(s=0.75, c=0.8)
    index_spec = BatchIndexSpec(
        d=d, scheme="hyperplane", n_tables=cfg["n_tables"],
        bits_per_table=cfg["bits_per_table"], seed=seed + 2, layout="csr")

    def result_key(r: JoinResult):
        s = r.stats
        return (r.matches, r.inner_products_evaluated,
                r.candidates_generated, s.queries, s.candidates,
                s.unique_candidates, s.probed_buckets)

    serial_s, serial = _timed(
        lambda: parallel_lsh_join(P, Q, spec, index_spec=index_spec,
                                  n_workers=1, block=block),
        repeats=repeats)
    timings["parallel_serial_s"] = serial_s

    scaling = {"process": {}, "thread": {}, "legacy": {}}
    zero_copy_vs_legacy = {}
    identical = True
    for w in cfg["workers"]:
        print(f"[bench_perf] parallel: {w} workers "
              f"(process / thread / legacy) ...", flush=True)
        process_s, process = _timed(
            lambda w=w: parallel_lsh_join(
                P, Q, spec, index_spec=index_spec, n_workers=w,
                block=block, pool="process"),
            repeats=repeats)
        thread_s, threaded = _timed(
            lambda w=w: parallel_lsh_join(
                P, Q, spec, index_spec=index_spec, n_workers=w,
                block=block, pool="thread"),
            repeats=repeats)
        legacy_s, legacy = _timed(
            lambda w=w: _legacy_parallel_lsh_join(
                P, Q, spec, index_spec, w, block),
            repeats=repeats)
        timings[f"parallel_process_{w}w_s"] = process_s
        timings[f"parallel_thread_{w}w_s"] = thread_s
        timings[f"parallel_legacy_{w}w_s"] = legacy_s
        scaling["process"][str(w)] = serial_s / process_s
        scaling["thread"][str(w)] = serial_s / thread_s
        scaling["legacy"][str(w)] = serial_s / legacy_s
        zero_copy_vs_legacy[str(w)] = legacy_s / process_s
        identical = identical and (
            result_key(process) == result_key(serial)
            and result_key(threaded) == result_key(serial)
            and result_key(legacy) == result_key(serial))
    speedups["parallel_scaling_vs_serial"] = scaling
    speedups["parallel_zero_copy_vs_legacy"] = zero_copy_vs_legacy
    work["parallel_join_matched"] = serial.matched_count
    work["parallel_cpu_count"] = cores
    checks["parallel_modes_identical"] = identical

    # Cores-aware gates: a 1-core machine cannot speed anything up by
    # adding workers, so the regression gate there is the thing that IS
    # core-count independent — the zero-copy transport must beat the
    # legacy pickle-per-chunk transport at the same worker count.
    w0 = str(cfg["workers"][0])
    if cores >= 2:
        checks["parallel_2w_speedup_floor"] = (
            max(scaling["process"][w0], scaling["thread"][w0]) >= 1.0)
    else:
        checks["parallel_zero_copy_beats_legacy"] = (
            zero_copy_vs_legacy[w0] >= 1.0)
    if not quick and cores >= 4 and 4 in cfg["workers"]:
        checks["parallel_4w_speedup_floor"] = (
            max(scaling["process"]["4"], scaling["thread"]["4"])
            >= PARALLEL_4W_SPEEDUP_FLOOR)
    # Leave no persistent pools (or /dev/shm segments) behind.
    close_pools()
    return cfg


#: Child program for the open_path RSS measurement: a fresh process
#: loads the saved session (mmap'd or fully materialized), reports its
#: resident set, answers one query batch, and reports it again.  The
#: gated number is the post-load one — a materialized load allocates
#: anonymous pages for every array while the mmap load maps them lazily;
#: the post-query number is informational only, because once the index's
#: pages sit in the OS page cache, kernel fault-around maps cached
#: neighbours into the mmap child too, an OS policy rather than a copy.
#: Current ``VmRSS`` from ``/proc/self/statm``, not ``ru_maxrss``: the
#: rusage peak (VmHWM) is inherited through fork and survives exec on
#: Linux, so a child spawned from a large bench parent would report the
#: *parent's* RSS.  Falls back to ``ru_maxrss`` off Linux (then only an
#: upper bound).
_RSS_CHILD = """\
import os
import resource
import sys

import numpy as np

from repro.engine import open_path


def rss_bytes():
    try:
        with open("/proc/self/statm") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


session = open_path(sys.argv[1], mmap=(sys.argv[2] == "1"))
load_rss = rss_bytes()
Q = np.load(sys.argv[3])
result = session.query(Q)
print(load_rss, rss_bytes(), result.matched_count)
session.close()
"""


def _load_rss(index_dir: str, q_path: str, mmap: bool):
    """(load RSS, serve RSS, matched) of a child open_path load+query."""
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    prior = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + prior if prior else "")
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_CHILD, index_dir,
         "1" if mmap else "0", q_path],
        capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise RuntimeError(
            f"open_path RSS child failed (mmap={mmap}): {proc.stderr}")
    load_rss, serve_rss, matched = proc.stdout.split()
    return int(load_rss), int(serve_rss), int(matched)


def _run_session_suite(quick: bool, timings: dict, speedups: dict,
                       work: dict, checks: dict) -> dict:
    cfg = SESSION_QUICK if quick else SESSION_FULL
    n, d = cfg["n"], cfg["d"]
    batch, batches = cfg["batch"], cfg["batches"]
    seed, block = cfg["seed"], cfg["block"]
    lsh_options = dict(n_tables=cfg["n_tables"],
                       hashes_per_table=cfg["hashes_per_table"])
    print(f"[bench_perf] streaming session: n={n} d={d} "
          f"batches={batches}x{batch} quick={quick}", flush=True)
    P = random_unit(n, d, seed=seed) * 0.95
    Q_all = np.ascontiguousarray(
        random_unit(batches * batch, d, seed=seed + 1) * 0.95)
    Qs = [np.ascontiguousarray(Q_all[i * batch:(i + 1) * batch])
          for i in range(batches)]
    spec = JoinSpec(s=0.75, c=0.8)

    # --- session reuse vs one-shot join() ------------------------------
    # The same seeded LSH backend either rebuilds its index per batch
    # (one-shot) or builds once at open and serves every batch from the
    # prepared structure; matches must agree batch for batch.
    print("[bench_perf] session: reuse vs one-shot ...", flush=True)

    def one_shot():
        return [engine_join(P, Qb, spec, backend="lsh", seed=seed + 2,
                            block=block, **lsh_options) for Qb in Qs]

    def reuse():
        with open_session(P, spec, backend="lsh", seed=seed + 2,
                          block=block, expected_queries=batches,
                          **lsh_options) as session:
            return [session.query(Qb) for Qb in Qs]

    oneshot_s, oneshot_results = _timed(one_shot)
    session_s, session_results = _timed(reuse)
    timings["session_oneshot_s"] = oneshot_s
    timings["session_reuse_s"] = session_s
    speedups["session_reuse_vs_oneshot"] = oneshot_s / session_s
    work["session_batches"] = batches
    work["session_matched"] = sum(r.matched_count for r in session_results)
    checks["session_matches_equal_oneshot"] = all(
        s.matches == o.matches
        and s.inner_products_evaluated == o.inner_products_evaluated
        for s, o in zip(session_results, oneshot_results))
    if not quick:
        checks["session_reuse_speedup_floor"] = (
            speedups["session_reuse_vs_oneshot"]
            >= SESSION_REUSE_SPEEDUP_FLOOR)

    # --- streamed memmap Q + saved-index RSS ---------------------------
    print("[bench_perf] session: memmap stream and open_path RSS ...",
          flush=True)
    tmpdir = tempfile.mkdtemp(prefix="bench_session_")
    try:
        qfile = os.path.join(tmpdir, "queries.bin")
        with open(qfile, "wb") as handle:
            handle.write(Q_all.tobytes())
        index_dir = os.path.join(tmpdir, "index")
        with open_session(P, spec, backend="lsh", seed=seed + 2,
                          block=block, expected_queries=batches,
                          **lsh_options) as session:
            in_mem_s, in_mem = _timed(lambda: session.query(Q_all))
            stream_s, streamed = _timed(
                lambda: session.query_stream(
                    QuerySource.from_memmap(qfile, d=d),
                    chunk_rows=cfg["stream_rows"]))
            session.save(index_dir)
        timings["session_query_in_memory_s"] = in_mem_s
        timings["session_stream_s"] = stream_s
        checks["session_stream_bit_identical"] = (
            streamed.matches == in_mem.matches
            and streamed.inner_products_evaluated
            == in_mem.inner_products_evaluated)

        # A few probe queries, not a whole batch, so the post-query
        # (serve) number reflects a point-query working set rather than
        # a bulk scan of the index.
        probe_rows = min(4, batch)
        qnpy = os.path.join(tmpdir, "queries.npy")
        np.save(qnpy, np.ascontiguousarray(Q_all[:probe_rows]))
        probe_matched = sum(
            1 for match in in_mem.matches[:probe_rows] if match is not None)
        full_load, full_serve, matched_full = _load_rss(
            index_dir, qnpy, mmap=False)
        mmap_load, mmap_serve, matched_mmap = _load_rss(
            index_dir, qnpy, mmap=True)
        work["session_rss_full_load_bytes"] = full_load
        work["session_rss_mmap_load_bytes"] = mmap_load
        work["session_rss_full_serve_bytes"] = full_serve
        work["session_rss_mmap_serve_bytes"] = mmap_serve
        speedups["session_mmap_rss_reduction"] = full_load / mmap_load
        checks["session_load_matches_equal"] = (
            matched_full == probe_matched and matched_mmap == probe_matched)
        if not quick:
            checks["session_mmap_rss_ceiling"] = (
                mmap_load <= SESSION_MMAP_RSS_CEILING * full_load)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return cfg


def _run_serving_obs_suite(quick: bool, timings: dict, speedups: dict,
                           work: dict, checks: dict,
                           out_dir: Optional[str] = None) -> dict:
    """Serving telemetry: overhead pair, quantile accuracy, sink output.

    The overhead baseline is a *pre-PR twin* of ``session.query`` —
    validate the batch, ``_dispatch``, bump the counters — replayed on
    the very same session, so the paired ratio isolates exactly what
    this tier added per call: the latency-histogram observes, the
    sampler consult, and the (absent-)sink gate.
    """
    cfg = SERVING_QUICK if quick else SERVING_FULL
    n, d = cfg["n"], cfg["d"]
    batch, batches = cfg["batch"], cfg["batches"]
    seed, block, repeats = cfg["seed"], cfg["block"], cfg["repeats"]
    lsh_options = dict(n_tables=cfg["n_tables"],
                       hashes_per_table=cfg["hashes_per_table"])
    print(f"[bench_perf] serving obs: n={n} d={d} "
          f"batches={batches}x{batch} quick={quick}", flush=True)
    P = random_unit(n, d, seed=seed) * 0.95
    Q_all = random_unit(batches * batch, d, seed=seed + 1) * 0.95
    Qs = [np.ascontiguousarray(Q_all[i * batch:(i + 1) * batch])
          for i in range(batches)]
    spec = JoinSpec(s=0.75, c=0.8)

    def open_serving(**kwargs):
        return open_session(P, spec, backend="lsh", seed=seed + 2,
                            block=block, expected_queries=batches,
                            **lsh_options, **kwargs)

    def pre_pr_one(session, Qb):
        Qc = check_matrix(Qb, "Q")
        out = session._dispatch(Qc, trace=False, root="session.query")
        session.queries_served += 1
        session.metrics.counter("session.queries").inc()
        return out

    # --- per-call telemetry overhead, sampling disabled ----------------
    # The pair interleaves per BATCH (see _paired_batch_overhead): the
    # quantity is ~0.1% of a 2-3 ms call, far below what independent
    # best-of legs can resolve on a shared box.
    print("[bench_perf] serving obs: disabled-sampling overhead ...",
          flush=True)
    with open_serving() as session:
        (prepr_s, telem_s, overhead_disabled,
         prepr_res, telem_res) = _paired_batch_overhead(
            lambda Qb: pre_pr_one(session, Qb),
            session.query,
            Qs, repeats=repeats)
    timings["serving_telemetry_s"] = telem_s
    timings["serving_prepr_s"] = prepr_s
    work["serving_obs_overhead_disabled"] = overhead_disabled
    speedups["serving_telemetry_vs_prepr"] = prepr_s / telem_s
    checks["serving_matches_equal"] = all(
        t.matches == p.matches
        and t.inner_products_evaluated == p.inner_products_evaluated
        for t, p in zip(telem_res, prepr_res))
    if not quick:
        checks["serving_obs_disabled_ceiling"] = (
            work["serving_obs_overhead_disabled"]
            <= SERVING_OBS_DISABLED_CEILING)

    # --- per-call telemetry overhead, sampled at 1% --------------------
    print("[bench_perf] serving obs: 1%-sampled overhead ...", flush=True)
    with open_serving(trace_sample_rate=cfg["sample_rate"],
                      trace_sample_seed=seed) as session:
        (sampled_base_s, sampled_s, overhead_sampled,
         _, _) = _paired_batch_overhead(
            lambda Qb: pre_pr_one(session, Qb),
            session.query,
            Qs, repeats=repeats)
        sampler_stats = session.sampler.stats()
    timings["serving_sampled_s"] = sampled_s
    timings["serving_sampled_prepr_s"] = sampled_base_s
    work["serving_obs_overhead_sampled"] = overhead_sampled
    work["serving_sampled_traces"] = sampler_stats["sampled"]
    speedups["serving_sampled_vs_prepr"] = sampled_base_s / sampled_s
    if not quick:
        checks["serving_obs_sampled_ceiling"] = (
            work["serving_obs_overhead_sampled"]
            <= SERVING_OBS_SAMPLED_CEILING)

    # --- Histogram.quantile vs exact numpy quantiles -------------------
    # Pow2 buckets guarantee no better than bucket resolution, so the
    # contract is agreement to within one bucket, not relative error.
    rng = np.random.default_rng(seed)
    values = rng.lognormal(mean=6.0, sigma=1.5, size=cfg["quantile_n"])
    hist = Histogram()
    hist.observe_array(values)
    quantile_ok = True
    for q in (0.5, 0.95, 0.99):
        est = hist.quantile(q)
        exact = float(np.quantile(values, q))
        work[f"serving_quantile_p{int(q * 100)}_est"] = est
        work[f"serving_quantile_p{int(q * 100)}_exact"] = exact
        quantile_ok = quantile_ok and (
            abs(hist._bucket(est) - hist._bucket(exact)) <= 1)
    checks["serving_quantile_within_one_bucket"] = quantile_ok

    # --- sink: spans, latency histograms, resources, rotation ----------
    print("[bench_perf] serving obs: sink + rotation ...", flush=True)
    sink_dir = tempfile.mkdtemp(prefix="bench_serving_obs_")
    try:
        sink_path = os.path.join(sink_dir, "obs_sink.jsonl")
        with open_serving(trace_sample_rate=1.0,
                          trace_sample_seed=seed) as session:
            session.attach_sink(sink_path, max_bytes=cfg["sink_cap"],
                                max_files=4, resource_every=8)
            for Qb in Qs:
                session.query(Qb)
            rotations = session._sink.rotations
        files = sink_files(sink_path)
        events = read_events(sink_path)
        kinds: dict = {}
        for event in events:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        work["serving_sink_events"] = len(events)
        work["serving_sink_files"] = len(files)
        work["serving_sink_spans"] = kinds.get("span", 0)
        work["serving_sink_rotations"] = rotations
        checks["serving_sink_parseable"] = bool(events)
        checks["serving_sink_has_spans"] = kinds.get("span", 0) >= 1
        checks["serving_sink_has_resource"] = kinds.get("resource", 0) >= 1
        metrics_events = [e["data"] for e in events
                          if e["kind"] == "metrics"]
        checks["serving_sink_stage_histograms"] = bool(metrics_events) and (
            "session.query_latency_us" in metrics_events[-1]["histograms"]
            and any(name.startswith("session.stage_latency_us.")
                    for name in metrics_events[-1]["histograms"]))
        checks["serving_sink_rotated"] = rotations >= 1 and len(files) >= 2
        if out_dir:
            # Concatenate the surviving generations oldest-first so the
            # CI artifact is one self-contained JSONL file next to the
            # bench report (tools/obs_report.py renders it).
            dest = os.path.join(out_dir, "obs_sink.jsonl")
            with open(dest, "wb") as out_handle:
                for path in files:
                    with open(path, "rb") as in_handle:
                        shutil.copyfileobj(in_handle, out_handle)
    finally:
        shutil.rmtree(sink_dir, ignore_errors=True)
    return cfg


def _run_jaccard_suite(quick: bool, timings: dict, speedups: dict,
                       work: dict, checks: dict) -> dict:
    """The measure layer: jaccard joins through the identical engine core.

    Exact ``set_scan`` is the reference; ``minhash_lsh`` must verify its
    candidates exactly (soundness) and recover the planted answers
    (recall floor, both modes — the workload is seeded).  Composition
    checks mirror the IP suites: serial == 2-worker bit-identity and
    session/stream results equal to the one-shot join.
    """
    cfg = JACCARD_QUICK if quick else JACCARD_FULL
    n, nq = cfg["n"], cfg["n_queries"]
    universe, mean_size = cfg["universe"], cfg["mean_size"]
    seed, block, repeats = cfg["seed"], cfg["block"], cfg["repeats"]
    spec = JoinSpec(s=cfg["threshold"], measure="jaccard")
    print(f"[bench_perf] jaccard suite: n={n} queries={nq} "
          f"universe={universe} mean_size={mean_size} quick={quick}",
          flush=True)
    P, Q = planted_jaccard_sets(
        n, nq, universe=universe, mean_size=mean_size,
        threshold=cfg["threshold"], seed=seed,
    )

    print("[bench_perf] jaccard: set_scan vs minhash_lsh ...", flush=True)
    scan_s, scan = _timed(
        lambda: engine_join(P, Q, spec, backend="set_scan", block=block),
        repeats=repeats)
    minhash_s, approx = _timed(
        lambda: engine_join(P, Q, spec, backend="minhash_lsh", seed=seed,
                            block=block),
        repeats=repeats)

    answered = [j for j, m in enumerate(scan.matches) if m is not None]
    hit = sum(1 for j in answered if approx.matches[j] is not None)
    recall = hit / len(answered) if answered else 0.0
    sound = all(
        jaccard_pair(P.row(m), Q.row(j)) >= spec.cs
        for j, m in enumerate(approx.matches) if m is not None
    )

    print("[bench_perf] jaccard: parallel + session + stream ...", flush=True)
    par = engine_join(P, Q, spec, backend="set_scan", block=block,
                      n_workers=cfg["workers"])
    parallel_identical = (
        par.matches == scan.matches
        and par.inner_products_evaluated == scan.inner_products_evaluated
        and par.candidates_generated == scan.candidates_generated
    )
    with open_session(P, spec, backend="set_scan", block=block) as session:
        session_s, in_session = _timed(lambda: session.query(Q))
        streamed = session.query_stream(Q, chunk_rows=block)
    session_identical = in_session.matches == scan.matches
    stream_identical = (
        streamed.matches == in_session.matches
        and streamed.inner_products_evaluated
        == in_session.inner_products_evaluated
    )

    timings["jaccard_scan_s"] = scan_s
    timings["jaccard_minhash_s"] = minhash_s
    timings["jaccard_session_query_s"] = session_s
    speedups["jaccard_minhash_vs_scan"] = scan_s / minhash_s
    speedups["jaccard_minhash_pair_reduction"] = (
        scan.inner_products_evaluated
        / max(1, approx.inner_products_evaluated))
    work["jaccard_scan_pairs"] = scan.inner_products_evaluated
    work["jaccard_minhash_pairs"] = approx.inner_products_evaluated
    work["jaccard_matched"] = scan.matched_count
    work["jaccard_minhash_recall"] = recall
    checks["jaccard_minhash_recall_floor"] = (
        recall >= JACCARD_MINHASH_RECALL_FLOOR)
    checks["jaccard_minhash_sound"] = sound
    checks["jaccard_parallel_identical"] = parallel_identical
    checks["jaccard_session_matches_equal"] = session_identical
    checks["jaccard_stream_bit_identical"] = stream_identical
    if not quick:
        checks["jaccard_minhash_prunes_pairs"] = (
            approx.inner_products_evaluated < scan.inner_products_evaluated)
    return cfg


def run_suite(quick: bool = False, suites=ALL_SUITES,
              out_dir: Optional[str] = None) -> dict:
    suites = tuple(suites)
    unknown = [s for s in suites if s not in ALL_SUITES]
    if unknown:
        raise ValueError(f"unknown suites {unknown}; choose from {ALL_SUITES}")
    timings: dict = {}
    speedups: dict = {}
    work: dict = {}
    checks: dict = {}
    report = {
        "schema": SCHEMA,
        "meta": {
            "quick": quick,
            "suites": list(suites),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "timings": timings,
        "speedups": speedups,
        "work": work,
        "checks": checks,
    }
    # The overhead suites (few-percent paired ratios) run FIRST: after
    # the n=100k core workload has fragmented the allocator, the
    # engine-side extra allocations price 2-3 points higher than in a
    # fresh process, which is heap state, not dispatch cost.
    if "planner_dispatch" in suites:
        planner_cfg = _run_planner_suite(quick, timings, speedups, work, checks)
        report["meta"]["planner_suite"] = dict(planner_cfg)
    if "obs_overhead" in suites:
        obs_cfg = _run_obs_suite(quick, timings, speedups, work, checks)
        report["meta"]["obs_suite"] = dict(obs_cfg)
    if "serving_obs" in suites:
        serving_cfg = _run_serving_obs_suite(quick, timings, speedups, work,
                                             checks, out_dir=out_dir)
        report["meta"]["serving_obs_suite"] = dict(serving_cfg)
    if "core" in suites:
        _run_core_suite(quick, report["meta"], timings, speedups, work, checks)
    if "hash_batch_vs_generic" in suites:
        hash_cfg = _run_hash_suite(quick, timings, speedups, work, checks)
        report["meta"]["hash_suite"] = dict(hash_cfg)
    if "sketch_batch_vs_loop" in suites:
        sketch_cfg = _run_sketch_suite(quick, timings, speedups, work, checks)
        report["meta"]["sketch_suite"] = dict(sketch_cfg)
    if "hybrid_vs_single" in suites:
        hybrid_cfg = _run_hybrid_suite(quick, timings, speedups, work, checks)
        report["meta"]["hybrid_suite"] = dict(hybrid_cfg)
    if "quantized_tier" in suites:
        quant_cfg = _run_quant_suite(quick, timings, speedups, work, checks)
        report["meta"]["quant_suite"] = dict(quant_cfg)
    if "parallel_scaling" in suites:
        parallel_cfg = _run_parallel_suite(quick, timings, speedups, work,
                                           checks)
        report["meta"]["parallel_suite"] = dict(parallel_cfg)
    if "streaming_session" in suites:
        session_cfg = _run_session_suite(quick, timings, speedups, work,
                                         checks)
        report["meta"]["session_suite"] = dict(session_cfg)
    if "jaccard_join" in suites:
        jaccard_cfg = _run_jaccard_suite(quick, timings, speedups, work,
                                         checks)
        report["meta"]["jaccard_suite"] = dict(jaccard_cfg)
    return report


def _run_core_suite(quick: bool, meta: dict, timings: dict, speedups: dict,
                    work: dict, checks: dict) -> None:
    cfg = QUICK if quick else FULL
    n, d, nq = cfg["n"], cfg["d"], cfg["n_queries"]
    tables, bits, probes = cfg["n_tables"], cfg["bits_per_table"], cfg["n_probes"]
    seed = cfg["seed"]
    print(f"[bench_perf] workload: n={n} d={d} queries={nq} "
          f"L={tables} k={bits} probes={probes} quick={quick}", flush=True)

    P = random_unit(n, d, seed=seed) * 0.95
    Q = random_unit(nq, d, seed=seed + 1) * 0.95

    def make(layout: str) -> BatchSignIndex:
        return BatchSignIndex.for_hyperplane(
            d, n_tables=tables, bits_per_table=bits, seed=seed + 2, layout=layout
        )

    # --- build ---------------------------------------------------------
    print("[bench_perf] build: dict vs csr ...", flush=True)
    build_dict_s, idx_dict = _timed(lambda: make("dict").build(P))
    build_csr_s, idx_csr = _timed(lambda: make("csr").build(P))

    # --- candidate generation -----------------------------------------
    print("[bench_perf] candidates: dict vs csr ...", flush=True)
    cand_dict_s, cands_dict = _timed(lambda: idx_dict.candidates_batch(Q),
                                     repeats=3)
    cand_csr_s, cands_csr = _timed(lambda: idx_csr.candidates_batch(Q),
                                   repeats=3)
    sets_equal = _assert_same_candidates(cands_dict, cands_csr)

    cand_dict_probe_s, probed_dict = _timed(
        lambda: idx_dict.candidates_batch(Q, n_probes=probes), repeats=3)
    cand_csr_probe_s, probed_csr = _timed(
        lambda: idx_csr.candidates_batch(Q, n_probes=probes), repeats=3)
    probe_sets_equal = _assert_same_candidates(probed_dict, probed_csr)

    # --- verification --------------------------------------------------
    # Two regimes: the LSH candidate lists themselves (sparse overlap on
    # this uniform workload — the kernel's cost test picks gathered
    # GEMVs) and a popularity-skewed workload where hot rows appear in
    # most lists (the union-GEMM path fires and wins).
    print("[bench_perf] verify: per-query loop vs blocked kernel ...", flush=True)
    threshold = 0.6

    def verify_loop(cand_lists):
        matches = []
        for qi, cands in enumerate(cand_lists):
            if cands.size == 0:
                matches.append(None)
                continue
            values = P[cands] @ Q[qi]
            best = int(np.argmax(values))
            matches.append(int(cands[best]) if values[best] >= threshold else None)
        return matches

    verify_loop_s, loop_matches = _timed(lambda: verify_loop(cands_csr), repeats=3)
    verify_blocked_s, (blocked_matches, evaluated) = _timed(
        lambda: verify_candidates(P, Q, cands_csr, threshold, block=cfg["block"]),
        repeats=3)
    verify_equal = loop_matches == blocked_matches

    # Popularity-skewed lists: candidates concentrated on a hot-row set
    # small enough (2x the per-query list size) that every hot row shows
    # up in a large fraction of each block's lists — the regime the
    # union-GEMM strategy is built for.
    skew_rng = np.random.default_rng(seed + 3)
    per_query = max(16, int(round(idx_csr.stats.candidates_per_query)))
    hot = max(32, 2 * per_query)
    skewed = [
        np.unique(skew_rng.integers(0, hot, per_query).astype(np.int64))
        for _ in range(nq)
    ]
    overlap_loop_s, overlap_loop_matches = _timed(
        lambda: verify_loop(skewed), repeats=3)
    overlap_blocked_s, (overlap_blocked_matches, _) = _timed(
        lambda: verify_candidates(P, Q, skewed, threshold, block=cfg["block"]),
        repeats=3)
    overlap_equal = overlap_loop_matches == overlap_blocked_matches

    # --- join: executor scaling ---------------------------------------
    spec = JoinSpec(s=0.75, c=0.8)
    index_spec = BatchIndexSpec(
        d=d, scheme="hyperplane", n_tables=tables, bits_per_table=bits,
        seed=seed + 2, layout="csr",
    )
    join_seconds = {}
    join_results = {}
    for workers in cfg["workers"]:
        print(f"[bench_perf] join: {workers} worker(s) ...", flush=True)
        secs, result = _timed(lambda w=workers: parallel_lsh_join(
            P, Q, spec, index_spec=index_spec, n_workers=w, block=cfg["block"]))
        join_seconds[str(workers)] = secs
        join_results[workers] = result
    base = join_results[cfg["workers"][0]]
    parallel_identical = all(
        r.matches == base.matches
        and r.inner_products_evaluated == base.inner_products_evaluated
        for r in join_results.values()
    )

    meta.update({
        "n": n, "d": d, "n_queries": nq,
        "n_tables": tables, "bits_per_table": bits, "n_probes": probes,
        "block": cfg["block"], "seed": seed,
    })
    timings.update({
        "build_dict_s": build_dict_s,
        "build_csr_s": build_csr_s,
        "candidates_dict_s": cand_dict_s,
        "candidates_csr_s": cand_csr_s,
        "candidates_multiprobe_dict_s": cand_dict_probe_s,
        "candidates_multiprobe_csr_s": cand_csr_probe_s,
        "verify_loop_s": verify_loop_s,
        "verify_blocked_s": verify_blocked_s,
        "verify_overlap_loop_s": overlap_loop_s,
        "verify_overlap_blocked_s": overlap_blocked_s,
        "join_workers_s": join_seconds,
    })
    speedups.update({
        "build_csr_vs_dict": build_dict_s / build_csr_s,
        "candidates_csr_vs_dict": cand_dict_s / cand_csr_s,
        "candidates_multiprobe_csr_vs_dict": cand_dict_probe_s / cand_csr_probe_s,
        "verify_blocked_vs_loop": verify_loop_s / verify_blocked_s,
        "verify_overlap_blocked_vs_loop": overlap_loop_s / overlap_blocked_s,
        "join_scaling_vs_1_worker": {
            w: join_seconds[str(cfg["workers"][0])] / s
            for w, s in join_seconds.items()
        },
    })
    work.update({
        "candidates_per_query_csr": idx_csr.stats.candidates_per_query,
        "inner_products_verified": evaluated,
        "join_matched": base.matched_count,
        "join_inner_products_evaluated": base.inner_products_evaluated,
    })
    checks.update({
        "candidate_sets_equal": sets_equal,
        "multiprobe_candidate_sets_equal": probe_sets_equal,
        "verify_matches_equal": verify_equal,
        "verify_overlap_matches_equal": overlap_equal,
        "parallel_matches_identical": parallel_identical,
    })


def validate_schema(report: dict) -> None:
    """Raise if ``report`` does not look like a bench_perf artifact."""
    assert report.get("schema") == SCHEMA, "unknown schema"
    for section in ("meta", "timings", "speedups", "work", "checks"):
        assert isinstance(report.get(section), dict), f"missing section {section}"
    # Pre-suite artifacts (PR 1) have no "suites" key and are all-core.
    suites = report["meta"].get("suites", ["core"])
    if "core" in suites:
        for key in ("build_dict_s", "build_csr_s", "candidates_dict_s",
                    "candidates_csr_s", "verify_loop_s", "verify_blocked_s",
                    "join_workers_s"):
            assert key in report["timings"], f"missing timing {key}"
        for key in ("candidates_csr_vs_dict", "verify_blocked_vs_loop",
                    "join_scaling_vs_1_worker"):
            assert key in report["speedups"], f"missing speedup {key}"
    if "hash_batch_vs_generic" in suites:
        for name in ("hyperplane", "crosspolytope", "e2lsh"):
            assert f"hash_batch_{name}_s" in report["timings"]
            assert f"hash_batch_vs_generic_{name}" in report["speedups"]
            assert f"hash_native_path_{name}" in report["checks"]
            assert f"hash_candidates_equal_{name}" in report["checks"]
    if "sketch_batch_vs_loop" in suites:
        for key in ("sketch_build_s", "sketch_join_loop_s",
                    "sketch_join_blocked_s", "sketch_query_batch_s"):
            assert key in report["timings"], f"missing timing {key}"
        assert "sketch_join_blocked_vs_loop" in report["speedups"]
        assert "sketch_join_matches_equal" in report["checks"]
        assert "sketch_query_indices_equal" in report["checks"]
    if "planner_dispatch" in suites:
        for key in ("dispatch_brute_kernel_s", "dispatch_brute_engine_s",
                    "dispatch_lsh_kernel_s", "dispatch_lsh_engine_s"):
            assert key in report["timings"], f"missing timing {key}"
        for key in ("engine_vs_kernel_brute_force", "engine_vs_kernel_lsh"):
            assert key in report["speedups"], f"missing speedup {key}"
        assert isinstance(report["work"].get("planner_picks"), dict)
        for key in ("planner_tiny_picks_exact",
                    "planner_exact_demand_picks_exact",
                    "planner_large_gap_picks_approximate",
                    "dispatch_brute_matches_equal",
                    "dispatch_lsh_matches_equal"):
            assert key in report["checks"], f"missing check {key}"
    if "hybrid_vs_single" in suites:
        for key in ("hybrid_plan_s", "hybrid_single_brute_force_s",
                    "hybrid_single_norm_pruned_s", "hybrid_single_lsh_s",
                    "hybrid_dispatch_string_s", "hybrid_dispatch_plan_s"):
            assert key in report["timings"], f"missing timing {key}"
        assert "hybrid_vs_best_single" in report["speedups"]
        for key in ("hybrid_matched", "hybrid_best_single",
                    "hybrid_coverage_vs_brute", "plan_dispatch_overhead"):
            assert key in report["work"], f"missing work {key}"
        for key in ("hybrid_backend_is_plan", "hybrid_matches_sound",
                    "hybrid_coverage_floor", "hybrid_parallel_identical",
                    "plan_dispatch_matches_equal"):
            assert key in report["checks"], f"missing check {key}"
    if "quantized_tier" in suites:
        for key in ("quant_brute_join_s", "quant_join_s", "quant_scan_s",
                    "quant_filter_brute_s", "quant_filter_plan_s"):
            assert key in report["timings"], f"missing timing {key}"
        for key in ("quant_scan_vs_brute", "quant_join_vs_brute",
                    "quant_memory_reduction", "quant_filter_vs_brute"):
            assert key in report["speedups"], f"missing speedup {key}"
        for key in ("quant_index_bytes", "quant_scan_survivors",
                    "quant_error_bound", "quant_filter_recall",
                    "quant_filter_verified_fraction", "quant_planner_picks"):
            assert key in report["work"], f"missing work {key}"
        for key in ("quant_matches_equal_brute", "quant_prunes_pair_space",
                    "quant_memory_reduction_floor",
                    "quant_parallel_identical",
                    "quant_filter_backend_is_plan",
                    "quant_filter_recall_floor", "quant_filter_matches_sound",
                    "quant_auto_picks_quantized_under_budget",
                    "quant_hybrid_costed_for_gap_specs"):
            assert key in report["checks"], f"missing check {key}"
    if "parallel_scaling" in suites:
        assert "parallel_serial_s" in report["timings"]
        workers = report["meta"]["parallel_suite"]["workers"]
        for w in workers:
            for mode in ("process", "thread", "legacy"):
                assert f"parallel_{mode}_{w}w_s" in report["timings"]
        scaling = report["speedups"].get("parallel_scaling_vs_serial")
        assert isinstance(scaling, dict)
        for mode in ("process", "thread", "legacy"):
            assert set(scaling[mode]) == {str(w) for w in workers}
        assert isinstance(
            report["speedups"].get("parallel_zero_copy_vs_legacy"), dict)
        assert "parallel_cpu_count" in report["work"]
        assert "parallel_modes_identical" in report["checks"]
    if "streaming_session" in suites:
        for key in ("session_oneshot_s", "session_reuse_s",
                    "session_query_in_memory_s", "session_stream_s"):
            assert key in report["timings"], f"missing timing {key}"
        for key in ("session_reuse_vs_oneshot",
                    "session_mmap_rss_reduction"):
            assert key in report["speedups"], f"missing speedup {key}"
        for key in ("session_batches", "session_rss_full_load_bytes",
                    "session_rss_mmap_load_bytes"):
            assert key in report["work"], f"missing work {key}"
        for key in ("session_matches_equal_oneshot",
                    "session_stream_bit_identical",
                    "session_load_matches_equal"):
            assert key in report["checks"], f"missing check {key}"
    if "obs_overhead" in suites:
        for key in ("obs_kernel_span_free_s", "obs_kernel_instrumented_s",
                    "obs_engine_untraced_s", "obs_engine_traced_s",
                    "obs_span_disabled_ns"):
            assert key in report["timings"], f"missing timing {key}"
        for key in ("obs_overhead_disabled", "obs_overhead_traced",
                    "obs_traced_span_count"):
            assert key in report["work"], f"missing work {key}"
        for key in ("obs_matches_equal", "obs_trace_present_when_requested"):
            assert key in report["checks"], f"missing check {key}"
    if "jaccard_join" in suites:
        for key in ("jaccard_scan_s", "jaccard_minhash_s",
                    "jaccard_session_query_s"):
            assert key in report["timings"], f"missing timing {key}"
        for key in ("jaccard_minhash_vs_scan",
                    "jaccard_minhash_pair_reduction"):
            assert key in report["speedups"], f"missing speedup {key}"
        for key in ("jaccard_scan_pairs", "jaccard_minhash_pairs",
                    "jaccard_matched", "jaccard_minhash_recall"):
            assert key in report["work"], f"missing work {key}"
        for key in ("jaccard_minhash_recall_floor", "jaccard_minhash_sound",
                    "jaccard_parallel_identical",
                    "jaccard_session_matches_equal",
                    "jaccard_stream_bit_identical"):
            assert key in report["checks"], f"missing check {key}"
    if "serving_obs" in suites:
        for key in ("serving_telemetry_s", "serving_prepr_s",
                    "serving_sampled_s", "serving_sampled_prepr_s"):
            assert key in report["timings"], f"missing timing {key}"
        for key in ("serving_telemetry_vs_prepr", "serving_sampled_vs_prepr"):
            assert key in report["speedups"], f"missing speedup {key}"
        for key in ("serving_obs_overhead_disabled",
                    "serving_obs_overhead_sampled", "serving_sampled_traces",
                    "serving_sink_events", "serving_sink_spans"):
            assert key in report["work"], f"missing work {key}"
        for key in ("serving_matches_equal",
                    "serving_quantile_within_one_bucket",
                    "serving_sink_parseable", "serving_sink_has_spans",
                    "serving_sink_has_resource",
                    "serving_sink_stage_histograms", "serving_sink_rotated"):
            assert key in report["checks"], f"missing check {key}"
    assert all(isinstance(v, bool) for v in report["checks"].values())


def main(argv: Optional[List[str]] = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="seconds-scale CI smoke instead of the full n=100k run")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--suites", default=",".join(ALL_SUITES),
                        help="comma-separated subset of "
                             f"{','.join(ALL_SUITES)} (default: all)")
    args = parser.parse_args(argv)
    out_dir = os.path.dirname(os.path.abspath(args.out))
    if not os.path.isdir(out_dir):
        parser.error(f"output directory does not exist: {out_dir}")
    suites = tuple(s.strip() for s in args.suites.split(",") if s.strip())
    unknown = [s for s in suites if s not in ALL_SUITES]
    if unknown:
        parser.error(f"unknown suites {unknown}; choose from {ALL_SUITES}")
    report = run_suite(quick=args.quick, suites=suites, out_dir=out_dir)
    validate_schema(report)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    failed = [name for name, ok in report["checks"].items() if not ok]
    print(f"[bench_perf] wrote {args.out}")
    if "core" in suites:
        print(f"[bench_perf] candidates speedup (csr vs dict): "
              f"{report['speedups']['candidates_csr_vs_dict']:.1f}x")
        print(f"[bench_perf] verify speedup (blocked vs loop): "
              f"{report['speedups']['verify_blocked_vs_loop']:.1f}x sparse, "
              f"{report['speedups']['verify_overlap_blocked_vs_loop']:.1f}x overlapped")
    if "hash_batch_vs_generic" in suites:
        summary = ", ".join(
            f"{name} {report['speedups'][f'hash_batch_vs_generic_{name}']:.1f}x"
            for name in ("hyperplane", "crosspolytope", "e2lsh"))
        print(f"[bench_perf] hash batch vs generic: {summary}")
    if "sketch_batch_vs_loop" in suites:
        print(f"[bench_perf] sketch join blocked vs loop: "
              f"{report['speedups']['sketch_join_blocked_vs_loop']:.1f}x "
              f"(query_batch {report['speedups']['sketch_query_batch_vs_loop']:.1f}x)")
    if "planner_dispatch" in suites:
        picks = ", ".join(f"{k}={v}"
                          for k, v in report["work"]["planner_picks"].items())
        print(f"[bench_perf] planner picks: {picks}")
        print(f"[bench_perf] dispatch overhead: brute "
              f"{report['work']['dispatch_overhead_brute_force'] * 100:+.1f}%, "
              f"lsh {report['work']['dispatch_overhead_lsh'] * 100:+.1f}% "
              f"(ceiling {DISPATCH_OVERHEAD_CEILING * 100:.0f}%, full mode)")
    if "obs_overhead" in suites:
        print(f"[bench_perf] obs overhead: disabled "
              f"{report['work']['obs_overhead_disabled'] * 100:+.2f}% "
              f"(ceiling {OBS_OVERHEAD_CEILING * 100:.0f}%, full mode), "
              f"traced {report['work']['obs_overhead_traced'] * 100:+.1f}% "
              f"({report['work']['obs_traced_span_count']} spans, "
              f"disabled span() "
              f"{report['timings']['obs_span_disabled_ns']:.0f} ns)")
    if "jaccard_join" in suites:
        print(f"[bench_perf] jaccard: minhash recall "
              f"{report['work']['jaccard_minhash_recall'] * 100:.1f}% "
              f"(floor {JACCARD_MINHASH_RECALL_FLOOR * 100:.0f}%), pair "
              f"reduction "
              f"{report['speedups']['jaccard_minhash_pair_reduction']:.1f}x, "
              f"wall {report['speedups']['jaccard_minhash_vs_scan']:.2f}x "
              f"vs set_scan")
    if "serving_obs" in suites:
        print(f"[bench_perf] serving telemetry overhead: disabled "
              f"{report['work']['serving_obs_overhead_disabled'] * 100:+.2f}% "
              f"(ceiling {SERVING_OBS_DISABLED_CEILING * 100:.0f}%, full "
              f"mode), sampled@"
              f"{report['meta']['serving_obs_suite']['sample_rate']:.0%} "
              f"{report['work']['serving_obs_overhead_sampled'] * 100:+.2f}% "
              f"(ceiling {SERVING_OBS_SAMPLED_CEILING * 100:.0f}%, "
              f"{report['work']['serving_sampled_traces']} traces)")
        print(f"[bench_perf] serving sink: "
              f"{report['work']['serving_sink_events']} events across "
              f"{report['work']['serving_sink_files']} files "
              f"({report['work']['serving_sink_rotations']} rotations, "
              f"{report['work']['serving_sink_spans']} spans); quantile "
              f"p99 est {report['work']['serving_quantile_p99_est']:.0f} "
              f"vs exact {report['work']['serving_quantile_p99_exact']:.0f}")
    if "hybrid_vs_single" in suites:
        print(f"[bench_perf] hybrid vs best single "
              f"({report['work']['hybrid_best_single']}): "
              f"{report['speedups']['hybrid_vs_best_single']:.2f}x, "
              f"coverage {report['work']['hybrid_coverage_vs_brute'] * 100:.1f}%, "
              f"plan dispatch overhead "
              f"{report['work']['plan_dispatch_overhead'] * 100:+.1f}% "
              f"(ceiling {PLAN_DISPATCH_OVERHEAD_CEILING * 100:.0f}%, full mode)")
    if "quantized_tier" in suites:
        picks = report["work"]["quant_planner_picks"]
        print(f"[bench_perf] quantized tier: scan "
              f"{report['speedups']['quant_scan_vs_brute']:.2f}x brute "
              f"(floor {QUANT_SCAN_SPEEDUP_FLOOR:.1f}x, full mode), e2e "
              f"{report['speedups']['quant_join_vs_brute']:.2f}x, memory "
              f"{report['speedups']['quant_memory_reduction']:.1f}x smaller")
        print(f"[bench_perf] filter plan vs brute: "
              f"{report['speedups']['quant_filter_vs_brute']:.2f}x, recall "
              f"{report['work']['quant_filter_recall'] * 100:.1f}%, verified "
              f"{report['work']['quant_filter_verified_fraction'] * 100:.2f}% "
              f"of pairs; auto picks {picks['mem_budget']} under mem budget "
              f"(base model: {picks['base_model']})")
    if "parallel_scaling" in suites:
        scaling = report["speedups"]["parallel_scaling_vs_serial"]
        per_w = ", ".join(
            f"{w}w process {scaling['process'][w]:.2f}x / "
            f"thread {scaling['thread'][w]:.2f}x / "
            f"legacy {scaling['legacy'][w]:.2f}x"
            for w in sorted(scaling["process"]))
        zc = report["speedups"]["parallel_zero_copy_vs_legacy"]
        zc_summary = ", ".join(f"{w}w {v:.2f}x" for w, v in sorted(zc.items()))
        print(f"[bench_perf] parallel scaling vs serial "
              f"({report['work']['parallel_cpu_count']} cores): {per_w}")
        print(f"[bench_perf] zero-copy vs legacy executor: {zc_summary}")
    if "streaming_session" in suites:
        print(f"[bench_perf] session reuse vs one-shot: "
              f"{report['speedups']['session_reuse_vs_oneshot']:.1f}x over "
              f"{report['work']['session_batches']} batches "
              f"(floor {SESSION_REUSE_SPEEDUP_FLOOR:.0f}x, full mode)")
        print(f"[bench_perf] open_path load RSS: mmap "
              f"{report['work']['session_rss_mmap_load_bytes'] / 1e6:.0f} MB "
              f"vs full "
              f"{report['work']['session_rss_full_load_bytes'] / 1e6:.0f} MB "
              f"({report['speedups']['session_mmap_rss_reduction']:.2f}x "
              f"smaller; ceiling {SESSION_MMAP_RSS_CEILING:.2f}x, full mode)")
    if failed:
        print(f"[bench_perf] FAILED checks: {failed}", file=sys.stderr)
        raise SystemExit(1)
    return report


if __name__ == "__main__":
    main()
