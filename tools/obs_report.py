#!/usr/bin/env python
"""Render a serving-telemetry report from a session's event sink.

Reads the rotating JSONL files a :class:`repro.obs.sink.EventSink`
produced (``session.attach_sink(path)``) and prints the standard
serving report::

    PYTHONPATH=src python tools/obs_report.py obs_sink.jsonl
    PYTHONPATH=src python tools/obs_report.py obs_sink.jsonl --json

Sections:

* **latency percentiles** — p50/p95/p99 (plus count and mean) for every
  latency histogram in the *last* ``metrics`` snapshot: per-query
  (``session.query_latency_us``), per-stage
  (``session.stage_latency_us.<backend>``), and worker-side chunk
  latencies.
* **planner regret** — the ``planner`` events replayed through
  :class:`repro.obs.planner_log.PlannerLog`, scored exactly like
  ``tools/planner_report.py``.
* **resource timeline** — every ``resource`` event with RSS / fault /
  arena-byte deltas between consecutive snapshots.
* **sampled spans** — how many span trees the sampler admitted, and the
  slowest sampled query's top-level phase breakdown.

``--json`` emits the same content as one machine-readable document.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.obs import Span, trace_summary  # noqa: E402
from repro.obs.metrics import Histogram  # noqa: E402
from repro.obs.planner_log import (  # noqa: E402
    PlannerLog,
    PlannerRecord,
    format_pick_distribution,
    format_regret_table,
)
from repro.obs.sink import read_events  # noqa: E402

QUANTILES = (0.5, 0.95, 0.99)


def _payload_histogram(payload: dict) -> Histogram:
    h = Histogram(payload["bounds"])
    h.counts = list(payload["counts"])
    h.count = payload["count"]
    h.sum = payload["sum"]
    return h


def percentile_rows(events: List[dict]) -> List[Dict[str, Any]]:
    """p50/p95/p99 per histogram from the last ``metrics`` snapshot."""
    snaps = [e["data"] for e in events if e.get("kind") == "metrics"]
    if not snaps:
        return []
    rows = []
    for name, payload in sorted(snaps[-1].get("histograms", {}).items()):
        h = _payload_histogram(payload)
        rows.append({
            "name": name,
            "count": h.count,
            "mean": h.mean,
            **{f"p{int(q * 100)}": h.quantile(q) for q in QUANTILES},
        })
    return rows


def planner_log_from_events(events: List[dict]) -> PlannerLog:
    log = PlannerLog()
    for e in events:
        if e.get("kind") == "planner":
            log.record(PlannerRecord.from_dict(e["data"]))
    return log


def resource_rows(events: List[dict]) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    prev = None
    for e in events:
        if e.get("kind") != "resource":
            continue
        row = dict(e["data"])
        if prev is not None:
            for k in ("rss_bytes", "minor_faults", "major_faults"):
                row[f"d_{k}"] = row.get(k, 0) - prev.get(k, 0)
        rows.append(row)
        prev = e["data"]
    return rows


def span_section(events: List[dict]) -> Dict[str, Any]:
    spans = [e["data"] for e in events if e.get("kind") == "span"]
    section: Dict[str, Any] = {"sampled": len(spans)}
    if spans:
        slowest = max(spans, key=lambda s: s.get("duration_ns", 0))
        section["slowest_ns"] = slowest.get("duration_ns", 0)
        section["slowest"] = slowest
    return section


def crash_rows(events: List[dict]) -> List[dict]:
    return [e["data"] for e in events if e.get("kind") == "crash"]


def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.0f}us"


def _fmt_bytes(b: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(b) < 1024 or unit == "GB":
            return f"{b:.1f}{unit}" if unit != "B" else f"{int(b)}B"
        b /= 1024
    return f"{b:.1f}GB"


def render_text(path: str, events: List[dict]) -> str:
    lines: List[str] = []
    meta = next((e["data"] for e in events if e.get("kind") == "meta"), None)
    lines.append(f"event sink: {path} ({len(events)} events)")
    if meta:
        lines.append(
            "session: n={n} d={d} backend={backend} n_workers={n_workers} "
            "sample_rate={trace_sample_rate}".format(**meta)
        )
    rows = percentile_rows(events)
    lines.append("")
    lines.append("== latency percentiles (last metrics snapshot) ==")
    if rows:
        width = max(len(r["name"]) for r in rows)
        lines.append(
            f"{'histogram'.ljust(width)}  {'count':>8}  {'mean':>10}  "
            f"{'p50':>10}  {'p95':>10}  {'p99':>10}"
        )
        for r in rows:
            lines.append(
                f"{r['name'].ljust(width)}  {r['count']:>8}  "
                f"{_fmt_us(r['mean']):>10}  {_fmt_us(r['p50']):>10}  "
                f"{_fmt_us(r['p95']):>10}  {_fmt_us(r['p99']):>10}"
            )
    else:
        lines.append("(no metrics snapshots in sink)")

    log = planner_log_from_events(events)
    lines.append("")
    lines.append(f"== planner regret ({len(log)} records) ==")
    if len(log):
        lines.append(format_regret_table(log))
        lines.append("")
        lines.append(format_pick_distribution(log))
    else:
        lines.append("(no planner events in sink)")

    res = resource_rows(events)
    lines.append("")
    lines.append(f"== resource timeline ({len(res)} snapshots) ==")
    for row in res:
        delta = ""
        if "d_rss_bytes" in row:
            delta = (
                f"  (d_rss={_fmt_bytes(row['d_rss_bytes'])}"
                f" d_minflt={row['d_minor_faults']}"
                f" d_majflt={row['d_major_faults']})"
            )
        pool = row.get("pool") or {}
        lines.append(
            f"rss={_fmt_bytes(row['rss_bytes'])} "
            f"minflt={row['minor_faults']} majflt={row['major_faults']} "
            f"arena={_fmt_bytes(row.get('arena_bytes', 0))} "
            f"rebuilds={pool.get('pool_rebuilds', 0)} "
            f"crashes={pool.get('worker_crashes', 0)}{delta}"
        )

    spans = span_section(events)
    lines.append("")
    lines.append(f"== sampled spans: {spans['sampled']} ==")
    if spans.get("slowest") is not None:
        lines.append(
            f"slowest sampled query ({spans['slowest_ns'] / 1e6:.1f}ms):"
        )
        lines.append(trace_summary(Span.from_dict(spans["slowest"])))

    crashes = crash_rows(events)
    if crashes:
        lines.append("")
        lines.append(f"== worker crashes: {len(crashes)} ==")
        for c in crashes:
            lines.append(f"  {c}")
    return "\n".join(lines)


def report_dict(path: str, events: List[dict]) -> dict:
    spans = span_section(events)
    spans.pop("slowest", None)  # the full tree is bulky; keep the scalar
    return {
        "schema": "repro-obs-report/v1",
        "sink": path,
        "events": len(events),
        "meta": next(
            (e["data"] for e in events if e.get("kind") == "meta"), None
        ),
        "percentiles": percentile_rows(events),
        "planner_records": sum(
            1 for e in events if e.get("kind") == "planner"
        ),
        "resources": resource_rows(events),
        "spans": spans,
        "crashes": crash_rows(events),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "sink", help="event sink path (rotated generations are included)"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the report as one JSON document",
    )
    args = parser.parse_args(argv)
    events = read_events(args.sink)
    if args.json:
        print(json.dumps(report_dict(args.sink, events), indent=2))
    else:
        print(render_text(args.sink, events))
    return 0


if __name__ == "__main__":
    sys.exit(main())
