#!/usr/bin/env python
"""Planner regret report: score ``backend="auto"`` against measurements.

Reads a planner log saved as JSONL (``PlannerLog.save``) — typically
produced by a sweep that runs each instance under every explicit backend
plus ``"auto"``, e.g.::

    PYTHONPATH=src python benchmarks/bench_join_crossover.py \
        --planner-log planner_log.jsonl
    PYTHONPATH=src python tools/planner_report.py planner_log.jsonl

and prints, per auto-dispatched join, the backend the planner picked,
the measured-fastest backend for that instance, both wall times, and the
regret (``wall(picked) / wall(fastest) - 1``), plus the overall pick
distribution.  When the log holds session-amortized records (queries
through ``engine.open`` sessions tag ``expected_queries`` and
``session_reuse``), the regret table is additionally split into
amortized vs one-shot sections: a session pick that loses on a single
batch may still be the right pick over the session's lifetime, so its
regret must be read separately from one-shot dispatch regret.

``--write-model`` closes the loop: it re-fits the cost model from the
measured records (:meth:`repro.engine.planner.CostModel.from_planner_log`)
and persists it where ``backend="auto"`` looks on the next process start
(``~/.repro/costmodel.json``, or the ``REPRO_COSTMODEL`` path).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.engine.planner import DEFAULT_MODEL_PATH, CostModel  # noqa: E402
from repro.obs.planner_log import (  # noqa: E402
    PlannerLog,
    format_pick_distribution,
    format_regret_table,
)


def _regret_row_dict(row) -> dict:
    payload = dataclasses.asdict(row)
    payload["key"] = list(row.key)
    return payload


def _report_dict(path: str, log: PlannerLog) -> dict:
    """The whole report as plain data (the ``--json`` payload)."""
    amortized, one_shot = log.session_counts()
    report = {
        "schema": "repro-planner-report/v1",
        "log": path,
        "records": len(log),
        "session_amortized": amortized,
        "one_shot": one_shot,
        "regret": [_regret_row_dict(r) for r in log.regret_rows()],
        "pick_distribution": log.pick_distribution(),
        "stages": [
            {"key": list(key), "picked": picked, **stage}
            for key, picked, stage in log.stage_rows()
        ],
    }
    if amortized and one_shot:
        report["regret_session"] = [
            _regret_row_dict(r) for r in log.regret_rows(session=True)
        ]
        report["regret_one_shot"] = [
            _regret_row_dict(r) for r in log.regret_rows(session=False)
        ]
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("log", help="planner log (JSONL, from PlannerLog.save)")
    parser.add_argument(
        "--write-model",
        nargs="?",
        const=os.path.expanduser(DEFAULT_MODEL_PATH),
        default=None,
        metavar="PATH",
        help="re-fit the cost model from the log's measurements and save "
        "it (default path: %(const)s)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as one JSON document on stdout (regret "
        "rows, pick distribution, per-stage rows) for dashboards/CI",
    )
    args = parser.parse_args(argv)

    log = PlannerLog.load(args.log)
    amortized, one_shot = log.session_counts()

    if args.json:
        print(json.dumps(_report_dict(args.log, log), indent=2, sort_keys=True))
        if args.write_model:
            model = CostModel.from_planner_log(log)
            model.save(args.write_model)
        return 0
    print(
        f"planner log: {args.log} ({len(log)} records: "
        f"{amortized} session-amortized, {one_shot} one-shot)"
    )
    print()
    print("== regret (auto picks vs measured fastest) ==")
    print(format_regret_table(log))
    if amortized and one_shot:
        # Mixed log: a session pick amortizes its build over
        # expected_queries batches, so score it apart from one-shots.
        print()
        print("== regret: session-amortized picks only ==")
        print(format_regret_table(log, session=True))
        print()
        print("== regret: one-shot picks only ==")
        print(format_regret_table(log, session=False))
    print()
    print("== auto pick distribution ==")
    print(format_pick_distribution(log))

    if args.write_model:
        model = CostModel.from_planner_log(log)
        path = model.save(args.write_model)
        print()
        print(f"calibrated cost model written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
